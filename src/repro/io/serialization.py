"""Saving and loading allocations and experiment results.

A declustering decision is long-lived — the allocation chosen at load time
governs the physical layout for the life of the file — so it must be
persistable and auditable.  Formats:

* **Allocations** — a JSON document holding the grid, disk count, and the
  table (row-major nested lists).  Human-diffable, stable, and small at
  realistic grid sizes; checksummed so accidental edits are caught at
  load.
* **Experiment results** — JSON round-trip of
  :class:`~repro.experiments.common.ExperimentResult`, and CSV via
  :func:`repro.experiments.reporting.to_csv` for plotting tools.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Union

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import AllocationError
from repro.core.grid import Grid
from repro.experiments.common import ExperimentResult
from repro.replication.allocation import ReplicatedAllocation

__all__ = [
    "PathLike",
    "allocation_from_dict",
    "allocation_to_dict",
    "load_allocation",
    "load_queries",
    "load_replicated",
    "load_result",
    "result_from_dict",
    "result_to_dict",
    "save_allocation",
    "save_queries",
    "save_replicated",
    "save_result",
]

PathLike = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


def _table_checksum(table: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(table, dtype=np.int64).tobytes()
    ).hexdigest()[:16]


def allocation_to_dict(allocation: DiskAllocation) -> dict:
    """The allocation as a JSON-ready dict (with integrity checksum)."""
    return {
        "format": "repro-allocation",
        "version": _FORMAT_VERSION,
        "grid": list(allocation.grid.dims),
        "num_disks": allocation.num_disks,
        "table": allocation.table.tolist(),
        "checksum": _table_checksum(allocation.table),
    }


def allocation_from_dict(document: dict) -> DiskAllocation:
    """Inverse of :func:`allocation_to_dict`, validating the checksum."""
    if document.get("format") != "repro-allocation":
        raise AllocationError(
            f"not an allocation document: format="
            f"{document.get('format')!r}"
        )
    if document.get("version") != _FORMAT_VERSION:
        raise AllocationError(
            f"unsupported allocation format version "
            f"{document.get('version')!r}"
        )
    grid = Grid(document["grid"])
    table = np.array(document["table"], dtype=np.int64)
    allocation = DiskAllocation(grid, int(document["num_disks"]), table)
    expected = document.get("checksum")
    actual = _table_checksum(allocation.table)
    if expected != actual:
        raise AllocationError(
            f"allocation checksum mismatch: stored {expected}, "
            f"computed {actual} (document edited or corrupted?)"
        )
    return allocation


def save_allocation(allocation: DiskAllocation, path: PathLike) -> None:
    """Write an allocation as JSON."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(allocation_to_dict(allocation), indent=2) + "\n"
    )


def load_allocation(path: PathLike) -> DiskAllocation:
    """Read an allocation written by :func:`save_allocation`."""
    path = pathlib.Path(path)
    return allocation_from_dict(json.loads(path.read_text()))


def save_replicated(
    replicated: ReplicatedAllocation, path: PathLike
) -> None:
    """Write both copies of a replicated allocation as one JSON document."""
    document = {
        "format": "repro-replicated-allocation",
        "version": _FORMAT_VERSION,
        "primary": allocation_to_dict(replicated.primary),
        "backup": allocation_to_dict(replicated.backup),
    }
    pathlib.Path(path).write_text(json.dumps(document, indent=2) + "\n")


def load_replicated(path: PathLike) -> ReplicatedAllocation:
    """Read a replicated allocation written by :func:`save_replicated`."""
    document = json.loads(pathlib.Path(path).read_text())
    if document.get("format") != "repro-replicated-allocation":
        raise AllocationError(
            "not a replicated-allocation document: format="
            f"{document.get('format')!r}"
        )
    return ReplicatedAllocation(
        allocation_from_dict(document["primary"]),
        allocation_from_dict(document["backup"]),
    )


def result_to_dict(result: ExperimentResult) -> dict:
    """An experiment result as a JSON-ready dict."""
    return {
        "format": "repro-experiment-result",
        "version": _FORMAT_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "x_values": list(result.x_values),
        "series": {k: list(v) for k, v in result.series.items()},
        "optimal": list(result.optimal),
        "config": _jsonable(result.config),
    }


def result_from_dict(document: dict) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    if document.get("format") != "repro-experiment-result":
        raise AllocationError(
            "not an experiment-result document: format="
            f"{document.get('format')!r}"
        )
    return ExperimentResult(
        experiment_id=document["experiment_id"],
        title=document["title"],
        x_label=document["x_label"],
        x_values=list(document["x_values"]),
        series={k: list(v) for k, v in document["series"].items()},
        optimal=list(document["optimal"]),
        config=dict(document.get("config", {})),
    )


def save_result(result: ExperimentResult, path: PathLike) -> None:
    """Write an experiment result as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2) + "\n"
    )


def load_result(path: PathLike) -> ExperimentResult:
    """Read an experiment result written by :func:`save_result`."""
    return result_from_dict(json.loads(pathlib.Path(path).read_text()))


def save_queries(queries, path: PathLike) -> None:
    """Write a query workload as JSON Lines (one query per line).

    The trace format a production system would capture: pairs of bounds
    per query, replayable into the evaluator, the advisor, or the
    annealer.
    """
    from repro.core.query import RangeQuery

    path = pathlib.Path(path)
    with path.open("w") as stream:
        for query in queries:
            if not isinstance(query, RangeQuery):
                raise AllocationError(
                    f"trace entries must be RangeQuery, got "
                    f"{type(query).__name__}"
                )
            stream.write(
                json.dumps(
                    {
                        "lower": list(query.lower),
                        "upper": list(query.upper),
                    }
                )
                + "\n"
            )


def load_queries(path: PathLike) -> list:
    """Read a workload written by :func:`save_queries`."""
    from repro.core.query import RangeQuery

    path = pathlib.Path(path)
    queries = []
    for line_number, line in enumerate(
        path.read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            queries.append(
                RangeQuery(tuple(record["lower"]), tuple(record["upper"]))
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AllocationError(
                f"bad trace entry at {path}:{line_number}: {exc}"
            ) from exc
    return queries


def _jsonable(value):
    """Recursively convert tuples to lists so config survives JSON."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value
