"""Persistence: JSON round-trips for allocations and experiment results."""

from repro.io.serialization import (
    allocation_from_dict,
    allocation_to_dict,
    load_allocation,
    load_queries,
    load_replicated,
    load_result,
    result_from_dict,
    result_to_dict,
    save_allocation,
    save_queries,
    save_replicated,
    save_result,
)

__all__ = [
    "allocation_to_dict",
    "allocation_from_dict",
    "save_allocation",
    "load_allocation",
    "save_replicated",
    "load_replicated",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "save_queries",
    "load_queries",
]
