"""Name-based registry of declustering schemes.

The experiments, benchmarks, and CLI refer to schemes by short name
(``"dm"``, ``"fx-auto"``, ``"ecc"``, ``"hcam"``, ...).  The registry maps
each name to a zero-argument factory so every lookup returns a fresh scheme
instance.  Third-party schemes can be added with :func:`register_scheme`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator, List, Mapping

from repro.core.exceptions import UnknownSchemeError
from repro.schemes.base import DeclusteringScheme
from repro.schemes.baselines import RandomScheme, RoundRobinScheme
from repro.schemes.disk_modulo import (
    DiskModuloScheme,
    GeneralizedDiskModuloScheme,
)
from repro.schemes.ecc_scheme import ECCScheme
from repro.schemes.fieldwise_xor import AutoFXScheme, ExFXScheme, FXScheme
from repro.schemes.hilbert_scheme import (
    GrayCodeScheme,
    HCAMScheme,
    ZOrderScheme,
)

__all__ = [
    "PAPER_LABELS",
    "PAPER_SCHEMES",
    "SchemeFactory",
    "available_schemes",
    "get_scheme",
    "register_scheme",
    "registry_snapshot",
    "restore_registry",
    "scheme_factory",
    "scheme_label",
    "temporary_scheme",
    "unregister_scheme",
]

SchemeFactory = Callable[[], DeclusteringScheme]

_REGISTRY: Dict[str, SchemeFactory] = {}

#: Scheme names evaluated by the paper, in the order its figures list them.
PAPER_SCHEMES = ("dm", "fx-auto", "ecc", "hcam")

#: Display labels matching the paper's figure legends.
PAPER_LABELS = {
    "dm": "DM/CMD",
    "fx": "FX",
    "exfx": "ExFX",
    "fx-auto": "FX",
    "ecc": "ECC",
    "hcam": "HCAM",
    "gdm": "GDM",
    "zorder": "Z-order",
    "gray": "Gray",
    "random": "Random",
    "roundrobin": "RoundRobin",
    "cyclic": "RPHM",
    "cyclic-gfib": "GFIB",
    "cyclic-exh": "EXH",
    "lattice": "Lattice",
    "lattice-exh": "LatticeEXH",
    "workload-aware": "Annealed",
}


def register_scheme(name: str, factory: SchemeFactory, replace: bool = False) -> None:
    """Register a scheme factory under ``name``.

    Raises ``ValueError`` if the name is taken and ``replace`` is false.
    """
    if not name:
        raise ValueError("scheme name must be non-empty")
    if name in _REGISTRY and not replace:
        raise ValueError(f"scheme {name!r} is already registered")
    _REGISTRY[name] = factory


def unregister_scheme(name: str) -> SchemeFactory:
    """Remove and return the factory registered under ``name``.

    Raises :class:`UnknownSchemeError` if the name is not registered.
    """
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise UnknownSchemeError(
            f"unknown scheme {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


@contextlib.contextmanager
def temporary_scheme(
    name: str, factory: SchemeFactory, replace: bool = False
) -> Iterator[None]:
    """Register ``name`` for the duration of a ``with`` block.

    On exit the previous state is restored exactly: the name is removed
    again, or — when ``replace=True`` shadowed a builtin — the original
    factory is put back.  This is the supported way for tests and
    experiments to try a scheme variant without leaking registry state.
    """
    previous = _REGISTRY.get(name)
    register_scheme(name, factory, replace=replace)
    try:
        yield
    finally:
        if previous is None:
            _REGISTRY.pop(name, None)
        else:
            _REGISTRY[name] = previous


def registry_snapshot() -> Dict[str, SchemeFactory]:
    """A copy of the current name → factory mapping."""
    return dict(_REGISTRY)


def restore_registry(snapshot: Mapping[str, SchemeFactory]) -> None:
    """Reset the registry to a :func:`registry_snapshot` state."""
    _REGISTRY.clear()
    _REGISTRY.update(snapshot)


def scheme_factory(name: str) -> SchemeFactory:
    """The registered factory for ``name`` (without instantiating it)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSchemeError(
            f"unknown scheme {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def get_scheme(name: str) -> DeclusteringScheme:
    """Construct a fresh scheme instance by registry name."""
    return scheme_factory(name)()


def available_schemes() -> List[str]:
    """Sorted list of registered scheme names."""
    return sorted(_REGISTRY)


def scheme_label(name: str) -> str:
    """Paper-style display label for a scheme name."""
    return PAPER_LABELS.get(name, name.upper())


def _register_builtins() -> None:
    from repro.schemes.cyclic import CyclicScheme
    from repro.schemes.lattice import LatticeScheme
    from repro.schemes.workload_aware import WorkloadAwareScheme

    register_scheme("dm", DiskModuloScheme)
    register_scheme("gdm", GeneralizedDiskModuloScheme)
    register_scheme("fx", FXScheme)
    register_scheme("exfx", ExFXScheme)
    register_scheme("fx-auto", AutoFXScheme)
    register_scheme("ecc", ECCScheme)
    register_scheme("hcam", HCAMScheme)
    register_scheme("zorder", ZOrderScheme)
    register_scheme("gray", GrayCodeScheme)
    register_scheme("random", RandomScheme)
    register_scheme("roundrobin", RoundRobinScheme)
    register_scheme("cyclic", lambda: CyclicScheme(policy="rphm"))
    register_scheme("cyclic-gfib", lambda: CyclicScheme(policy="gfib"))
    register_scheme("cyclic-exh", lambda: CyclicScheme(policy="exh"))
    register_scheme("lattice", lambda: LatticeScheme(policy="power"))
    register_scheme("lattice-exh", lambda: LatticeScheme(policy="exh"))
    register_scheme("workload-aware", WorkloadAwareScheme)


_register_builtins()
