"""Integral-image (summed-area-table) response-time engine.

:func:`repro.core.cost.sliding_response_times` — the kernel behind every
experiment — recomputes per-disk prefix sums for *each* query shape and
loops over disks in Python.  For a many-shapes sweep (``evaluate_area``
visits every factorization of an area) that repeats the same
``O(M * num_buckets)`` cumulative-sum work once per shape.

This module makes workload evaluation *allocation-centric*: the
k-dimensional summed-area table (SAT, a.k.a. integral image) of all ``M``
disk-indicator tables is computed **once** per allocation, stacked as a
single ``(M, d_1 + 1, ..., d_k + 1)`` array so the disk loop vectorizes
away.  Any shape's sliding response times then come from ``2^k``-corner
inclusion–exclusion over the SAT — pure slice arithmetic, no further
cumulative sums:

    window[o] = sum over corner subsets S of {1..k} of
                (-1)^|S| * sat[o + shape * (1 - chi_S)]

The same table also answers **batches of arbitrary rectangles**: a query
``[l, u]`` clipped to the grid is a single inclusion–exclusion over its
``2^k`` corners, so a batch of N queries needs one fancy-indexing gather
per corner — ``2^k`` numpy operations total, no per-query Python loop
(:meth:`ResponseTimeEngine.batch_response_times`).

All arithmetic is exact integer work, so the engine's results are
bit-identical to the scalar path; ``repro.qa`` enforces that agreement as
a contract (QA42x) and the scalar kernel remains the reference oracle.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import QueryError
from repro.core.query import RangeQuery
from repro.obs.trace import trace

__all__ = [
    "ResponseTimeEngine",
]


class ResponseTimeEngine:
    """Per-allocation integral-image kernel for sliding response times.

    Building the engine performs the one-time ``O(k * M * num_buckets)``
    SAT precomputation; every subsequent shape query costs
    ``O(2^k * M * placements)`` slice additions — independent of the
    query's side lengths and with no per-disk Python loop.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.grid import Grid
    >>> alloc = DiskAllocation(
    ...     Grid((2, 2)), 2, np.array([[0, 1], [1, 0]])
    ... )
    >>> ResponseTimeEngine(alloc).sliding_response_times((2, 2)).tolist()
    [[2]]
    """

    __slots__ = ("_allocation", "_sat")

    def __init__(self, allocation: DiskAllocation):
        with trace(
            "engine.build",
            dims=list(allocation.grid.dims),
            num_disks=allocation.num_disks,
        ):
            self._build(allocation)

    def _build(self, allocation: DiskAllocation) -> None:
        self._allocation = allocation
        table = allocation.table
        num_disks = allocation.num_disks
        ndim = table.ndim
        # Stacked disk indicators: one (d_1, ..., d_k) boolean plane per
        # disk, compared in a single broadcast instead of a Python loop.
        disks = np.arange(num_disks, dtype=table.dtype)
        indicators = table[np.newaxis] == disks.reshape(
            (num_disks,) + (1,) * ndim
        )
        # Zero-padded SAT: sat[m, i_1, ..., i_k] counts disk-m buckets in
        # the half-open box [0, i_1) x ... x [0, i_k).  The padding row of
        # zeros per axis makes the inclusion-exclusion slices uniform.
        # Entries never exceed the bucket count, so int32 suffices on any
        # realistic grid; downstream arithmetic accumulates in int64.
        sat_dtype = (
            np.int32 if table.size <= np.iinfo(np.int32).max else np.int64
        )
        sat = np.zeros(
            (num_disks,) + tuple(d + 1 for d in table.shape),
            dtype=sat_dtype,
        )
        interior = (slice(None),) + (slice(1, None),) * ndim
        sat[interior] = indicators
        for axis in range(1, ndim + 1):
            np.cumsum(sat, axis=axis, out=sat)
        self._sat = sat
        self._sat.setflags(write=False)

    @property
    def allocation(self) -> DiskAllocation:
        """The allocation this engine answers queries about."""
        return self._allocation

    @property
    def num_disks(self) -> int:
        """``M``, the number of disks."""
        return self._allocation.num_disks

    def nbytes(self) -> int:
        """Memory footprint of the precomputed SAT, in bytes."""
        return int(self._sat.nbytes)

    def _validated_shape(self, shape: Sequence[int]) -> Tuple[int, ...]:
        grid = self._allocation.grid
        shape = tuple(int(s) for s in shape)
        if len(shape) != grid.ndim:
            raise QueryError(
                f"shape arity {len(shape)} does not match grid {grid.dims}"
            )
        if any(s <= 0 for s in shape):
            raise QueryError(f"query side lengths must be positive: {shape}")
        return shape

    def disk_window_counts(self, shape: Sequence[int]) -> np.ndarray:
        """Per-disk bucket counts of ``shape`` at every placement.

        Returns an array of shape ``(M, d_1 - s_1 + 1, ..., d_k - s_k + 1)``
        whose ``[m]`` plane holds, for each placement origin, how many of
        the window's buckets live on disk ``m``.  Shapes that do not fit
        yield an empty array (some output extent is 0), mirroring
        :func:`repro.core.cost.sliding_response_times`.
        """
        shape = self._validated_shape(shape)
        dims = self._allocation.grid.dims
        out_shape = tuple(max(d - s + 1, 0) for s, d in zip(shape, dims))
        if any(s > d for s, d in zip(shape, dims)):
            return np.zeros((self.num_disks,) + out_shape, dtype=np.int64)

        ndim = len(dims)
        counts: np.ndarray = np.zeros(0)
        for corner in range(1 << ndim):
            slices = [slice(None)]
            parity = 0
            for axis in range(ndim):
                if (corner >> axis) & 1:
                    # Low corner on this axis: origin o (subtracted term).
                    slices.append(slice(0, dims[axis] - shape[axis] + 1))
                    parity ^= 1
                else:
                    # High corner: o + s (added term).
                    slices.append(slice(shape[axis], dims[axis] + 1))
            term = self._sat[tuple(slices)]
            if corner == 0:
                counts = term.astype(np.int64, copy=True)
            elif parity:
                counts -= term
            else:
                counts += term
        return counts

    def sliding_response_times(self, shape: Sequence[int]) -> np.ndarray:
        """Response time of ``shape`` at every placement — engine fast path.

        Bit-identical to
        :func:`repro.core.cost.sliding_response_times` on the same
        allocation (all-integer arithmetic, no rounding), but amortizes the
        prefix-sum work across every shape asked of this engine.
        """
        # Hot path: the span carries no attrs so the disabled tracer
        # costs one call and no allocation (see the obs overhead gate).
        with trace("engine.sliding_response_times"):
            return self.disk_window_counts(shape).max(axis=0)

    def _batch_bounds(
        self, queries: Sequence[RangeQuery]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Clipped half-open bounds of a query batch.

        Returns ``(lo, hi)`` of shape ``(N, k)`` each: the queries
        intersected with the grid, lower inclusive / upper exclusive.  A
        query clipped to nothing gets a zero-extent box (``hi == lo``), so
        every downstream inclusion–exclusion term cancels exactly — the
        same 0-bucket semantics the scalar path's ``clip_to`` produces.
        """
        grid = self._allocation.grid
        ndim = grid.ndim
        for query in queries:
            if query.ndim != ndim:
                raise QueryError(
                    f"{query.ndim}-d query does not match "
                    f"{ndim}-d allocation"
                )
        if not len(queries):
            empty = np.zeros((0, ndim), dtype=np.int64)
            return empty, empty.copy()
        dims = np.asarray(grid.dims, dtype=np.int64)
        lower = np.array([q.lower for q in queries], dtype=np.int64)
        upper = np.array([q.upper for q in queries], dtype=np.int64)
        lo = np.minimum(lower, dims)
        hi = np.maximum(np.minimum(upper + 1, dims), lo)
        return lo, hi

    def batch_disk_counts(
        self, queries: Sequence[RangeQuery]
    ) -> np.ndarray:
        """Per-query per-disk bucket counts, shape ``(N, M)``.

        Row ``n`` equals :func:`repro.core.cost.buckets_per_disk` for
        ``queries[n]`` (clipping included).  The whole batch is answered
        with one fancy-indexing gather per SAT corner — ``2^k`` numpy
        operations regardless of N.
        """
        lo, hi = self._batch_bounds(queries)
        num_queries, ndim = lo.shape
        counts = np.zeros((num_queries, self.num_disks), dtype=np.int64)
        if num_queries == 0:
            return counts
        for corner in range(1 << ndim):
            index: Tuple = (slice(None),)
            parity = 0
            for axis in range(ndim):
                if (corner >> axis) & 1:
                    index += (lo[:, axis],)
                    parity ^= 1
                else:
                    index += (hi[:, axis],)
            term = self._sat[index]  # shape (M, N)
            if parity:
                counts -= term.T
            else:
                counts += term.T
        return counts

    def batch_response_times(
        self, queries: Sequence[RangeQuery]
    ) -> np.ndarray:
        """Response time of every query in the batch, shape ``(N,)``.

        Bit-identical to calling
        :func:`repro.core.cost.response_time` per query (exact integer
        inclusion–exclusion, same clipping), with no per-query Python
        loop.
        """
        with trace("engine.batch_response_times", num_queries=len(queries)):
            counts = self.batch_disk_counts(queries)
            if counts.shape[0] == 0:
                return np.zeros(0, dtype=np.int64)
            return counts.max(axis=1)

    def batch_optimal(self, queries: Sequence[RangeQuery]) -> np.ndarray:
        """Effective OPT per query, shape ``(N,)``.

        Matches the scalar ``_effective_optimal`` semantics: OPT is taken
        over the query's buckets *inside* the grid (``ceil(|Q ∩ grid| /
        M)``), and a query clipped to nothing has OPT 0.
        """
        lo, hi = self._batch_bounds(queries)
        if lo.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        buckets = np.prod(hi - lo, axis=1)
        return -(-buckets // self.num_disks)

    def batch_deviations(
        self, queries: Sequence[RangeQuery]
    ) -> np.ndarray:
        """Relative deviation ``(RT - OPT) / OPT`` per query, ``(N,)``.

        Matches :func:`repro.core.cost.relative_deviation` query by query,
        including the 0.0 convention for queries that clip to nothing.
        """
        times = self.batch_response_times(queries)
        optima = self.batch_optimal(queries)
        safe = np.maximum(optima, 1)
        return np.where(
            optima == 0, 0.0, (times - optima) / safe
        )
