"""Integral-image (summed-area-table) response-time engine.

:func:`repro.core.cost.sliding_response_times` — the kernel behind every
experiment — recomputes per-disk prefix sums for *each* query shape and
loops over disks in Python.  For a many-shapes sweep (``evaluate_area``
visits every factorization of an area) that repeats the same
``O(M * num_buckets)`` cumulative-sum work once per shape.

This module makes workload evaluation *allocation-centric*: the
k-dimensional summed-area table (SAT, a.k.a. integral image) of all ``M``
disk-indicator tables is computed **once** per allocation
(:class:`~repro.core.sat.SummedAreaTable`) so the disk loop vectorizes
away.  Any shape's sliding response times then come from ``2^k``-corner
inclusion–exclusion over the SAT — no further cumulative sums:

    window[o] = sum over corner subsets S of {1..k} of
                (-1)^|S| * sat[o + shape * (1 - chi_S)]

The same table also answers **batches of arbitrary rectangles**: a query
``[l, u]`` clipped to the grid is a single inclusion–exclusion over its
``2^k`` corners (:meth:`ResponseTimeEngine.batch_response_times`).  The
corner gathers themselves are *pluggable*: every batch and sweep call
dispatches through :func:`repro.core.backends.active_backend`, so the
same engine runs the vectorized numpy reference, the fused C kernels
(``cnative``), or the JIT kernels (``numba``) — all certified
bit-identical by QA423.  Engines can also wrap a chunked/memory-mapped
SAT (:meth:`ResponseTimeEngine.open_chunked`) for grids too large to
hold in RAM.

All arithmetic is exact integer work, so the engine's results are
bit-identical to the scalar path; ``repro.qa`` enforces that agreement as
a contract (QA42x) and the scalar kernel remains the reference oracle.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.backends import active_backend
from repro.core.backends.numpy_backend import NumpyBackend
from repro.core.exceptions import AllocationError, QueryError
from repro.core.grid import Grid
from repro.core.query import QueryBatch, RangeQuery
from repro.core.sat import SummedAreaTable
from repro.obs.trace import trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.schemes.base import DeclusteringScheme

__all__ = [
    "ResponseTimeEngine",
]

#: A batch argument: either raw queries or pre-clipped bounds.
Queries = Union[Sequence[RangeQuery], QueryBatch]

_NUMPY_REFERENCE = NumpyBackend()


class ResponseTimeEngine:
    """Per-allocation integral-image kernel for sliding response times.

    Building the engine performs the one-time ``O(k * M * num_buckets)``
    SAT precomputation; every subsequent shape query costs
    ``O(2^k * M * placements)`` slice additions — independent of the
    query's side lengths and with no per-disk Python loop.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.grid import Grid
    >>> alloc = DiskAllocation(
    ...     Grid((2, 2)), 2, np.array([[0, 1], [1, 0]])
    ... )
    >>> ResponseTimeEngine(alloc).sliding_response_times((2, 2)).tolist()
    [[2]]
    """

    __slots__ = ("_allocation", "_sat")

    def __init__(self, allocation: DiskAllocation):
        with trace(
            "engine.build",
            dims=list(allocation.grid.dims),
            num_disks=allocation.num_disks,
        ):
            self._allocation: Optional[DiskAllocation] = allocation
            self._sat = SummedAreaTable.build(allocation)

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_sat(
        cls,
        sat: SummedAreaTable,
        allocation: Optional[DiskAllocation] = None,
    ) -> "ResponseTimeEngine":
        """Wrap a prebuilt (possibly memory-mapped) SAT.

        ``allocation`` is optional: chunked/mmap engines never
        materialized one, and every engine query runs off the SAT alone.
        """
        engine = cls.__new__(cls)
        engine._allocation = allocation
        engine._sat = sat
        return engine

    @classmethod
    def open_chunked(
        cls,
        scheme: "DeclusteringScheme",
        grid: Grid,
        num_disks: int,
        byte_budget: Optional[int] = None,
        path: Optional[Union[str, os.PathLike]] = None,
    ) -> "ResponseTimeEngine":
        """Build a beyond-RAM engine via the tiled, spilling SAT build.

        The allocation table is generated slab by slab
        (``scheme.disk_array_block``) and the SAT lands in a
        memory-mapped ``.npy`` file — see
        :meth:`repro.core.sat.SummedAreaTable.build_chunked`.
        """
        sat = SummedAreaTable.build_chunked(
            scheme, grid, num_disks, byte_budget=byte_budget, path=path
        )
        return cls.from_sat(sat)

    @classmethod
    def open_mmap(
        cls, path: Union[str, os.PathLike]
    ) -> "ResponseTimeEngine":
        """Reopen a spilled SAT file as an engine (zero-copy)."""
        return cls.from_sat(SummedAreaTable.open_mmap(path))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def allocation(self) -> DiskAllocation:
        """The allocation this engine answers queries about.

        Chunked/mmap engines never materialize the allocation table;
        asking for it raises :class:`AllocationError`.
        """
        if self._allocation is None:
            raise AllocationError(
                "this engine wraps a chunked/memory-mapped SAT and has "
                "no materialized allocation table"
            )
        return self._allocation

    @property
    def sat(self) -> SummedAreaTable:
        """The summed-area table every query is answered from."""
        return self._sat

    @property
    def num_disks(self) -> int:
        """``M``, the number of disks."""
        return self._sat.num_disks

    @property
    def grid(self) -> Grid:
        """The grid the engine's SAT covers."""
        return self._sat.grid

    def nbytes(self) -> int:
        """Memory footprint of the precomputed SAT, in bytes."""
        return self._sat.nbytes()

    # ------------------------------------------------------------------
    # Shape sweeps
    # ------------------------------------------------------------------

    def _validated_shape(self, shape: Sequence[int]) -> Tuple[int, ...]:
        grid = self._sat.grid
        shape = tuple(int(s) for s in shape)
        if len(shape) != grid.ndim:
            raise QueryError(
                f"shape arity {len(shape)} does not match grid {grid.dims}"
            )
        if any(s <= 0 for s in shape):
            raise QueryError(f"query side lengths must be positive: {shape}")
        return shape

    def disk_window_counts(self, shape: Sequence[int]) -> np.ndarray:
        """Per-disk bucket counts of ``shape`` at every placement.

        Returns an array of shape ``(M, d_1 - s_1 + 1, ..., d_k - s_k + 1)``
        whose ``[m]`` plane holds, for each placement origin, how many of
        the window's buckets live on disk ``m``.  Shapes that do not fit
        yield an empty array (some output extent is 0), mirroring
        :func:`repro.core.cost.sliding_response_times`.

        Always computed by the numpy reference: the per-disk planes this
        returns are exactly the intermediate the fused backends exist to
        avoid, so there is nothing for them to accelerate here.
        """
        shape = self._validated_shape(shape)
        dims = self._sat.dims
        if any(s > d for s, d in zip(shape, dims)):
            out_shape = tuple(
                max(d - s + 1, 0) for s, d in zip(shape, dims)
            )
            return np.zeros((self.num_disks,) + out_shape, dtype=np.int64)
        return _NUMPY_REFERENCE.window_disk_counts(self._sat, shape)

    def sliding_response_times(self, shape: Sequence[int]) -> np.ndarray:
        """Response time of ``shape`` at every placement — engine fast path.

        Bit-identical to
        :func:`repro.core.cost.sliding_response_times` on the same
        allocation (all-integer arithmetic, no rounding), but amortizes the
        prefix-sum work across every shape asked of this engine.
        """
        # Hot path: the span carries no attrs so the disabled tracer
        # costs one call and no allocation (see the obs overhead gate).
        with trace("engine.sliding_response_times"):
            shape = self._validated_shape(shape)
            dims = self._sat.dims
            if any(s > d for s, d in zip(shape, dims)):
                out_shape = tuple(
                    max(d - s + 1, 0) for s, d in zip(shape, dims)
                )
                return np.zeros(out_shape, dtype=np.int64)
            return active_backend().window_response_times(
                self._sat, shape
            )

    # ------------------------------------------------------------------
    # Batched rectangle queries
    # ------------------------------------------------------------------

    def _batch_bounds(
        self, queries: Queries
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Clipped half-open bounds of a query batch.

        Returns ``(lo, hi)`` of shape ``(N, k)`` each: the queries
        intersected with the grid, lower inclusive / upper exclusive.  A
        query clipped to nothing gets a zero-extent box (``hi == lo``), so
        every downstream inclusion–exclusion term cancels exactly — the
        same 0-bucket semantics the scalar path's ``clip_to`` produces.
        A prebuilt :class:`~repro.core.query.QueryBatch` skips the
        conversion entirely.
        """
        grid = self._sat.grid
        if isinstance(queries, QueryBatch):
            if queries.dims != grid.dims:
                raise QueryError(
                    f"batch clipped for grid {queries.dims} does not "
                    f"match engine grid {grid.dims}"
                )
            return queries.lo, queries.hi
        batch = QueryBatch.from_queries(queries, grid)
        return batch.lo, batch.hi

    def batch_disk_counts(self, queries: Queries) -> np.ndarray:
        """Per-query per-disk bucket counts, shape ``(N, M)``.

        Row ``n`` equals :func:`repro.core.cost.buckets_per_disk` for
        ``queries[n]`` (clipping included).  The whole batch is answered
        with one gather per SAT corner — ``2^k`` kernel operations
        regardless of N, on whichever backend is active.
        """
        lo, hi = self._batch_bounds(queries)
        return active_backend().batch_disk_counts(self._sat, lo, hi)

    def batch_response_times(self, queries: Queries) -> np.ndarray:
        """Response time of every query in the batch, shape ``(N,)``.

        Bit-identical to calling
        :func:`repro.core.cost.response_time` per query (exact integer
        inclusion–exclusion, same clipping), with no per-query Python
        loop.
        """
        with trace("engine.batch_response_times", num_queries=len(queries)):
            lo, hi = self._batch_bounds(queries)
            return active_backend().batch_response_times(
                self._sat, lo, hi
            )

    def batch_optimal(self, queries: Queries) -> np.ndarray:
        """Effective OPT per query, shape ``(N,)``.

        Matches the scalar ``_effective_optimal`` semantics: OPT is taken
        over the query's buckets *inside* the grid (``ceil(|Q ∩ grid| /
        M)``), and a query clipped to nothing has OPT 0.
        """
        lo, hi = self._batch_bounds(queries)
        if lo.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        buckets = np.prod(hi - lo, axis=1)
        return -(-buckets // self.num_disks)

    def batch_deviations(self, queries: Queries) -> np.ndarray:
        """Relative deviation ``(RT - OPT) / OPT`` per query, ``(N,)``.

        Matches :func:`repro.core.cost.relative_deviation` query by query,
        including the 0.0 convention for queries that clip to nothing.
        """
        times = self.batch_response_times(queries)
        optima = self.batch_optimal(queries)
        safe = np.maximum(optima, 1)
        return np.where(
            optima == 0, 0.0, (times - optima) / safe
        )
