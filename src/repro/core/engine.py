"""Integral-image (summed-area-table) response-time engine.

:func:`repro.core.cost.sliding_response_times` — the kernel behind every
experiment — recomputes per-disk prefix sums for *each* query shape and
loops over disks in Python.  For a many-shapes sweep (``evaluate_area``
visits every factorization of an area) that repeats the same
``O(M * num_buckets)`` cumulative-sum work once per shape.

This module makes workload evaluation *allocation-centric*: the
k-dimensional summed-area table (SAT, a.k.a. integral image) of all ``M``
disk-indicator tables is computed **once** per allocation, stacked as a
single ``(M, d_1 + 1, ..., d_k + 1)`` array so the disk loop vectorizes
away.  Any shape's sliding response times then come from ``2^k``-corner
inclusion–exclusion over the SAT — pure slice arithmetic, no further
cumulative sums:

    window[o] = sum over corner subsets S of {1..k} of
                (-1)^|S| * sat[o + shape * (1 - chi_S)]

All arithmetic is exact integer work, so the engine's results are
bit-identical to the scalar path; ``repro.qa`` enforces that agreement as
a contract (QA42x) and the scalar kernel remains the reference oracle.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import QueryError

__all__ = [
    "ResponseTimeEngine",
]


class ResponseTimeEngine:
    """Per-allocation integral-image kernel for sliding response times.

    Building the engine performs the one-time ``O(k * M * num_buckets)``
    SAT precomputation; every subsequent shape query costs
    ``O(2^k * M * placements)`` slice additions — independent of the
    query's side lengths and with no per-disk Python loop.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.grid import Grid
    >>> alloc = DiskAllocation(
    ...     Grid((2, 2)), 2, np.array([[0, 1], [1, 0]])
    ... )
    >>> ResponseTimeEngine(alloc).sliding_response_times((2, 2)).tolist()
    [[2]]
    """

    __slots__ = ("_allocation", "_sat")

    def __init__(self, allocation: DiskAllocation):
        self._allocation = allocation
        table = allocation.table
        num_disks = allocation.num_disks
        ndim = table.ndim
        # Stacked disk indicators: one (d_1, ..., d_k) boolean plane per
        # disk, compared in a single broadcast instead of a Python loop.
        disks = np.arange(num_disks, dtype=table.dtype)
        indicators = table[np.newaxis] == disks.reshape(
            (num_disks,) + (1,) * ndim
        )
        # Zero-padded SAT: sat[m, i_1, ..., i_k] counts disk-m buckets in
        # the half-open box [0, i_1) x ... x [0, i_k).  The padding row of
        # zeros per axis makes the inclusion-exclusion slices uniform.
        sat = np.zeros(
            (num_disks,) + tuple(d + 1 for d in table.shape),
            dtype=np.int64,
        )
        interior = (slice(None),) + (slice(1, None),) * ndim
        sat[interior] = indicators
        for axis in range(1, ndim + 1):
            np.cumsum(sat, axis=axis, out=sat)
        self._sat = sat
        self._sat.setflags(write=False)

    @property
    def allocation(self) -> DiskAllocation:
        """The allocation this engine answers queries about."""
        return self._allocation

    @property
    def num_disks(self) -> int:
        """``M``, the number of disks."""
        return self._allocation.num_disks

    def nbytes(self) -> int:
        """Memory footprint of the precomputed SAT, in bytes."""
        return int(self._sat.nbytes)

    def _validated_shape(self, shape: Sequence[int]) -> Tuple[int, ...]:
        grid = self._allocation.grid
        shape = tuple(int(s) for s in shape)
        if len(shape) != grid.ndim:
            raise QueryError(
                f"shape arity {len(shape)} does not match grid {grid.dims}"
            )
        if any(s <= 0 for s in shape):
            raise QueryError(f"query side lengths must be positive: {shape}")
        return shape

    def disk_window_counts(self, shape: Sequence[int]) -> np.ndarray:
        """Per-disk bucket counts of ``shape`` at every placement.

        Returns an array of shape ``(M, d_1 - s_1 + 1, ..., d_k - s_k + 1)``
        whose ``[m]`` plane holds, for each placement origin, how many of
        the window's buckets live on disk ``m``.  Shapes that do not fit
        yield an empty array (some output extent is 0), mirroring
        :func:`repro.core.cost.sliding_response_times`.
        """
        shape = self._validated_shape(shape)
        dims = self._allocation.grid.dims
        out_shape = tuple(max(d - s + 1, 0) for s, d in zip(shape, dims))
        if any(s > d for s, d in zip(shape, dims)):
            return np.zeros((self.num_disks,) + out_shape, dtype=np.int64)

        ndim = len(dims)
        counts: np.ndarray = np.zeros(0)
        for corner in range(1 << ndim):
            slices = [slice(None)]
            parity = 0
            for axis in range(ndim):
                if (corner >> axis) & 1:
                    # Low corner on this axis: origin o (subtracted term).
                    slices.append(slice(0, dims[axis] - shape[axis] + 1))
                    parity ^= 1
                else:
                    # High corner: o + s (added term).
                    slices.append(slice(shape[axis], dims[axis] + 1))
            term = self._sat[tuple(slices)]
            if corner == 0:
                counts = term.astype(np.int64, copy=True)
            elif parity:
                counts -= term
            else:
                counts += term
        return counts

    def sliding_response_times(self, shape: Sequence[int]) -> np.ndarray:
        """Response time of ``shape`` at every placement — engine fast path.

        Bit-identical to
        :func:`repro.core.cost.sliding_response_times` on the same
        allocation (all-integer arithmetic, no rounding), but amortizes the
        prefix-sum work across every shape asked of this engine.
        """
        return self.disk_window_counts(shape).max(axis=0)
