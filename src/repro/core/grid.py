"""The k-dimensional grid of buckets underlying a cartesian-product file.

A relation with ``k`` attributes is range-partitioned attribute by attribute:
attribute ``i`` is split into ``d_i`` intervals, so the data space becomes a
``d_1 x d_2 x ... x d_k`` grid.  Each cell of the grid is a *bucket* — the
unit of disk allocation.  A bucket is identified by its coordinate vector
``<i_1, ..., i_k>`` with ``0 <= i_j < d_j``.

This module is purely combinatorial: it knows nothing about attribute values
(see :mod:`repro.gridfile` for the record-level substrate) or disks (see
:mod:`repro.core.allocation`).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.core.exceptions import GridError

__all__ = [
    "Coords",
    "Grid",
]

Coords = Tuple[int, ...]


class Grid:
    """An immutable k-dimensional grid of buckets.

    Parameters
    ----------
    dims:
        Number of partitions per attribute, e.g. ``(32, 32)`` for the paper's
        default two-attribute database with 1024 buckets.  Every extent must
        be a positive integer.

    Examples
    --------
    >>> g = Grid((4, 8))
    >>> g.num_buckets
    32
    >>> g.linear_index((1, 2))
    10
    >>> g.coords_of(10)
    (1, 2)
    """

    __slots__ = ("_dims", "_strides", "_num_buckets")

    def __init__(self, dims: Sequence[int]):
        original = tuple(dims)
        dims = tuple(int(d) for d in original)
        if any(d != o for d, o in zip(dims, original)):
            raise GridError(
                f"grid extents must be integral, got {original}"
            )
        if not dims:
            raise GridError("a grid needs at least one dimension")
        if any(d <= 0 for d in dims):
            raise GridError(f"all grid extents must be positive, got {dims}")
        self._dims = dims
        # Row-major strides: the last coordinate varies fastest.
        strides = [1] * len(dims)
        for axis in range(len(dims) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * dims[axis + 1]
        self._strides = tuple(strides)
        num_buckets = 1
        for d in dims:
            num_buckets *= d
        self._num_buckets = num_buckets

    @property
    def dims(self) -> Coords:
        """Partition counts per attribute, ``(d_1, ..., d_k)``."""
        return self._dims

    @property
    def ndim(self) -> int:
        """Number of attributes ``k``."""
        return len(self._dims)

    @property
    def num_buckets(self) -> int:
        """Total bucket count ``d_1 * ... * d_k``."""
        return self._num_buckets

    def contains(self, coords: Sequence[int]) -> bool:
        """Return whether ``coords`` names a bucket of this grid."""
        if len(coords) != self.ndim:
            return False
        return all(0 <= c < d for c, d in zip(coords, self._dims))

    def validate_coords(self, coords: Sequence[int]) -> Coords:
        """Return ``coords`` as a tuple, raising :class:`GridError` if invalid."""
        coords = tuple(int(c) for c in coords)
        if len(coords) != self.ndim:
            raise GridError(
                f"expected {self.ndim} coordinates, got {len(coords)}: {coords}"
            )
        if not self.contains(coords):
            raise GridError(f"coordinates {coords} outside grid {self._dims}")
        return coords

    def linear_index(self, coords: Sequence[int]) -> int:
        """Row-major linear index of a bucket (last axis fastest)."""
        coords = self.validate_coords(coords)
        return sum(c * s for c, s in zip(coords, self._strides))

    def coords_of(self, index: int) -> Coords:
        """Inverse of :meth:`linear_index`."""
        index = int(index)
        if not 0 <= index < self._num_buckets:
            raise GridError(
                f"linear index {index} outside [0, {self._num_buckets})"
            )
        coords = []
        for stride in self._strides:
            coords.append(index // stride)
            index %= stride
        return tuple(coords)

    def iter_buckets(self) -> Iterator[Coords]:
        """Yield every bucket coordinate in row-major order."""
        return itertools.product(*(range(d) for d in self._dims))

    def coordinate_arrays(self) -> Tuple[np.ndarray, ...]:
        """Per-axis coordinate arrays, each shaped like the grid.

        ``coordinate_arrays()[j][i_1, ..., i_k] == i_j`` — the vectorized
        counterpart of :meth:`iter_buckets`, used by schemes to compute a
        whole allocation table in one shot.
        """
        return tuple(
            np.indices(self._dims, dtype=np.int64)[axis]
            for axis in range(self.ndim)
        )

    def is_hypercube(self) -> bool:
        """Whether every attribute has the same number of partitions."""
        return len(set(self._dims)) == 1

    def bits_per_axis(self) -> Tuple[int, ...]:
        """Minimum bits needed to represent each coordinate, ``ceil(log2 d_i)``.

        An extent of 1 needs 0 bits (the coordinate is always 0).
        """
        return tuple(max(d - 1, 0).bit_length() for d in self._dims)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Grid) and other._dims == self._dims

    def __hash__(self) -> int:
        return hash(self._dims)

    def __repr__(self) -> str:
        return f"Grid(dims={self._dims})"
