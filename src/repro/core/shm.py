"""Zero-copy allocation sharing over ``multiprocessing.shared_memory``.

The parallel experiment runner fans independent experiments out over a
spawn-context process pool.  Each worker imports the package fresh, so
without coordination every worker re-materializes the same
``(scheme, grid, M)`` allocations the others already built — the exact
duplication the in-process :class:`~repro.core.cache.AllocationCache`
eliminates within one process.  This module extends that cache across
processes:

* :func:`share_allocation` copies an allocation's (compact-dtype) table
  into a named ``SharedMemory`` segment and returns a tiny picklable
  :class:`SharedTableHandle`;
* :func:`attach_allocation` maps a handle back into a read-only
  :class:`~repro.core.allocation.DiskAllocation` **without copying** —
  the numpy table is a view straight onto the shared segment;
* :class:`SharedAllocationBroker` is the cross-process registry the
  cache consults on a miss: the first process to build a triple
  publishes it, every other process attaches zero-copy;
* :class:`SharedAllocationArena` is the parent-side owner: it hosts the
  broker's managed state and guarantees **deterministic teardown** —
  every segment ever reserved is unlinked in :meth:`~SharedAllocationArena.close`,
  even segments whose publishing worker crashed mid-write.

Correctness notes.  Scheme allocation is contractually deterministic
(QA405), so a table attached from another process is bit-identical to
the one the attaching process would have built — sharing is
semantics-free, it only moves time and memory around.  The broker keys
on the *scheme name* alone (handles must be picklable); it is therefore
only installed by the parallel runner, whose spawn workers see the
pristine default registry — never share a broker across processes that
re-register scheme names.

Resource-tracker note.  Python's ``resource_tracker`` would unlink a
segment as soon as *any* tracked process exits, which is exactly wrong
for segments whose lifetime the arena owns.  Every ``SharedMemory``
opened here is immediately untracked (``track=False`` on 3.13+, manual
unregister before that); the arena's name ledger is the single source
of truth for teardown.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import re
import secrets
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.allocation import DiskAllocation, table_dtype
from repro.core.grid import Grid
from repro.faults.io import maybe_io_fault
from repro.obs.log import get_logger
from repro.obs.metrics import global_registry
from repro.obs.trace import trace

_LOG = get_logger("repro.core.shm")

__all__ = [
    "SHM_NAME_PREFIX",
    "MmapSatHandle",
    "SharedAllocationArena",
    "SharedAllocationBroker",
    "SharedTableHandle",
    "attach_allocation",
    "reap_stale_server_segments",
    "segment_owner_pid",
    "server_segment_prefix",
    "share_allocation",
    "stray_segments",
]

#: Every segment this module creates starts with this prefix, which is
#: what the leak check greps /dev/shm for.
SHM_NAME_PREFIX = "repro-shm"

#: Segments whose lifetime is owned by a long-running server process
#: carry the owner's pid in the name (``repro-shm-srv<pid>-...``), so a
#: later process — a restarted daemon, ``repro doctor`` — can tell a
#: live server's segments from a crashed one's without the (long gone)
#: ledger.  Short-lived runs keep the untagged historical names.
_SERVER_OWNER_RE = re.compile(
    rf"^{re.escape(SHM_NAME_PREFIX)}-srv(\d+)-"
)


def server_segment_prefix(pid: Optional[int] = None) -> str:
    """The segment-name prefix a server owned by ``pid`` must use."""
    return f"{SHM_NAME_PREFIX}-srv{os.getpid() if pid is None else pid}"


def segment_owner_pid(name: str) -> Optional[int]:
    """The owner pid embedded in a server-tagged segment name, or None.

    Only names carrying the explicit ``srv`` marker resolve — a bare
    pid-looking token in an untagged name (the historical
    ``repro-shm-<pid>-<token>`` form) stays anonymous on purpose, so
    crashed short-lived runs are never mistaken for live servers.
    """
    match = _SERVER_OWNER_RE.match(name)
    return int(match.group(1)) if match else None


def _pid_alive(pid: int) -> bool:
    """True if a process with ``pid`` currently exists."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def reap_stale_server_segments(
    prefix: str = SHM_NAME_PREFIX,
) -> List[str]:
    """Unlink server-tagged segments whose owner process is gone.

    A daemon that restarts cannot rely on its predecessor's ledger (it
    died with the manager process), so at startup it sweeps ``/dev/shm``
    for ``srv``-tagged names and unlinks every one whose embedded owner
    pid no longer exists.  Segments owned by a *live* pid — another
    server still running — are left alone.  Returns the reaped names.
    """
    reaped = []
    for name in stray_segments(prefix):
        owner = segment_owner_pid(name)
        if owner is None or _pid_alive(owner):
            continue
        if unlink_segment(name):
            reaped.append(name)
    if reaped:
        _LOG.info(
            "reaped %d stale server segment(s): %s",
            len(reaped), ", ".join(reaped),
        )
        global_registry().inc("shm.reaped_segments", len(reaped))
    return reaped


@contextlib.contextmanager
def _tracker_silenced():
    """Suppress resource-tracker traffic for the enclosed shm calls.

    Pre-3.13 ``SharedMemory`` registers every open (attach included)
    with the resource tracker and unregisters inside ``unlink()``.  The
    tracker's registry is a *set* shared by all processes of a spawn
    tree, so concurrent opens of one segment from two workers collapse
    to a single entry and the second unregister crashes the tracker
    loop with a KeyError.  Since the arena owns segment lifetime
    outright, the clean semantics are 3.13's ``track=False``: no
    tracker traffic at all — which this shim retrofits by no-opping
    the module hooks around the stdlib call.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    original_unregister = resource_tracker.unregister
    resource_tracker.register = lambda name, rtype: None
    resource_tracker.unregister = lambda name, rtype: None
    try:
        yield
    finally:
        resource_tracker.register = original_register
        resource_tracker.unregister = original_unregister


def _open_segment(name: str, create: bool = False, size: int = 0):
    """Open a ``SharedMemory`` segment outside resource-tracker custody."""
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(
            name=name, create=create, size=size, track=False
        )
    except TypeError:  # Python < 3.13: no track parameter
        with _tracker_silenced():
            return shared_memory.SharedMemory(
                name=name, create=create, size=size
            )


@dataclass(frozen=True)
class SharedTableHandle:
    """Everything needed to re-open a shared allocation table.

    Small and picklable — this is what crosses process boundaries in
    place of the table itself.
    """

    name: str
    dims: Tuple[int, ...]
    num_disks: int

    @property
    def nbytes(self) -> int:
        """Size of the shared table in bytes."""
        size = 1
        for extent in self.dims:
            size *= int(extent)
        return size * table_dtype(self.num_disks).itemsize


@dataclass(frozen=True)
class MmapSatHandle:
    """Everything needed to re-open a chunked/spilled summed-area table.

    The ``.npy`` header already carries shape and dtype, so the *path*
    alone is a complete handle — tiny, picklable, and safe to pass
    through spawn-pool initializers next to :class:`SharedTableHandle`.
    Unlike shared-memory segments there is nothing to unlink: the file's
    owner controls its lifetime, and any number of processes may map it
    read-only at once.
    """

    path: str

    def attach(self):
        """Memory-map the table read-only (zero-copy, per process)."""
        from repro.core.sat import SummedAreaTable

        return SummedAreaTable.open_mmap(self.path)

    def attach_engine(self):
        """Memory-map the table and wrap it in a query engine."""
        from repro.core.engine import ResponseTimeEngine

        return ResponseTimeEngine.open_mmap(self.path)

    @property
    def nbytes(self) -> int:
        """Size of the backing file in bytes."""
        return os.path.getsize(self.path)


#: Segments this process has attached, kept alive for the lifetime of
#: the numpy views handed out (closing a SharedMemory invalidates its
#: buffer).  Keyed by segment name; attach is idempotent per process.
_ATTACHED: Dict[str, object] = {}


def share_allocation(
    allocation: DiskAllocation, name: Optional[str] = None
) -> SharedTableHandle:
    """Copy an allocation's table into a named shared-memory segment.

    Returns the handle; the segment stays alive until someone unlinks it
    (the arena's job).  ``name`` defaults to a fresh unique name under
    :data:`SHM_NAME_PREFIX`.
    """
    if name is None:
        name = f"{SHM_NAME_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
    table = allocation.table
    with trace("shm.share", segment=name, nbytes=int(table.nbytes)):
        segment = _open_segment(name, create=True, size=table.nbytes)
        try:
            view = np.ndarray(
                table.shape, dtype=table.dtype, buffer=segment.buf
            )
            view[...] = table
        finally:
            # The data is in the kernel object; this process-local
            # mapping can close (attach_allocation re-opens it when
            # needed).
            segment.close()
    global_registry().inc("shm.shares")
    return SharedTableHandle(
        name=name,
        dims=allocation.grid.dims,
        num_disks=allocation.num_disks,
    )


def attach_allocation(handle: SharedTableHandle) -> DiskAllocation:
    """Map a shared table back into a zero-copy ``DiskAllocation``.

    Raises ``FileNotFoundError`` if the segment no longer exists (e.g.
    the run that published it already tore down) — callers treat that as
    a cache miss.
    """
    segment = _ATTACHED.get(handle.name)
    if segment is None:
        maybe_io_fault("shm.attach", handle.name)
        with trace("shm.attach", segment=handle.name):
            segment = _open_segment(handle.name)
        # _ATTACHED is deliberately per-process: each worker ledgers
        # only its own mappings and detach_all() closes exactly those.
        _ATTACHED[handle.name] = segment  # qa601: allow — per-process segment ledger by design
        global_registry().inc("shm.attaches")
    table = np.ndarray(
        handle.dims,
        dtype=table_dtype(handle.num_disks),
        buffer=segment.buf,  # type: ignore[attr-defined]
    )
    return DiskAllocation.from_buffer(
        Grid(handle.dims), handle.num_disks, table
    )


def detach_all() -> int:
    """Close every segment this process attached; returns the count.

    Only safe when no live ``DiskAllocation`` still views the buffers —
    used by tests and at deliberate teardown points.
    """
    count = 0
    for name in list(_ATTACHED):
        segment = _ATTACHED.pop(name)
        try:
            segment.close()
        except OSError as exc:
            # Mapping already invalidated; nothing left to release, but
            # record the cause so leaked segments stay diagnosable.
            _LOG.debug("detach of segment %s failed: %r", name, exc)
            global_registry().inc("shm.detach_errors")
        count += 1
    return count


def unlink_segment(name: str) -> bool:
    """Best-effort unlink of one segment; True if it existed."""
    try:
        segment = _ATTACHED.pop(name, None) or _open_segment(name)  # qa601: allow — removes only this process's ledger entry
    except FileNotFoundError:
        return False
    try:
        with _tracker_silenced():
            segment.unlink()
    except FileNotFoundError:
        return False
    finally:
        try:
            segment.close()
        except OSError as exc:
            # Already closed or mapping gone; the unlink itself
            # happened, but leave a trace of the close failure.
            _LOG.debug("close after unlink of %s failed: %r", name, exc)
            global_registry().inc("shm.close_errors")
    global_registry().inc("shm.unlinked_segments")
    return True


def stray_segments(prefix: str = SHM_NAME_PREFIX) -> list:
    """Names of live shared-memory segments under ``prefix``.

    Reads ``/dev/shm`` where available (Linux); elsewhere returns an
    empty list.  The CI leak gate asserts this is empty after a full
    parallel run.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return sorted(
        entry
        for entry in os.listdir(shm_dir)
        if entry.startswith(prefix)
    )


class SharedAllocationBroker:
    """Cross-process publish/attach registry for allocation tables.

    Holds only picklable manager proxies, so the whole broker travels to
    spawn workers via the pool initializer.  Workers call :meth:`get` on
    a cache miss and :meth:`publish` after building — the first writer
    wins, later writers discard their duplicate segment and attach the
    winner's.
    """

    def __init__(self, registry, ledger, prefix: str):
        self._registry = registry  # key -> SharedTableHandle
        self._ledger = ledger  # every segment name ever reserved
        self._prefix = prefix
        self._counter = itertools.count()

    @staticmethod
    def _key(scheme_name: str, grid: Grid, num_disks: int) -> str:
        return f"{scheme_name}|{grid.dims}|{int(num_disks)}"

    @staticmethod
    def _sat_key(scheme_name: str, grid: Grid, num_disks: int) -> str:
        # Distinct namespace from the in-RAM table keys: the same triple
        # may be published both as a shared-memory table and as a
        # spilled SAT path.
        return f"sat|{scheme_name}|{grid.dims}|{int(num_disks)}"

    def get_sat(
        self, scheme_name: str, grid: Grid, num_disks: int
    ) -> Optional[MmapSatHandle]:
        """The published spilled-SAT handle for the triple, or None.

        The path is existence-checked before it is returned, so a
        handle whose backing file was deleted behaves like a miss (the
        caller builds and republishes) instead of an open error.
        """
        handle = self._registry.get(
            self._sat_key(scheme_name, grid, num_disks)
        )
        if handle is None or not os.path.exists(handle.path):
            return None
        return handle

    def publish_sat(
        self,
        scheme_name: str,
        grid: Grid,
        num_disks: int,
        path: Union[str, os.PathLike],
    ) -> MmapSatHandle:
        """Publish the path of a finished spilled SAT (first writer wins).

        Unlike :meth:`publish` there is no segment to copy or unlink —
        the handle *is* the path, any number of workers may map the file
        read-only at once, and the OS page cache backs them all with one
        set of physical pages.  That single shared mapping is the whole
        point: an ``--workers N`` fleet touching one beyond-RAM table
        faults each page in once, not N times.
        """
        handle = MmapSatHandle(path=os.fspath(path))
        key = self._sat_key(scheme_name, grid, num_disks)
        try:
            winner = self._registry.setdefault(key, handle)
        except Exception as exc:  # qa502: allow — logged and counted, the private handle is correct
            _LOG.warning(
                "spilled-SAT publish of %s fell back to a private "
                "handle (broker registry unreachable): %r", key, exc,
            )
            global_registry().inc("shm.publish_fallbacks")
            return handle
        if winner.path != handle.path:
            return winner
        global_registry().inc("shm.sat_publishes")
        return handle

    def _reserve_name(self) -> str:
        # The name goes on the ledger *before* the segment exists, so a
        # crash between reservation and creation leaks nothing the
        # arena's teardown cannot find.
        name = (
            f"{self._prefix}-{os.getpid()}-{next(self._counter)}"
        )
        self._ledger.append(name)
        return name

    def get(
        self, scheme_name: str, grid: Grid, num_disks: int
    ) -> Optional[DiskAllocation]:
        """Zero-copy attach of a previously published triple, or None."""
        handle = self._registry.get(self._key(scheme_name, grid, num_disks))
        if handle is None:
            return None
        try:
            return attach_allocation(handle)
        except FileNotFoundError:
            return None
        except OSError as exc:
            # The segment exists but could not be mapped (EMFILE, a
            # half-torn-down arena, an injected fault): treat it as a
            # cache miss — the caller rebuilds privately — but loudly.
            _LOG.warning(
                "shm attach of %s failed, rebuilding privately: %r",
                handle.name,
                exc,
            )
            global_registry().inc("shm.attach_faults")
            return None

    def publish(
        self,
        scheme_name: str,
        grid: Grid,
        num_disks: int,
        allocation: DiskAllocation,
    ) -> DiskAllocation:
        """Publish a freshly built allocation; returns the shared copy.

        The returned allocation views shared memory (so even the
        publishing process drops its private table once the entry is
        cached).  On a publish race the duplicate segment is unlinked
        and the winner's table attached instead.
        """
        key = self._key(scheme_name, grid, num_disks)
        name = self._reserve_name()
        handle = share_allocation(allocation, name=name)  # qa602: allow — name pre-reserved in the broker ledger, which owns teardown
        try:
            winner = self._registry.setdefault(key, handle)
        except Exception as exc:  # qa502: allow — logged and counted, private fallback is correct
            # Manager connection gone (teardown raced us): fall back to
            # the private allocation; the ledger still covers the
            # segment.  Previously swallowed silently — now logged and
            # counted so broker outages are diagnosable.
            _LOG.warning(
                "shm publish of %s fell back to a private table "
                "(broker registry unreachable): %r", key, exc,
            )
            global_registry().inc("shm.publish_fallbacks")
            return allocation
        if winner.name != handle.name:
            unlink_segment(handle.name)
            attached = self.get(scheme_name, grid, num_disks)
            if attached is not None:
                return attached
            return allocation
        try:
            return attach_allocation(handle)
        except OSError as exc:
            # We just created the segment, so a failed re-attach is a
            # torn-down arena or an injected fault; the private table
            # is still correct — serve it and count the degradation.
            _LOG.warning(
                "re-attach of freshly published %s failed, serving "
                "the private table: %r",
                handle.name,
                exc,
            )
            global_registry().inc("shm.attach_faults")
            return allocation

    def segment_names(self) -> list:
        """Every segment name ever reserved through this broker."""
        return list(self._ledger)

    def unlink_all(self) -> int:
        """Unlink every reserved segment; returns how many existed."""
        count = 0
        for name in self.segment_names():
            if unlink_segment(name):
                count += 1
        return count


class SharedAllocationArena:
    """Parent-side owner of a broker and its manager process.

    Usage (what the parallel runner does)::

        arena = SharedAllocationArena.try_create()
        try:
            ...  # hand arena.broker to worker initializers
        finally:
            if arena is not None:
                arena.close()

    ``close`` unlinks every segment on the ledger and shuts the manager
    down — after it returns, ``stray_segments()`` sees nothing from this
    run even if workers crashed or hung mid-publish.
    """

    def __init__(
        self,
        manager,
        broker: SharedAllocationBroker,
        prefix: Optional[str] = None,
    ):
        self._manager = manager
        self.broker = broker
        # Remembered parent-side so teardown can sweep /dev/shm by
        # prefix even when the manager (and with it the ledger proxy)
        # is already dead.
        self._prefix = prefix if prefix is not None else broker._prefix

    @classmethod
    def try_create(
        cls, server_owned: bool = False
    ) -> Optional["SharedAllocationArena"]:
        """Build an arena, or None where managers/shm are unavailable.

        ``server_owned=True`` tags every segment name with this
        process's pid (``repro-shm-srv<pid>-...``) so restarted daemons
        and ``repro doctor`` can distinguish a live server's segments
        from a crashed one's — see :func:`reap_stale_server_segments`.
        """
        if os.environ.get("REPRO_DISABLE_SHM") == "1":
            return None
        if server_owned:
            prefix = f"{server_segment_prefix()}-{secrets.token_hex(4)}"
        else:
            prefix = f"{SHM_NAME_PREFIX}-{secrets.token_hex(4)}"
        try:
            import multiprocessing

            manager = multiprocessing.Manager()
            broker = SharedAllocationBroker(
                manager.dict(),
                manager.list(),
                prefix=prefix,
            )
        except Exception as exc:  # qa502: allow — logged and counted, None disables sharing
            # No manager / no shm on this platform: the parallel runner
            # degrades to per-worker private tables.  Previously
            # swallowed silently — now logged and counted so "why is
            # nothing shared?" has an answer.
            _LOG.warning(
                "shared-memory arena unavailable, running without "
                "zero-copy sharing: %r", exc,
            )
            global_registry().inc("shm.arena_failures")
            return None
        return cls(manager, broker, prefix=prefix)

    def close(self) -> None:
        """Unlink all segments, then stop the manager (idempotent).

        Teardown never trusts the ledger alone: after draining it (or
        failing to — the manager hosting the ledger proxy may already
        be dead), every surviving ``/dev/shm`` entry under this arena's
        unique prefix is unlinked directly.  That makes ``close``
        idempotent across daemon restarts and robust to the
        crashed-manager case that used to leak segments the ledger no
        longer tracked.
        """
        if self._manager is None:
            return
        try:
            with trace("shm.teardown"):
                try:
                    unlinked = self.broker.unlink_all()
                except Exception as exc:  # qa502: allow — logged and counted, prefix sweep below still collects
                    # The ledger lives in the manager process; if that
                    # died (daemon restart, crashed run) the proxy call
                    # fails — fall through to the prefix sweep, which
                    # needs no cooperating process.
                    _LOG.warning(
                        "arena ledger unreachable at teardown, "
                        "sweeping by prefix: %r", exc,
                    )
                    global_registry().inc("shm.teardown_errors")
                    unlinked = 0
                for name in stray_segments(self._prefix):
                    if unlink_segment(name):
                        unlinked += 1
            _LOG.debug("arena teardown unlinked %d segment(s)", unlinked)
        finally:
            try:
                self._manager.shutdown()
            except (OSError, EOFError) as exc:
                # Manager process already gone; nothing to stop, but
                # record it — a dead manager mid-run is how segments
                # used to leak without a trace.
                _LOG.warning("arena manager shutdown failed: %r", exc)
                global_registry().inc("shm.teardown_errors")
            self._manager = None
