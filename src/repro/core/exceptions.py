"""Exception hierarchy for the declustering library.

All library-raised errors derive from :class:`DeclusteringError`, so callers
can catch one type to handle any failure originating here while letting
genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "AllocationError",
    "BackendError",
    "CodeConstructionError",
    "DeclusteringError",
    "FaultError",
    "GridError",
    "IntegrityError",
    "GridFileError",
    "LayoutError",
    "ProtocolError",
    "QueryError",
    "RunnerError",
    "ServeError",
    "SchemeError",
    "SchemeNotApplicableError",
    "SearchBudgetExceeded",
    "SimulationError",
    "UnknownSchemeError",
    "WorkloadError",
]


class DeclusteringError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GridError(DeclusteringError):
    """Invalid grid specification (non-positive extents, bad dimensionality)."""


class QueryError(DeclusteringError):
    """Invalid query specification (bounds out of order, wrong arity)."""


class AllocationError(DeclusteringError):
    """Invalid bucket-to-disk allocation (bad shape, disk id out of range)."""


class SchemeError(DeclusteringError):
    """A declustering scheme cannot be applied to the given grid/disk count."""


class SchemeNotApplicableError(SchemeError):
    """The scheme's preconditions (e.g. M a power of two) are not met."""


class UnknownSchemeError(SchemeError, KeyError):
    """Requested scheme name is not present in the registry."""


class CodeConstructionError(DeclusteringError):
    """A GF(2) parity-check code with the requested parameters cannot be built."""


class SearchBudgetExceeded(DeclusteringError):
    """The exhaustive optimality search exceeded its node budget.

    Raised instead of returning a wrong existence verdict: the search is only
    allowed to answer "exists"/"does not exist" when it ran to completion.
    """


class BackendError(DeclusteringError):
    """A kernel backend is unknown, unavailable, or failed to initialize.

    Raised when ``REPRO_BACKEND`` (or ``--backend``) names a backend that
    is not registered or whose runtime dependency (numba, a C compiler)
    is missing — selecting a backend must fail loudly, never silently
    fall back to a different implementation than the one asked for.
    """


class IntegrityError(DeclusteringError):
    """A persisted artifact failed its integrity check.

    Raised when a spilled summed-area table, its sidecar manifest, or a
    cached compiled kernel library does not match its recorded digests —
    a truncated file, a torn write, or bit rot.  Loading such an
    artifact silently would produce wrong answers with no error, so the
    integrity layer (:mod:`repro.core.integrity`) raises this instead;
    callers with a rebuild path (the allocation cache, the native
    backend) may catch it, rebuild, and count the recovery.
    """


class LayoutError(AllocationError):
    """A summed-area-table layout is unavailable for the backing storage.

    Raised when a caller asks for a physical layout the table cannot
    provide — e.g. the disk-last (disk-contiguous) copy of a
    memory-mapped table, which would have to materialize the whole
    beyond-RAM file in memory.  The message names the table's actual
    layout and the supported alternatives, so callers can select one
    explicitly (the streamed gather via ``corner_counts``, or the
    ``cnative`` streaming kernel through the backend registry) instead
    of guessing.  Subclasses :class:`AllocationError` so existing
    handlers keep working.
    """


class SimulationError(DeclusteringError):
    """Invalid physical-disk simulation parameters."""


class WorkloadError(DeclusteringError):
    """Invalid workload-generator parameters."""


class GridFileError(DeclusteringError):
    """Invalid grid-file operation (bad record arity, unknown attribute)."""


class FaultError(DeclusteringError):
    """Invalid fault-model specification (bad disk id, factor, scenario)."""


class RunnerError(DeclusteringError):
    """The experiment runner could not complete the suite.

    Raised when an experiment keeps failing after its bounded retries are
    exhausted, or a checkpoint file cannot be used for the requested run.
    """


class ServeError(DeclusteringError):
    """The serving daemon could not start or answer a request.

    Raised for configuration problems (no preloaded scheme matches a
    request, a dead endpoint) and wrapped into typed error responses on
    the wire; request handlers never let it tear the connection down.
    """


class ProtocolError(ServeError):
    """A wire frame violates the serve protocol.

    Raised for truncated frames, length prefixes beyond the hard frame
    cap, unknown request kinds, or malformed headers/bodies.  The server
    answers with a typed error response where the stream is still
    parseable and closes the connection only when framing itself is
    unrecoverable (a half-received length, an oversized prefix).
    """
