"""Query model: range, partial-match, and point queries over a grid.

Definitions follow the paper exactly:

* **Range query** — for every attribute ``i`` a closed interval
  ``[l_i, u_i]`` of partition indices; the query touches every bucket whose
  coordinates fall inside all intervals (a hyper-rectangle of buckets).
* **Partial-match query** — a range query where each attribute is either
  fixed to a single partition (``l_i = u_i``) or left unspecified
  (``[0, d_i - 1]``).
* **Point query** — a partial-match query with every attribute specified.

Queries are defined in *bucket coordinates*.  Translating attribute-value
predicates into bucket intervals is the grid file's job
(:mod:`repro.gridfile`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import QueryError
from repro.core.grid import Coords, Grid

__all__ = [
    "QueryBatch",
    "RangeQuery",
    "all_placements",
    "partial_match_query",
    "point_query",
    "query_at",
    "shapes_with_area",
]


@dataclass(frozen=True)
class RangeQuery:
    """A hyper-rectangular query in bucket-coordinate space.

    ``lower[i] <= upper[i]`` and both bounds are inclusive, matching the
    paper's definition ``(l_i <= i_j <= u_i)``.

    Examples
    --------
    >>> q = RangeQuery((0, 2), (1, 5))
    >>> q.num_buckets
    8
    >>> q.side_lengths
    (2, 4)
    """

    lower: Coords
    upper: Coords

    def __post_init__(self) -> None:
        lower = tuple(int(c) for c in self.lower)
        upper = tuple(int(c) for c in self.upper)
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        if len(lower) != len(upper):
            raise QueryError(
                f"bound arity mismatch: lower={lower} upper={upper}"
            )
        if not lower:
            raise QueryError("a query needs at least one attribute")
        if any(lo > hi for lo, hi in zip(lower, upper)):
            raise QueryError(
                f"lower bound exceeds upper bound: lower={lower} upper={upper}"
            )
        if any(lo < 0 for lo in lower):
            raise QueryError(f"negative lower bound in {lower}")

    @property
    def ndim(self) -> int:
        """Number of attributes the query spans."""
        return len(self.lower)

    @property
    def side_lengths(self) -> Coords:
        """Number of partitions selected per attribute."""
        return tuple(hi - lo + 1 for lo, hi in zip(self.lower, self.upper))

    @property
    def num_buckets(self) -> int:
        """Total buckets touched, the product of the side lengths."""
        size = 1
        for side in self.side_lengths:
            size *= side
        return size

    def slices(self) -> Tuple[slice, ...]:
        """Numpy-compatible slices selecting the query's buckets."""
        return tuple(
            slice(lo, hi + 1) for lo, hi in zip(self.lower, self.upper)
        )

    def iter_buckets(self) -> Iterator[Coords]:
        """Yield every bucket the query touches, row-major."""
        return itertools.product(
            *(range(lo, hi + 1) for lo, hi in zip(self.lower, self.upper))
        )

    def contains_bucket(self, coords: Sequence[int]) -> bool:
        """Whether a bucket falls inside the query rectangle."""
        if len(coords) != self.ndim:
            return False
        return all(
            lo <= c <= hi
            for c, lo, hi in zip(coords, self.lower, self.upper)
        )

    def intersect(self, other: "RangeQuery") -> Optional["RangeQuery"]:
        """The overlap of two queries, or ``None`` if they are disjoint."""
        if other.ndim != self.ndim:
            raise QueryError(
                f"cannot intersect {self.ndim}-d and {other.ndim}-d queries"
            )
        lower = tuple(max(a, b) for a, b in zip(self.lower, other.lower))
        upper = tuple(min(a, b) for a, b in zip(self.upper, other.upper))
        if any(lo > hi for lo, hi in zip(lower, upper)):
            return None
        return RangeQuery(lower, upper)

    def clip_to(self, grid: Grid) -> Optional["RangeQuery"]:
        """Restrict the query to the grid, or ``None`` if fully outside."""
        if grid.ndim != self.ndim:
            raise QueryError(
                f"{self.ndim}-d query does not match {grid.ndim}-d grid"
            )
        full = RangeQuery((0,) * grid.ndim, tuple(d - 1 for d in grid.dims))
        return self.intersect(full)

    def fits_in(self, grid: Grid) -> bool:
        """Whether the query lies entirely inside the grid."""
        return grid.ndim == self.ndim and all(
            hi < d for hi, d in zip(self.upper, grid.dims)
        )

    def is_partial_match(self, grid: Grid) -> bool:
        """Whether each attribute is either a single value or the full domain."""
        if grid.ndim != self.ndim:
            return False
        return all(
            lo == hi or (lo == 0 and hi == d - 1)
            for lo, hi, d in zip(self.lower, self.upper, grid.dims)
        )

    def is_point(self) -> bool:
        """Whether the query selects exactly one bucket."""
        return self.lower == self.upper

    def __repr__(self) -> str:
        ranges = ", ".join(
            f"[{lo}..{hi}]" for lo, hi in zip(self.lower, self.upper)
        )
        return f"RangeQuery({ranges})"


class QueryBatch:
    """N queries pre-clipped to a grid, as half-open bounds arrays.

    Converting a sequence of :class:`RangeQuery` objects into ``(N, k)``
    bounds arrays is a per-query Python loop — for large batches it can
    cost as much as the kernel that answers them.  A ``QueryBatch`` does
    that conversion **once**; the engine's batch methods accept it in
    place of a query sequence, so repeated evaluations of the same
    workload (benchmarks, backend comparisons, repeated experiments) pay
    the conversion a single time.

    Attributes
    ----------
    lo, hi:
        Clipped bounds, shape ``(N, k)`` int64 each, lower inclusive /
        upper exclusive.  A query clipped to nothing has a zero-extent
        box (``hi == lo``), preserving the scalar path's 0-bucket
        semantics.
    dims:
        The grid extents the batch was clipped against; the engine
        refuses batches clipped for a different grid.
    """

    __slots__ = ("lo", "hi", "dims")

    def __init__(self, lo: np.ndarray, hi: np.ndarray, dims: Coords):
        lo = np.ascontiguousarray(lo, dtype=np.int64)
        hi = np.ascontiguousarray(hi, dtype=np.int64)
        if lo.shape != hi.shape or lo.ndim != 2:
            raise QueryError(
                f"bounds must be matching (N, k) arrays, got "
                f"{lo.shape} and {hi.shape}"
            )
        if lo.shape[1] != len(dims):
            raise QueryError(
                f"{lo.shape[1]}-d bounds do not match grid {dims}"
            )
        self.lo = lo
        self.hi = hi
        self.dims = tuple(int(d) for d in dims)

    @classmethod
    def from_queries(
        cls, queries: Sequence[RangeQuery], grid: Grid
    ) -> "QueryBatch":
        """Clip ``queries`` against ``grid`` (the one-time conversion)."""
        ndim = grid.ndim
        for query in queries:
            if query.ndim != ndim:
                raise QueryError(
                    f"{query.ndim}-d query does not match "
                    f"{ndim}-d grid"
                )
        if not len(queries):
            empty = np.zeros((0, ndim), dtype=np.int64)
            return cls(empty, empty.copy(), grid.dims)
        dims = np.asarray(grid.dims, dtype=np.int64)
        lower = np.array([q.lower for q in queries], dtype=np.int64)
        upper = np.array([q.upper for q in queries], dtype=np.int64)
        lo = np.minimum(lower, dims)
        hi = np.maximum(np.minimum(upper + 1, dims), lo)
        return cls(lo, hi, grid.dims)

    def __len__(self) -> int:
        return int(self.lo.shape[0])

    def __repr__(self) -> str:
        return (
            f"QueryBatch(n={len(self)}, dims={self.dims})"
        )


def partial_match_query(
    grid: Grid, specified: Sequence[Optional[int]]
) -> RangeQuery:
    """Build a partial-match query.

    Parameters
    ----------
    grid:
        The grid the query runs against (supplies domains for unspecified
        attributes).
    specified:
        One entry per attribute: a partition index to fix that attribute, or
        ``None`` to leave it unspecified.

    Examples
    --------
    >>> q = partial_match_query(Grid((4, 4)), [2, None])
    >>> (q.lower, q.upper)
    ((2, 0), (2, 3))
    """
    if len(specified) != grid.ndim:
        raise QueryError(
            f"expected {grid.ndim} attribute specs, got {len(specified)}"
        )
    lower = []
    upper = []
    for value, extent in zip(specified, grid.dims):
        if value is None:
            lower.append(0)
            upper.append(extent - 1)
        else:
            value = int(value)
            if not 0 <= value < extent:
                raise QueryError(
                    f"specified value {value} outside domain [0, {extent})"
                )
            lower.append(value)
            upper.append(value)
    return RangeQuery(tuple(lower), tuple(upper))


def point_query(grid: Grid, coords: Sequence[int]) -> RangeQuery:
    """A query selecting the single bucket at ``coords``."""
    coords = grid.validate_coords(coords)
    return RangeQuery(coords, coords)


def query_at(origin: Sequence[int], shape: Sequence[int]) -> RangeQuery:
    """A range query of the given ``shape`` with lower corner at ``origin``."""
    origin = tuple(int(c) for c in origin)
    shape = tuple(int(s) for s in shape)
    if len(origin) != len(shape):
        raise QueryError(
            f"origin arity {len(origin)} != shape arity {len(shape)}"
        )
    if any(s <= 0 for s in shape):
        raise QueryError(f"query side lengths must be positive, got {shape}")
    upper = tuple(o + s - 1 for o, s in zip(origin, shape))
    return RangeQuery(origin, upper)


def all_placements(grid: Grid, shape: Sequence[int]) -> Iterator[RangeQuery]:
    """Every placement of a query of the given shape inside the grid.

    This is how the experiments compute *exact* average response times: the
    mean over all placements replaces the paper's random sampling with a
    zero-variance enumeration (feasible because cost evaluation is cheap).
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) != grid.ndim:
        raise QueryError(
            f"shape arity {len(shape)} does not match grid {grid.dims}"
        )
    if any(s <= 0 for s in shape):
        raise QueryError(f"query side lengths must be positive, got {shape}")
    if any(s > d for s, d in zip(shape, grid.dims)):
        return iter(())
    origins = itertools.product(
        *(range(d - s + 1) for s, d in zip(shape, grid.dims))
    )
    return (query_at(origin, shape) for origin in origins)


def shapes_with_area(
    grid: Grid, area: int, max_shapes: Optional[int] = None
) -> Iterator[Coords]:
    """All query shapes (side-length vectors) of a given bucket count.

    Yields every factorization ``s_1 * ... * s_k = area`` with
    ``s_j <= d_j``, in lexicographic order.  ``max_shapes`` truncates the
    enumeration (useful for very composite areas in high dimension).
    """
    if area <= 0:
        raise QueryError(f"query area must be positive, got {area}")

    def factorizations(remaining: int, axis: int) -> Iterator[Coords]:
        if axis == grid.ndim - 1:
            if remaining <= grid.dims[axis]:
                yield (remaining,)
            return
        for side in range(1, min(remaining, grid.dims[axis]) + 1):
            if remaining % side == 0:
                for rest in factorizations(remaining // side, axis + 1):
                    yield (side,) + rest

    shapes = factorizations(area, 0)
    if max_shapes is not None:
        shapes = itertools.islice(shapes, max_shapes)
    return shapes
