"""Response-time cost model.

The paper's performance metric: with one bucket read costing one time unit
and all ``M`` disks operating in parallel, the **response time** of a query
is the number of buckets on the busiest disk among those the query touches,

    RT(Q, A) = max_d |{ b in Q : A(b) = d }|.

The unbeatable lower bound is the **optimal response time**

    OPT(Q, M) = ceil(|Q| / M),

achieved exactly when the query's buckets are spread as evenly as possible.
A scheme is *strictly optimal* when RT = OPT for every query in some class
(range, partial match, ...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import QueryError
from repro.core.query import RangeQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import ResponseTimeEngine

__all__ = [
    "BATCH_THRESHOLD",
    "additive_deviation",
    "average_response_time",
    "buckets_per_disk",
    "optimal_response_time",
    "optimal_times",
    "per_query_costs",
    "placements_at_optimal",
    "query_optimal",
    "relative_deviation",
    "response_time",
    "response_times",
    "sliding_response_times",
    "worst_response_time",
]


def optimal_response_time(num_buckets: int, num_disks: int) -> int:
    """``ceil(num_buckets / num_disks)`` — the paper's optimal yardstick."""
    if num_buckets < 0:
        raise QueryError(f"bucket count must be non-negative: {num_buckets}")
    if num_disks <= 0:
        raise QueryError(f"disk count must be positive: {num_disks}")
    return -(-num_buckets // num_disks)


def buckets_per_disk(allocation: DiskAllocation, query: RangeQuery) -> np.ndarray:
    """Per-disk bucket counts for a query, ``shape (M,)``."""
    if query.ndim != allocation.grid.ndim:
        raise QueryError(
            f"{query.ndim}-d query does not match "
            f"{allocation.grid.ndim}-d allocation"
        )
    if not query.fits_in(allocation.grid):
        clipped = query.clip_to(allocation.grid)
        if clipped is None:
            return np.zeros(allocation.num_disks, dtype=np.int64)
        query = clipped
    region = allocation.table[query.slices()]
    return np.bincount(region.ravel(), minlength=allocation.num_disks)


def response_time(allocation: DiskAllocation, query: RangeQuery) -> int:
    """Buckets on the busiest disk for this query (0 for an empty query)."""
    counts = buckets_per_disk(allocation, query)
    return int(counts.max()) if counts.size else 0


def query_optimal(query: RangeQuery, num_disks: int) -> int:
    """OPT for a query that fits in the grid: ``ceil(|Q| / M)``."""
    return optimal_response_time(query.num_buckets, num_disks)


def _effective_optimal(allocation: DiskAllocation, query: RangeQuery) -> int:
    """OPT of the part of ``query`` inside the grid (0 if fully outside).

    Response times are computed on the clipped query (buckets outside the
    grid do not exist, so no disk reads them); the deviation metrics must
    use the same effective bucket count or a query clipped to nothing
    would divide by zero.
    """
    if query.ndim != allocation.grid.ndim:
        raise QueryError(
            f"{query.ndim}-d query does not match "
            f"{allocation.grid.ndim}-d allocation"
        )
    if not query.fits_in(allocation.grid):
        clipped = query.clip_to(allocation.grid)
        if clipped is None:
            return 0
        query = clipped
    return optimal_response_time(query.num_buckets, allocation.num_disks)


def additive_deviation(allocation: DiskAllocation, query: RangeQuery) -> int:
    """``RT - OPT`` for one query; 0 means the scheme was optimal on it."""
    return response_time(allocation, query) - query_optimal(
        query, allocation.num_disks
    )


def relative_deviation(allocation: DiskAllocation, query: RangeQuery) -> float:
    """``(RT - OPT) / OPT`` for one query (0.0 when it clips to nothing).

    OPT is taken over the query's buckets *inside* the grid, matching the
    clipping :func:`response_time` applies; a query entirely outside the
    grid has RT = OPT = 0 and deviates by 0.0 by convention.
    """
    opt = _effective_optimal(allocation, query)
    if opt == 0:
        return 0.0
    return (response_time(allocation, query) - opt) / opt


#: Batch size from which ``response_times`` builds a summed-area-table
#: engine instead of looping: below this the per-query bincount loop is
#: cheaper than the one-time SAT precomputation.  Results are
#: bit-identical either way, so the threshold only moves time around.
BATCH_THRESHOLD = 16


def response_times(
    allocation: DiskAllocation,
    queries: Iterable[RangeQuery],
    engine: Optional["ResponseTimeEngine"] = None,
) -> np.ndarray:
    """Vector of response times, one per query.

    When ``engine`` (a :class:`~repro.core.engine.ResponseTimeEngine`
    built on the same allocation) is given, the whole batch is answered
    through its summed-area table with no per-query Python loop; with no
    engine one is built on the fly once the batch reaches
    :data:`BATCH_THRESHOLD` queries.  All three paths are bit-identical —
    the scalar loop stays the reference oracle.
    """
    queries = list(queries)
    if engine is None and len(queries) >= BATCH_THRESHOLD:
        from repro.core.engine import ResponseTimeEngine

        engine = ResponseTimeEngine(allocation)
    if engine is not None:
        return engine.batch_response_times(queries)
    return np.fromiter(
        (response_time(allocation, q) for q in queries),
        dtype=np.int64,
        count=len(queries),
    )


def optimal_times(
    queries: Sequence[RangeQuery], num_disks: int
) -> np.ndarray:
    """Vector of OPT values, one per query."""
    return np.fromiter(
        (query_optimal(q, num_disks) for q in queries),
        dtype=np.int64,
        count=len(queries),
    )


def sliding_response_times(
    allocation: DiskAllocation, shape: Sequence[int]
) -> np.ndarray:
    """Response time of a query ``shape`` at *every* placement, vectorized.

    Returns an array of shape ``(d_1 - s_1 + 1, ..., d_k - s_k + 1)`` whose
    entry at ``origin`` is ``RT(query_at(origin, shape))``.  This is the hot
    path of the experiments: it computes, per disk, a k-dimensional sliding-
    window sum of the disk's indicator table via prefix sums, then takes the
    max across disks.  Complexity is ``O(M * num_buckets)`` regardless of the
    query size — orders of magnitude faster than evaluating placements one by
    one for large shapes.
    """
    grid = allocation.grid
    shape = tuple(int(s) for s in shape)
    if len(shape) != grid.ndim:
        raise QueryError(
            f"shape arity {len(shape)} does not match grid {grid.dims}"
        )
    if any(s <= 0 for s in shape):
        raise QueryError(f"query side lengths must be positive: {shape}")
    if any(s > d for s, d in zip(shape, grid.dims)):
        out_shape = tuple(
            max(d - s + 1, 0) for s, d in zip(shape, grid.dims)
        )
        return np.zeros(out_shape, dtype=np.int64)
    from repro.core.backends import active_backend

    return active_backend().sliding_response_times(
        allocation.table, allocation.num_disks, shape
    )


def _sliding_window_sums(indicator: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Sum of ``indicator`` over every axis-aligned window of ``shape``.

    Kept under its historical name; the implementation lives with the
    numpy backend (:func:`repro.core.backends.numpy_backend.
    sliding_window_sums`), which every compiled backend is certified
    against.
    """
    from repro.core.backends.numpy_backend import sliding_window_sums

    return sliding_window_sums(indicator, shape)


def average_response_time(
    allocation: DiskAllocation, shape: Sequence[int]
) -> float:
    """Exact mean RT of ``shape`` over all placements in the grid."""
    times = sliding_response_times(allocation, shape)
    if times.size == 0:
        raise QueryError(
            f"shape {tuple(shape)} does not fit in grid "
            f"{allocation.grid.dims}"
        )
    return float(times.mean())


def worst_response_time(
    allocation: DiskAllocation, shape: Sequence[int]
) -> int:
    """Worst-case RT of ``shape`` over all placements in the grid."""
    times = sliding_response_times(allocation, shape)
    if times.size == 0:
        raise QueryError(
            f"shape {tuple(shape)} does not fit in grid "
            f"{allocation.grid.dims}"
        )
    return int(times.max())


def placements_at_optimal(
    allocation: DiskAllocation, shape: Sequence[int]
) -> float:
    """Fraction of placements of ``shape`` answered at the optimal RT."""
    times = sliding_response_times(allocation, shape)
    if times.size == 0:
        raise QueryError(
            f"shape {tuple(shape)} does not fit in grid "
            f"{allocation.grid.dims}"
        )
    area = 1
    for side in shape:
        area *= int(side)
    opt = optimal_response_time(area, allocation.num_disks)
    return float((times == opt).mean())


def per_query_costs(
    allocation: DiskAllocation, queries: Sequence[RangeQuery]
) -> List[dict]:
    """RT, OPT and deviations for each query — handy for reports and tests."""
    rows = []
    for query in queries:
        rt = response_time(allocation, query)
        opt = _effective_optimal(allocation, query)
        rows.append(
            {
                "query": query,
                "buckets": query.num_buckets,
                "response_time": rt,
                "optimal": opt,
                "additive_deviation": rt - opt,
                "relative_deviation": (rt - opt) / opt if opt else 0.0,
            }
        )
    return rows
