"""Bounded cross-experiment cache of allocations and their engines.

Every experiment sweep re-materializes the same ``(scheme, grid, M)``
triples — E1 through E5 alone rebuild the paper's four schemes on the
default grid a dozen times, and each rebuild also paid a fresh set of
prefix sums.  Scheme allocation is contractually deterministic (the QA405
contract rejects nondeterministic ``allocate``), so the triple fully
determines the table and caching is semantics-free.

The cache is content-addressed one level deeper than the name: the key
includes the *factory object* currently registered under the scheme name,
so re-registering a different scheme under an old name (``replace=True``,
:func:`~repro.core.registry.temporary_scheme`) can never serve a stale
allocation.  Entries hold the :class:`~repro.core.allocation.DiskAllocation`
and, built lazily on first shape query, its
:class:`~repro.core.engine.ResponseTimeEngine`.  Eviction is LRU with a
bounded entry count; hit/miss/eviction counters are exposed for reports.

A process-wide default cache (:func:`global_cache`) is shared by every
:class:`~repro.core.evaluator.SchemeEvaluator` unless one is injected.
Worker processes spawned by the parallel experiment runner each get their
own instance — module state is rebuilt on import, which keeps the cache
spawn-safe with zero coordination.  The parallel runner additionally
installs a :class:`~repro.core.shm.SharedAllocationBroker` into each
worker's global cache (:meth:`AllocationCache.set_broker`): a miss then
first tries a zero-copy attach of a table another worker already built
and published over ``multiprocessing.shared_memory``, and only builds —
then publishes — when no worker has.  Sharing is semantics-free because
allocation is deterministic (QA405); it only removes duplicate work and
duplicate resident memory.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    Hashable,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from repro.core.allocation import DiskAllocation
from repro.core.engine import ResponseTimeEngine
from repro.core.exceptions import IntegrityError
from repro.core.grid import Grid
from repro.core.sat import SummedAreaTable
from repro.obs.log import get_logger
from repro.obs.metrics import global_registry

_LOG = get_logger("repro.core.cache")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.shm import SharedAllocationBroker

__all__ = [
    "AllocationCache",
    "CacheStats",
    "global_cache",
    "reset_global_cache",
    "resident_nbytes",
]

#: Default maximum number of cached (scheme, grid, M) entries.
DEFAULT_MAXSIZE = 128


def resident_nbytes(array) -> Optional[int]:
    """Bytes of ``array``'s buffer actually resident in RAM, or None.

    An mmap-backed SAT has a *mapped* size (the full logical table) and
    a usually much smaller *resident* set — only the pages the kernel
    has faulted in.  ``mincore(2)`` reports exactly that, page by page.
    Returns None where the probe is unavailable (non-Linux libc, an
    exotic buffer) so callers can render "unknown" instead of repeating
    the old lie of logical size == residency.
    """
    import ctypes
    import mmap as _mmap

    try:
        libc = ctypes.CDLL(None, use_errno=True)  # qa503: allow — read-only mincore(2) residency probe, no artifact loading
        mincore = libc.mincore
    except (OSError, AttributeError):
        return None
    nbytes = int(array.nbytes)
    if nbytes == 0:
        return 0
    page = _mmap.PAGESIZE
    address = int(array.ctypes.data)
    start = address - (address % page)
    span = (address + nbytes) - start
    pages = (span + page - 1) // page
    vector = (ctypes.c_ubyte * pages)()
    mincore.argtypes = [
        ctypes.c_void_p,
        ctypes.c_size_t,
        ctypes.POINTER(ctypes.c_ubyte),
    ]
    mincore.restype = ctypes.c_int
    if mincore(ctypes.c_void_p(start), ctypes.c_size_t(span), vector):
        return None
    resident_pages = sum(byte & 1 for byte in vector)
    return min(resident_pages * page, nbytes)


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    entries: int
    maxsize: int
    #: Misses satisfied by a zero-copy attach from the shared-memory
    #: broker (0 when no broker is installed, so the defaults keep old
    #: call sites and serialized snapshots valid).
    shared_hits: int = 0
    #: Freshly built allocations published to the broker.
    publishes: int = 0
    #: Spilled SATs rebuilt after failing their integrity check
    #: (:meth:`AllocationCache.mmap_engine`).
    rebuilds: int = 0
    #: Mmap-engine lookups served from the open-handle memo (the file
    #: was already mapped and verified by this process).
    mmap_hits: int = 0
    #: Mmap engines attached from a handle another worker published
    #: through the broker (one page-cache-backed mapping per fleet).
    mmap_shared_hits: int = 0

    @property
    def requests(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """``hits / requests`` (0.0 when the cache was never consulted)."""
        return self.hits / self.requests if self.requests else 0.0

    def render(self) -> str:
        """One-line human-readable summary for report footers."""
        line = (
            f"allocation cache: {self.hits} hit(s), {self.misses} miss(es) "
            f"({self.hit_rate:.0%} hit rate), {self.entries}/{self.maxsize} "
            f"entries, {self.evictions} eviction(s)"
        )
        if self.shared_hits or self.publishes:
            line += (
                f", {self.shared_hits} shared-memory attach(es), "
                f"{self.publishes} publish(es)"
            )
        return line


class _Entry:
    """One cached allocation with its lazily built engine."""

    __slots__ = ("allocation", "shared", "_engine")

    def __init__(self, allocation: DiskAllocation, shared: bool = False):
        self.allocation = allocation
        #: True when ``allocation.table`` views a shared-memory segment.
        self.shared = shared
        self._engine: Optional[ResponseTimeEngine] = None

    @property
    def engine(self) -> ResponseTimeEngine:
        if self._engine is None:
            self._engine = ResponseTimeEngine(self.allocation)
        return self._engine

    @property
    def engine_built(self) -> bool:
        return self._engine is not None


class AllocationCache:
    """LRU cache of materialized allocations keyed on (scheme, grid, M).

    Examples
    --------
    >>> cache = AllocationCache(maxsize=4)
    >>> a = cache.allocation("dm", Grid((4, 4)), 2)
    >>> cache.allocation("dm", Grid((4, 4)), 2) is a
    True
    >>> cache.stats().hits
    1
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_MAXSIZE,
        broker: Optional["SharedAllocationBroker"] = None,
    ):
        maxsize = int(maxsize)
        if maxsize <= 0:
            raise ValueError(f"cache maxsize must be positive: {maxsize}")
        self._maxsize = maxsize
        self._entries: "OrderedDict[Tuple[Hashable, ...], _Entry]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._shared_hits = 0
        self._publishes = 0
        self._rebuilds = 0
        self._mmap_hits = 0
        self._mmap_shared_hits = 0
        #: Open mmap engines by (scheme, dims, M, path): the file is
        #: the cache for the *data*, but re-opening means re-verifying
        #: and a private second mapping — memoize the open handle.
        self._mmap_engines: Dict[
            Tuple[Hashable, ...], ResponseTimeEngine
        ] = {}
        self._broker = broker

    def set_broker(
        self, broker: Optional["SharedAllocationBroker"]
    ) -> None:
        """Install (or remove, with None) a shared-memory broker.

        The broker keys on the scheme *name*, so only install one in
        processes whose registry holds the default schemes — the
        parallel runner's spawn workers by construction.
        """
        self._broker = broker

    @property
    def broker(self) -> Optional["SharedAllocationBroker"]:
        """The installed shared-memory broker, if any."""
        return self._broker

    @property
    def maxsize(self) -> int:
        """Upper bound on the number of cached entries."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def _key(
        self, scheme_name: str, grid: Grid, num_disks: int
    ) -> Tuple[Hashable, ...]:
        from repro.core.backends import active_backend_name
        from repro.core.registry import scheme_factory

        # The factory object disambiguates same-name re-registrations.
        # The backend name keys entries per kernel backend: results are
        # certified bit-identical across backends (QA423), but an entry
        # built under one backend must not satisfy a lookup made under
        # another — backend comparisons (benchmarks, the QA423 sweep
        # itself) rely on each backend doing its own work.
        return (scheme_name, scheme_factory(scheme_name), grid.dims,
                int(num_disks), active_backend_name())

    def _lookup(
        self, scheme_name: str, grid: Grid, num_disks: int
    ) -> _Entry:
        key = self._key(scheme_name, grid, num_disks)
        entry = self._entries.get(key)
        if entry is not None:
            self._hits += 1
            self._entries.move_to_end(key)
            return entry
        self._misses += 1
        allocation = None
        shared = False
        if self._broker is not None:
            allocation = self._broker.get(scheme_name, grid, int(num_disks))
            if allocation is not None:
                shared = True
                self._shared_hits += 1
        if allocation is None:
            from repro.core.registry import get_scheme

            allocation = get_scheme(scheme_name).allocate(
                grid, int(num_disks)
            )
            if self._broker is not None:
                # publish returns a zero-copy view onto the shared
                # segment, so this process's resident copy is dropped
                # too (first writer wins; losers attach the winner's).
                try:
                    allocation = self._broker.publish(
                        scheme_name, grid, int(num_disks), allocation
                    )
                    shared = True
                    self._publishes += 1
                except Exception:
                    shared = False
        entry = _Entry(allocation, shared=shared)
        self._entries[key] = entry
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1
        return entry

    def allocation(
        self, scheme_name: str, grid: Grid, num_disks: int
    ) -> DiskAllocation:
        """The (cached) allocation for the triple; materialized on miss."""
        return self._lookup(scheme_name, grid, num_disks).allocation

    def engine(
        self, scheme_name: str, grid: Grid, num_disks: int
    ) -> ResponseTimeEngine:
        """The (cached) integral-image engine for the triple."""
        return self._lookup(scheme_name, grid, num_disks).engine

    def mmap_engine(
        self,
        scheme_name: str,
        grid: Grid,
        num_disks: int,
        path: Union[str, os.PathLike],
        byte_budget: Optional[int] = None,
    ) -> ResponseTimeEngine:
        """An engine over a spilled SAT, rebuilt in place if corrupt.

        Opens ``path`` through the integrity-verified
        :meth:`~repro.core.sat.SummedAreaTable.open_mmap`; when the
        artifact fails its check (truncation, a flipped bit, a torn
        manifest) the allocation is deterministic (QA405), so the table
        is simply rebuilt at the same path with
        :meth:`~repro.core.sat.SummedAreaTable.build_chunked` — logged
        and counted (``integrity.sat_rebuilds``), never served corrupt.

        Mmap engines are not held in the LRU (the file is the cache for
        the data), but the *open handle* is memoized: a repeat lookup
        reuses the already-verified mapping instead of paying a second
        verification pass and a second private map.  When a broker is
        installed the finished table's :class:`~repro.core.shm.MmapSatHandle`
        is also published, so an ``--workers N`` fleet shares one
        page-cache-backed mapping instead of N private opens.
        """
        memo_key = (
            scheme_name,
            grid.dims,
            int(num_disks),
            os.fspath(path),
        )
        cached = self._mmap_engines.get(memo_key)
        if cached is not None and cached.sat.array is not None:
            self._mmap_hits += 1
            return cached
        try:
            sat = SummedAreaTable.open_mmap(path)
        except IntegrityError as exc:
            _LOG.warning(
                "spilled SAT %s failed verification, rebuilding: %s",
                os.fspath(path),
                exc,
            )
            global_registry().inc("integrity.sat_rebuilds")
            self._rebuilds += 1
            from repro.core.registry import get_scheme

            sat = SummedAreaTable.build_chunked(
                get_scheme(scheme_name),
                grid,
                int(num_disks),
                byte_budget=byte_budget,
                path=path,
                resume=False,
            )
        engine = ResponseTimeEngine.from_sat(sat)
        self._mmap_engines[memo_key] = engine
        if self._broker is not None:
            try:
                self._broker.publish_sat(
                    scheme_name, grid, int(num_disks), path
                )
            except Exception as exc:  # qa502: allow — publication is
                # best-effort; the private engine is already correct.
                _LOG.warning(
                    "spilled-SAT handle publish failed for %s: %r",
                    os.fspath(path),
                    exc,
                )
        return engine

    def shared_mmap_engine(
        self, scheme_name: str, grid: Grid, num_disks: int
    ) -> Optional[ResponseTimeEngine]:
        """Attach the fleet-shared spilled SAT for the triple, or None.

        Consults the broker for an :class:`~repro.core.shm.MmapSatHandle`
        another worker published (via :meth:`mmap_engine`) and maps it
        read-only — N workers then share one page-cache-backed file
        instead of each building or verifying privately.  Returns None
        when no broker is installed or nothing has been published.
        """
        if self._broker is None:
            return None
        handle = self._broker.get_sat(scheme_name, grid, int(num_disks))
        if handle is None:
            return None
        memo_key = (
            scheme_name,
            grid.dims,
            int(num_disks),
            handle.path,
        )
        cached = self._mmap_engines.get(memo_key)
        if cached is not None and cached.sat.array is not None:
            self._mmap_hits += 1
            return cached
        try:
            engine = handle.attach_engine()
        except (OSError, IntegrityError) as exc:
            _LOG.warning(
                "attach of published spilled SAT %s failed: %r",
                handle.path,
                exc,
            )
            global_registry().inc("shm.attach_faults")
            return None
        self._mmap_shared_hits += 1
        self._mmap_engines[memo_key] = engine
        return engine

    def stats(self) -> CacheStats:
        """Current counters as an immutable snapshot."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            entries=len(self._entries),
            maxsize=self._maxsize,
            shared_hits=self._shared_hits,
            publishes=self._publishes,
            rebuilds=self._rebuilds,
            mmap_hits=self._mmap_hits,
            mmap_shared_hits=self._mmap_shared_hits,
        )

    def entry_report(self) -> List[Dict[str, object]]:
        """Per-entry details for ``--cache-stats`` diagnostics.

        One dict per cached entry, in LRU order (least recent first):
        scheme name, grid dims, disk count, table dtype and bytes,
        whether the integral-image engine has been built (and its
        bytes), and whether the table resides in shared memory.  Every
        row also reports ``mapped_nbytes`` (address-space footprint)
        next to ``resident_nbytes`` (pages actually in RAM, None where
        unmeasurable): for in-RAM tables the two agree, but an
        mmap-backed SAT maps its full logical size while touching only
        the pages queries fault in — reporting the logical size as
        residency is exactly the overstatement this separates.  The
        memoized mmap engines get their own ``kind="mmap-sat"`` rows;
        previously they were invisible here despite holding the largest
        mappings in the process.
        """
        report: List[Dict[str, object]] = []
        for key, entry in self._entries.items():
            scheme_name, _factory, dims, num_disks, backend = key
            allocation = entry.allocation
            engine_nbytes = (
                entry.engine.nbytes() if entry.engine_built else 0
            )
            mapped = allocation.nbytes + engine_nbytes
            report.append(
                {
                    "kind": "table",
                    "scheme": scheme_name,
                    "dims": dims,
                    "num_disks": num_disks,
                    "backend": backend,
                    "table_dtype": str(allocation.table.dtype),
                    "table_nbytes": allocation.nbytes,
                    "engine_built": entry.engine_built,
                    "engine_nbytes": engine_nbytes,
                    "shared": entry.shared,
                    # In-RAM (or shared-segment) tables are fully
                    # materialized: mapped == resident by construction.
                    "mapped_nbytes": mapped,
                    "resident_nbytes": mapped,
                }
            )
        for memo_key, engine in self._mmap_engines.items():
            scheme_name, dims, num_disks, path = memo_key
            array = engine.sat.array
            if array is None:
                continue
            mapped = int(array.nbytes)
            report.append(
                {
                    "kind": "mmap-sat",
                    "scheme": scheme_name,
                    "dims": dims,
                    "num_disks": num_disks,
                    "backend": "mmap",
                    "path": path,
                    "table_dtype": str(array.dtype),
                    "table_nbytes": mapped,
                    "engine_built": True,
                    "engine_nbytes": 0,
                    "shared": False,
                    "mapped_nbytes": mapped,
                    "resident_nbytes": resident_nbytes(array),
                }
            )
        return report

    def publish_metrics(self, registry) -> None:
        """Export the counters into an obs metrics registry.

        Sets the ``cache.*`` counters to the cache's *cumulative* values
        (rather than incrementing), matching the cumulative-snapshot
        semantics of :meth:`repro.obs.metrics.MetricsRegistry.payload` —
        this is the channel through which parallel workers report their
        cache activity back to the parent, fixing the parent-only
        ``--cache-stats`` blind spot.  Called at publication points
        (end of a worker job, end of a CLI run), never on the lookup hot
        path, so instrumentation stays free when unused.
        """
        stats = self.stats()
        registry.set_counter("cache.hits", stats.hits)
        registry.set_counter("cache.misses", stats.misses)
        registry.set_counter("cache.evictions", stats.evictions)
        registry.set_counter("cache.shared_hits", stats.shared_hits)
        registry.set_counter("cache.publishes", stats.publishes)
        registry.set_counter("cache.rebuilds", stats.rebuilds)
        registry.set_counter("cache.mmap_hits", stats.mmap_hits)
        registry.set_counter(
            "cache.mmap_shared_hits", stats.mmap_shared_hits
        )
        registry.set_counter("cache.entries", stats.entries)
        registry.set_counter("cache.maxsize", stats.maxsize)

    def clear(self) -> None:
        """Drop all entries (open mmap memos included); counters stay."""
        self._entries.clear()
        self._mmap_engines.clear()

    def as_report_dict(self) -> Dict[str, float]:
        """Counters as a plain dict for machine-readable reports."""
        stats = self.stats()
        return {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "entries": stats.entries,
            "maxsize": stats.maxsize,
            "hit_rate": stats.hit_rate,
            "shared_hits": stats.shared_hits,
            "publishes": stats.publishes,
            "rebuilds": stats.rebuilds,
            "mmap_hits": stats.mmap_hits,
            "mmap_shared_hits": stats.mmap_shared_hits,
        }


_GLOBAL_CACHE = AllocationCache()


def global_cache() -> AllocationCache:
    """The process-wide cache shared by all evaluators by default."""
    return _GLOBAL_CACHE


def reset_global_cache(maxsize: int = DEFAULT_MAXSIZE) -> AllocationCache:
    """Replace the process-wide cache (counters reset); returns the new one."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = AllocationCache(maxsize=maxsize)
    return _GLOBAL_CACHE
