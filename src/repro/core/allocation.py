"""Materialized bucket-to-disk allocations.

A :class:`DiskAllocation` is the output of a declustering scheme: a table
assigning every bucket of a :class:`~repro.core.grid.Grid` to one of ``M``
disks.  The table is stored as a numpy array shaped like the grid, which
makes response-time evaluation a slice + bincount (see
:mod:`repro.core.cost`).

The paper considers only non-replicated allocations — each bucket lives on
exactly one disk — and so does this class.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.exceptions import AllocationError
from repro.core.grid import Coords, Grid

__all__ = [
    "DiskAllocation",
    "allocation_from_function",
    "table_dtype",
]


def table_dtype(num_disks: int) -> np.dtype:
    """Smallest unsigned dtype that can hold disk ids ``0 .. M-1``.

    ``uint8`` covers every configuration the paper evaluates (M <= 256);
    the compact dtype is what makes allocation tables cheap to cache and
    to place in shared memory for the parallel runner.  Raises
    :class:`~repro.core.exceptions.AllocationError` for non-positive M
    and for M whose largest disk id would not even fit in ``uint64`` —
    silently falling off the dtype ladder would wrap ids and corrupt the
    table.
    """
    if num_disks <= 0:
        raise AllocationError(
            f"number of disks must be positive, got {num_disks}"
        )
    for candidate in (np.uint8, np.uint16, np.uint32, np.uint64):
        if num_disks - 1 <= np.iinfo(candidate).max:
            return np.dtype(candidate)
    raise AllocationError(
        f"number of disks {num_disks} is not representable: the largest "
        f"disk id {num_disks - 1} exceeds uint64 "
        f"({np.iinfo(np.uint64).max})"
    )


class DiskAllocation:
    """An assignment of every grid bucket to one of ``num_disks`` disks.

    Parameters
    ----------
    grid:
        The bucket grid being declustered.
    num_disks:
        ``M``, the number of disks.  Disk ids are ``0 .. M-1``.
    table:
        Integer array of shape ``grid.dims`` holding the disk id per bucket.

    Examples
    --------
    >>> import numpy as np
    >>> g = Grid((2, 2))
    >>> a = DiskAllocation(g, 2, np.array([[0, 1], [1, 0]]))
    >>> a.disk_of((1, 0))
    1
    >>> a.disk_loads().tolist()
    [2, 2]
    """

    __slots__ = ("_grid", "_num_disks", "_table")

    def __init__(self, grid: Grid, num_disks: int, table: np.ndarray):
        num_disks = int(num_disks)
        if num_disks <= 0:
            raise AllocationError(
                f"number of disks must be positive, got {num_disks}"
            )
        table = np.asarray(table)
        if table.shape != grid.dims:
            raise AllocationError(
                f"table shape {table.shape} does not match grid {grid.dims}"
            )
        if not np.issubdtype(table.dtype, np.integer):
            raise AllocationError(
                f"table must hold integer disk ids, got dtype {table.dtype}"
            )
        if table.size and (table.min() < 0 or table.max() >= num_disks):
            raise AllocationError(
                "table contains disk ids outside "
                f"[0, {num_disks}): min={table.min()} max={table.max()}"
            )
        self._grid = grid
        self._num_disks = num_disks
        # Private copy (always — never alias the caller's array) in the
        # smallest sufficient unsigned dtype; the table is immutable from
        # here.
        table = np.array(
            table, dtype=table_dtype(num_disks), copy=True, order="C"
        )
        table.setflags(write=False)
        self._table = table

    @classmethod
    def from_buffer(
        cls, grid: Grid, num_disks: int, table: np.ndarray
    ) -> "DiskAllocation":
        """Wrap an existing array *without copying* (shared-memory attach).

        The caller guarantees ``table`` is C-contiguous, already in
        :func:`table_dtype` for ``num_disks``, and will stay alive and
        unmodified for the allocation's lifetime — exactly what
        :mod:`repro.core.shm` arranges for tables backed by
        ``multiprocessing.shared_memory``.  The array is marked read-only
        in this process; values are validated like the copying path.
        """
        num_disks = int(num_disks)
        expected = table_dtype(num_disks)
        if table.dtype != expected:
            raise AllocationError(
                f"zero-copy table must use dtype {expected}, got "
                f"{table.dtype}"
            )
        if table.shape != grid.dims:
            raise AllocationError(
                f"table shape {table.shape} does not match grid {grid.dims}"
            )
        if table.size and table.max() >= num_disks:
            raise AllocationError(
                "table contains disk ids outside "
                f"[0, {num_disks}): max={table.max()}"
            )
        allocation = cls.__new__(cls)
        table = table.view()
        table.setflags(write=False)
        allocation._grid = grid
        allocation._num_disks = num_disks
        allocation._table = table
        return allocation

    @property
    def grid(self) -> Grid:
        """The grid this allocation covers."""
        return self._grid

    @property
    def num_disks(self) -> int:
        """``M``, the number of disks."""
        return self._num_disks

    @property
    def table(self) -> np.ndarray:
        """The (read-only) disk-id array, shaped like the grid."""
        return self._table

    @property
    def nbytes(self) -> int:
        """Memory footprint of the table, in bytes (compact dtype)."""
        return int(self._table.nbytes)

    def disk_of(self, coords: Sequence[int]) -> int:
        """Disk id holding the bucket at ``coords``."""
        coords = self._grid.validate_coords(coords)
        return int(self._table[coords])

    def disk_loads(self) -> np.ndarray:
        """Buckets stored per disk, ``shape (M,)``.

        A good declustering keeps these within one of each other — storage
        balance is a prerequisite for, but far weaker than, query-time
        balance.
        """
        return np.bincount(self._table.ravel(), minlength=self._num_disks)

    def is_storage_balanced(self) -> bool:
        """Whether per-disk bucket counts differ by at most one."""
        loads = self.disk_loads()
        return int(loads.max() - loads.min()) <= 1

    def disks_used(self) -> int:
        """Number of distinct disks that received at least one bucket."""
        return int(np.count_nonzero(self.disk_loads()))

    def buckets_on_disk(self, disk: int) -> list:
        """Coordinates of all buckets stored on ``disk``, row-major order."""
        disk = int(disk)
        if not 0 <= disk < self._num_disks:
            raise AllocationError(
                f"disk id {disk} outside [0, {self._num_disks})"
            )
        coords_arrays = np.nonzero(self._table == disk)
        return [tuple(int(c[i]) for c in coords_arrays)
                for i in range(len(coords_arrays[0]))]

    def as_mapping(self) -> Dict[Coords, int]:
        """The allocation as a plain ``{coords: disk}`` dict (small grids)."""
        return {
            coords: int(self._table[coords])
            for coords in self._grid.iter_buckets()
        }

    def relabeled(self, permutation: Sequence[int]) -> "DiskAllocation":
        """A copy with disk ids renamed through ``permutation``.

        Response times are invariant under disk relabeling; this is used by
        the theory module for canonicalization and in tests.
        """
        permutation = np.asarray(permutation, dtype=np.int64)
        if permutation.shape != (self._num_disks,):
            raise AllocationError(
                f"permutation must have length {self._num_disks}"
            )
        if sorted(permutation.tolist()) != list(range(self._num_disks)):
            raise AllocationError(
                f"not a permutation of 0..{self._num_disks - 1}: "
                f"{permutation.tolist()}"
            )
        return DiskAllocation(
            self._grid, self._num_disks, permutation[self._table]
        )

    def canonicalized(self) -> "DiskAllocation":
        """A copy with disk labels renamed in first-use (row-major) order.

        Response times are invariant under relabeling, so two allocations
        are *equivalent* iff their canonical forms are equal — the form
        the theory module's enumeration produces.  Unused disk ids keep
        distinct labels after all used ones.
        """
        mapping: Dict[int, int] = {}
        flat = self._table.ravel()
        for disk in flat:
            disk = int(disk)
            if disk not in mapping:
                mapping[disk] = len(mapping)
        permutation = np.empty(self._num_disks, dtype=np.int64)
        next_label = len(mapping)
        for disk in range(self._num_disks):
            if disk in mapping:
                permutation[disk] = mapping[disk]
            else:
                permutation[disk] = next_label
                next_label += 1
        return self.relabeled(permutation)

    def is_equivalent_to(self, other: "DiskAllocation") -> bool:
        """Whether the two allocations differ only by disk relabeling."""
        return (
            self._grid == other._grid
            and self._num_disks == other._num_disks
            and np.array_equal(
                self.canonicalized().table,
                other.canonicalized().table,
            )
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DiskAllocation)
            and other._grid == self._grid
            and other._num_disks == self._num_disks
            and np.array_equal(other._table, self._table)
        )

    def __hash__(self) -> int:
        return hash(
            (self._grid, self._num_disks, self._table.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"DiskAllocation(grid={self._grid.dims}, "
            f"num_disks={self._num_disks})"
        )


def allocation_from_function(grid: Grid, num_disks: int, disk_of) -> DiskAllocation:
    """Materialize an allocation from a per-bucket function.

    ``disk_of`` receives a coordinate tuple and returns a disk id.  Schemes
    with no vectorized form use this helper; it is also handy in tests.
    """
    table = np.empty(grid.dims, dtype=np.int64)
    for coords in grid.iter_buckets():
        table[coords] = disk_of(coords)
    return DiskAllocation(grid, num_disks, table)
