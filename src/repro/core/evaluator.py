"""Batch evaluation of declustering schemes against query workloads.

This is the measurement harness behind every experiment: given a grid, a
disk count, a set of schemes, and a description of the queries (explicit
query list, or shapes evaluated over *all* their placements), it produces
per-scheme summary statistics comparable to the paper's plotted series —
average response time, average optimal, and the deviation between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.cache import AllocationCache
from repro.core.cost import (
    optimal_response_time,
    optimal_times,
    response_times,
    sliding_response_times,
)
from repro.core.engine import ResponseTimeEngine
from repro.core.exceptions import QueryError
from repro.core.grid import Grid
from repro.core.query import RangeQuery, shapes_with_area
from repro.core.registry import scheme_label

__all__ = [
    "EvaluationResult",
    "SchemeEvaluator",
    "evaluate_allocation_on_queries",
    "evaluate_allocation_on_shapes",
    "rank_schemes",
]


@dataclass(frozen=True)
class EvaluationResult:
    """Summary of one scheme's performance on one workload.

    Attributes mirror the paper's reporting: response times are in bucket
    accesses (one parallel disk read per time unit).
    """

    scheme: str
    num_queries: int
    mean_response_time: float
    mean_optimal: float
    worst_response_time: int
    fraction_optimal: float
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_additive_deviation(self) -> float:
        """Mean of ``RT - OPT`` across the workload."""
        return self.mean_response_time - self.mean_optimal

    @property
    def mean_relative_deviation(self) -> float:
        """``(mean RT - mean OPT) / mean OPT`` — the paper's deviation metric."""
        if self.mean_optimal == 0:
            return 0.0
        return (
            self.mean_response_time - self.mean_optimal
        ) / self.mean_optimal

    @property
    def label(self) -> str:
        """Paper-style display label."""
        return scheme_label(self.scheme)


def evaluate_allocation_on_queries(
    allocation: DiskAllocation,
    queries: Sequence[RangeQuery],
    scheme_name: str = "custom",
    engine: Optional[ResponseTimeEngine] = None,
) -> EvaluationResult:
    """Evaluate an explicit query list against one allocation.

    When ``engine`` is given the whole batch is answered through the
    integral-image :meth:`~repro.core.engine.ResponseTimeEngine.batch_response_times`
    path; results are bit-identical to the scalar per-query loop.
    """
    queries = list(queries)
    if not queries:
        raise QueryError("workload contains no queries")
    times = response_times(allocation, queries, engine=engine)
    optima = optimal_times(queries, allocation.num_disks)
    return EvaluationResult(
        scheme=scheme_name,
        num_queries=len(queries),
        mean_response_time=float(times.mean()),
        mean_optimal=float(optima.mean()),
        worst_response_time=int(times.max()),
        fraction_optimal=float((times == optima).mean()),
    )


def evaluate_allocation_on_shapes(
    allocation: DiskAllocation,
    shapes: Sequence[Sequence[int]],
    scheme_name: str = "custom",
    engine: Optional[ResponseTimeEngine] = None,
) -> EvaluationResult:
    """Evaluate shapes over *all* placements (exact, zero-variance means).

    Every placement of every shape counts as one query; shapes that do not
    fit in the grid are rejected.  When ``engine`` (an integral-image
    :class:`~repro.core.engine.ResponseTimeEngine` built on the same
    allocation) is given, it answers the sliding sweeps; results are
    bit-identical either way — the scalar path is the reference oracle.
    """
    shapes = [tuple(int(s) for s in shape) for shape in shapes]
    if not shapes:
        raise QueryError("workload contains no shapes")
    all_times: List[np.ndarray] = []
    all_optima: List[np.ndarray] = []
    for shape in shapes:
        if engine is not None:
            times = engine.sliding_response_times(shape)
        else:
            times = sliding_response_times(allocation, shape)
        if times.size == 0:
            raise QueryError(
                f"shape {shape} does not fit in grid {allocation.grid.dims}"
            )
        area = int(np.prod(shape))
        opt = optimal_response_time(area, allocation.num_disks)
        all_times.append(times.ravel())
        all_optima.append(np.full(times.size, opt, dtype=np.int64))
    times = np.concatenate(all_times)
    optima = np.concatenate(all_optima)
    return EvaluationResult(
        scheme=scheme_name,
        num_queries=int(times.size),
        mean_response_time=float(times.mean()),
        mean_optimal=float(optima.mean()),
        worst_response_time=int(times.max()),
        fraction_optimal=float((times == optima).mean()),
    )


class SchemeEvaluator:
    """Evaluates a fixed set of schemes on one grid/disk configuration.

    Allocations (and their integral-image engines) come from a bounded
    cross-experiment :class:`~repro.core.cache.AllocationCache` — by
    default the process-wide one — so sweeping many workloads over the
    same configuration pays the allocation and prefix-sum cost once, even
    across separate evaluator instances and experiments.

    Parameters
    ----------
    grid / num_disks / schemes:
        The configuration under evaluation (default: the paper's schemes).
    cache:
        The allocation cache to draw from; ``None`` means the shared
        :func:`~repro.core.cache.global_cache`.
    use_engine:
        When true (the default) shape sweeps use the
        :class:`~repro.core.engine.ResponseTimeEngine` fast path; when
        false they use the scalar reference kernel.  Results are
        bit-identical either way.

    Examples
    --------
    >>> ev = SchemeEvaluator(Grid((8, 8)), num_disks=4, schemes=["dm", "fx"])
    >>> results = ev.evaluate_shapes([(2, 2)])
    >>> sorted(r.scheme for r in results)
    ['dm', 'fx']
    """

    def __init__(
        self,
        grid: Grid,
        num_disks: int,
        schemes: Optional[Sequence[str]] = None,
        cache: Optional[AllocationCache] = None,
        use_engine: bool = True,
    ):
        from repro.core.cache import global_cache
        from repro.core.registry import PAPER_SCHEMES

        self._grid = grid
        self._num_disks = int(num_disks)
        self._scheme_names = list(schemes or PAPER_SCHEMES)
        self._cache = cache if cache is not None else global_cache()
        self._use_engine = bool(use_engine)

    @property
    def grid(self) -> Grid:
        """The configuration's grid."""
        return self._grid

    @property
    def num_disks(self) -> int:
        """The configuration's disk count."""
        return self._num_disks

    @property
    def scheme_names(self) -> List[str]:
        """Names of the schemes under evaluation."""
        return list(self._scheme_names)

    @property
    def cache(self) -> AllocationCache:
        """The allocation cache this evaluator draws from."""
        return self._cache

    def allocation(self, scheme_name: str) -> DiskAllocation:
        """The (cached) allocation produced by ``scheme_name``."""
        return self._cache.allocation(
            scheme_name, self._grid, self._num_disks
        )

    def engine(self, scheme_name: str) -> ResponseTimeEngine:
        """The (cached) integral-image engine for ``scheme_name``."""
        return self._cache.engine(scheme_name, self._grid, self._num_disks)

    def evaluate_queries(
        self, queries: Sequence[RangeQuery]
    ) -> List[EvaluationResult]:
        """All schemes against an explicit query list.

        Uses the cached engine's batch path (one fancy-indexing gather
        per SAT corner for the whole list) unless ``use_engine=False``.
        """
        queries = list(queries)
        return [
            evaluate_allocation_on_queries(
                self.allocation(name),
                queries,
                scheme_name=name,
                engine=self.engine(name) if self._use_engine else None,
            )
            for name in self._scheme_names
        ]

    def evaluate_shapes(
        self, shapes: Sequence[Sequence[int]]
    ) -> List[EvaluationResult]:
        """All schemes against shapes evaluated over all placements."""
        return [
            evaluate_allocation_on_shapes(
                self.allocation(name),
                shapes,
                scheme_name=name,
                engine=self.engine(name) if self._use_engine else None,
            )
            for name in self._scheme_names
        ]

    def evaluate_area(
        self, area: int, max_shapes: Optional[int] = None
    ) -> List[EvaluationResult]:
        """All schemes against every shape of the given bucket count."""
        shapes = list(shapes_with_area(self._grid, area, max_shapes))
        if not shapes:
            raise QueryError(
                f"no query shape of area {area} fits in grid "
                f"{self._grid.dims}"
            )
        return self.evaluate_shapes(shapes)


def rank_schemes(results: Iterable[EvaluationResult]) -> List[EvaluationResult]:
    """Results sorted best-first by mean response time (ties: by name)."""
    return sorted(results, key=lambda r: (r.mean_response_time, r.scheme))
