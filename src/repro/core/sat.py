"""Per-disk summed-area tables: in-RAM, and chunked/memory-mapped.

The :class:`~repro.core.engine.ResponseTimeEngine` answers every query
through one data structure: the stacked k-dimensional summed-area table
(SAT) of the ``M`` disk-indicator arrays,

    sat[m, i_1, ..., i_k] = |{ b on disk m : b_j < i_j for all j }|,

zero-padded with one leading plane per spatial axis so inclusion–
exclusion slices are uniform.  This module owns that structure:

* :meth:`SummedAreaTable.build` — the in-RAM build (moved here from the
  engine), one pass of indicators + one ``cumsum`` per axis;
* :meth:`SummedAreaTable.build_chunked` — a **tiled build that never
  materializes the whole grid**: the allocation is generated tile by
  tile (:meth:`~repro.schemes.base.DeclusteringScheme.disk_array_block`),
  prefix sums are carried across tiles, and the table spills to a
  memory-mapped ``.npy`` file, all under a configurable byte budget.
  This is what makes beyond-RAM grids (1024³ and up — billions of
  buckets, a scenario the 1994 paper could not touch) buildable and
  queryable on ordinary hardware;
* :meth:`SummedAreaTable.open_mmap` — reopen a spilled table zero-copy
  (the ``.npy`` header carries shape and dtype, so the path alone is a
  complete, picklable handle — see ``repro.core.shm.MmapSatHandle``);
* :meth:`SummedAreaTable.corner_counts` — the batched 2^k-corner gather,
  streamed in ascending file order for memory-mapped tables so page
  reads stay sequential.

All arithmetic is exact integer work; every layout of the same
allocation holds bit-identical counts, which the QA423 backend contract
certifies.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import AllocationError, QueryError
from repro.core.grid import Grid
from repro.core.integrity import (
    MANIFEST_SCHEMA_VERSION,
    SatManifest,
    atomic_write_json,
    sha256_hex,
    verify_sat,
)
from repro.faults.io import maybe_io_fault
from repro.obs.log import get_logger
from repro.obs.metrics import global_registry
from repro.obs.trace import trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.schemes.base import DeclusteringScheme

_LOG = get_logger("repro.core.sat")

__all__ = [
    "DEFAULT_BYTE_BUDGET",
    "SummedAreaTable",
    "build_carry_path",
    "build_journal_path",
    "build_partial_path",
    "sat_byte_budget",
    "sat_dtype",
]

#: Default working-memory budget (bytes) for chunked builds and streamed
#: gathers: 256 MiB, small enough for CI runners, large enough that the
#: paper-scale grids never actually chunk.
DEFAULT_BYTE_BUDGET = 256 * 1024 * 1024

#: Environment variable overriding the default byte budget.
BYTE_BUDGET_ENV = "REPRO_SAT_BUDGET"


def sat_byte_budget(budget: Optional[int] = None) -> int:
    """Resolve the working-memory budget: argument > env var > default."""
    if budget is None:
        raw = os.environ.get(BYTE_BUDGET_ENV)
        budget = int(raw) if raw else DEFAULT_BYTE_BUDGET
    budget = int(budget)
    if budget <= 0:
        raise AllocationError(f"SAT byte budget must be positive: {budget}")
    return budget


def sat_dtype(num_buckets: int) -> np.dtype:
    """Smallest signed dtype that can hold any SAT entry.

    Entries never exceed the bucket count, so int32 suffices up to
    2^31 - 1 buckets; downstream arithmetic accumulates in int64.
    """
    return np.dtype(
        np.int32 if num_buckets <= np.iinfo(np.int32).max else np.int64
    )


def _padded_shape(num_disks: int, dims: Sequence[int]) -> Tuple[int, ...]:
    return (int(num_disks),) + tuple(int(d) + 1 for d in dims)


# ----------------------------------------------------------------------
# Crash-safe chunked-build sidecars
# ----------------------------------------------------------------------
#
# A chunked build never writes the final path directly.  It writes
# ``<path>.partial`` plus a tile journal and a carry-plane checkpoint,
# each updated with an atomic rename after every completed tile, then
# renames the partial into place.  A SIGKILL at any moment therefore
# leaves either (a) nothing at the final path plus a resumable
# partial/journal pair, or (b) the finished table — never a torn file
# under the real name.


def build_partial_path(path: Union[str, os.PathLike]) -> str:
    """Where a chunked build stages its output before the final rename."""
    return os.fspath(path) + ".partial"


def build_journal_path(path: Union[str, os.PathLike]) -> str:
    """The tile journal recording how far a chunked build has gotten."""
    return os.fspath(path) + ".journal.json"


def build_carry_path(path: Union[str, os.PathLike]) -> str:
    """The carry-plane checkpoint matching the journal's last tile."""
    return os.fspath(path) + ".carry.npy"


def _remove_quietly(*paths: str) -> None:
    for p in paths:
        try:
            os.unlink(p)
        except OSError:
            pass


class SummedAreaTable:
    """The stacked per-disk SAT, backed by RAM or by a memory-mapped file.

    Attributes
    ----------
    array:
        The ``(M, d_1 + 1, ..., d_k + 1)`` table — an ``ndarray`` for
        in-RAM tables, an ``np.memmap`` view for spilled ones.  Read-only
        either way.
    """

    __slots__ = ("array", "grid", "num_disks", "path", "_disk_last")

    def __init__(
        self,
        array: np.ndarray,
        grid: Grid,
        num_disks: int,
        path: Optional[str] = None,
    ):
        expected = _padded_shape(num_disks, grid.dims)
        if tuple(array.shape) != expected:
            raise AllocationError(
                f"SAT shape {tuple(array.shape)} does not match "
                f"grid {grid.dims} with M={num_disks} (expected {expected})"
            )
        self.array = array
        self.grid = grid
        self.num_disks = int(num_disks)
        self.path = path
        #: Lazily built disk-last (disk-contiguous) copy for native
        #: backends; shared across backends, in-RAM tables only.
        self._disk_last: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, allocation: DiskAllocation) -> "SummedAreaTable":
        """In-RAM build from a materialized allocation (the default path)."""
        table = allocation.table
        num_disks = allocation.num_disks
        ndim = table.ndim
        disks = np.arange(num_disks, dtype=table.dtype)
        indicators = table[np.newaxis] == disks.reshape(
            (num_disks,) + (1,) * ndim
        )
        sat = np.zeros(
            _padded_shape(num_disks, table.shape),
            dtype=sat_dtype(table.size),
        )
        interior = (slice(None),) + (slice(1, None),) * ndim
        sat[interior] = indicators
        for axis in range(1, ndim + 1):
            np.cumsum(sat, axis=axis, out=sat)
        sat.setflags(write=False)
        return cls(sat, allocation.grid, num_disks)

    @classmethod
    def _tile_cost(cls, grid: Grid, num_disks: int) -> Tuple[int, int]:
        """``(per_row_bytes, carry_bytes)`` of one chunked-build tile.

        Per row: the SAT chunk row per disk, plus the int64 coordinate
        arithmetic of the allocation block (ndim temporaries).
        """
        rest_padded = 1
        for d in grid.dims[1:]:
            rest_padded *= d + 1
        itemsize = sat_dtype(grid.num_buckets).itemsize
        per_row = num_disks * rest_padded * itemsize
        per_row += (grid.ndim + 1) * rest_padded * 8
        carry = num_disks * rest_padded * itemsize
        return per_row, carry

    @classmethod
    def tile_rows(
        cls, grid: Grid, num_disks: int, byte_budget: Optional[int] = None
    ) -> int:
        """Rows of the leading axis one build tile may span under the budget.

        The tile working set is the per-tile SAT chunk (``M`` disks ×
        rows × padded trailing extents), the tile's allocation block, and
        the carry plane; the row count is what makes that fit.
        """
        budget = sat_byte_budget(byte_budget)
        per_row, carry = cls._tile_cost(grid, num_disks)
        rows = max(1, (budget - carry) // max(per_row, 1))
        return int(min(rows, grid.dims[0]))

    @classmethod
    def tile_working_set(
        cls, grid: Grid, num_disks: int, rows: int
    ) -> int:
        """Estimated peak bytes a ``rows``-row build tile touches.

        The inverse of :meth:`tile_rows` — benchmarks and the CI gate use
        it to certify a chunked build stayed within its byte budget.
        """
        per_row, carry = cls._tile_cost(grid, num_disks)
        return int(rows) * per_row + carry

    @classmethod
    def _load_build_journal(
        cls,
        path: str,
        dtype: np.dtype,
        shape: Tuple[int, ...],
        scheme_name: str,
    ) -> Optional[Dict[str, object]]:
        """A prior interrupted build's journal, validated, or ``None``.

        Returns the journal document only when every identity field
        (dtype, shape, scheme) matches the requested build, the partial
        file exists, the tile bookkeeping is self-consistent, and the
        carry checkpoint's digest matches what the journal recorded —
        anything less and resuming could not be byte-identical, so the
        stale sidecars are removed and the build starts fresh.
        """
        journal_file = build_journal_path(path)
        carry_file = build_carry_path(path)
        partial = build_partial_path(path)

        def _discard(why: str) -> None:
            _LOG.warning(
                "discarding unusable build journal for %s: %s", path, why
            )
            _remove_quietly(journal_file, carry_file, partial)

        try:
            with open(journal_file) as handle:
                journal = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            _discard(f"unreadable ({exc!r})")
            return None
        try:
            ok = (
                int(journal["schema"]) == MANIFEST_SCHEMA_VERSION
                and journal["kind"] == "sat-journal"
                and str(journal["dtype"]) == dtype.str
                and tuple(journal["shape"]) == shape
                and str(journal.get("scheme", "")) == scheme_name
                and int(journal["tile_rows"]) >= 1
                and 0 < int(journal["next_start"]) <= shape[1] - 1
                and len(journal["tile_starts"])
                == len(journal["tile_digests"])
            )
        except (KeyError, TypeError, ValueError):
            ok = False
        if ok:
            rows = int(journal["tile_rows"])
            expected_starts = list(
                range(0, int(journal["next_start"]), rows)
            )
            ok = [int(s) for s in journal["tile_starts"]] == (
                expected_starts
            )
        if not ok:
            _discard("identity or tile bookkeeping mismatch")
            return None
        if not os.path.exists(partial):
            _discard("partial file is gone")
            return None
        try:
            carry = np.load(carry_file)  # qa503: allow — digest-checked
            # against the journal on the next line before any use.
            carry = np.ascontiguousarray(carry)
        except (OSError, ValueError):
            _discard("carry checkpoint unreadable")
            return None
        if (
            carry.dtype != dtype
            or carry.shape != (shape[0],) + shape[2:]
            or sha256_hex(carry.data) != journal.get("carry_sha256")
        ):
            _discard("carry checkpoint does not match the journal")
            return None
        journal["carry"] = carry
        return journal

    @classmethod
    def build_chunked(
        cls,
        scheme: "DeclusteringScheme",
        grid: Grid,
        num_disks: int,
        byte_budget: Optional[int] = None,
        path: Optional[Union[str, os.PathLike]] = None,
        resume: bool = True,
    ) -> "SummedAreaTable":
        """Tiled build spilling to a memory-mapped ``.npy`` file.

        The grid is swept in tiles of :meth:`tile_rows` rows along the
        leading axis; each tile's allocation block comes from
        ``scheme.disk_array_block`` (so the full table is never
        materialized), trailing-axis prefix sums are computed within the
        tile, and the leading-axis sum is carried across tiles.  ``path``
        defaults to a fresh temp file (``REPRO_SAT_DIR`` overrides the
        directory); the caller owns the file's lifetime.

        The build is **crash-safe and resumable**: it stages into
        ``<path>.partial``, journals every completed tile (plus the
        carry plane) with atomic renames, and only renames the finished
        table into place.  Killed at any point, a re-run with the same
        ``path`` picks up from the last journaled tile — reusing the
        journal's tile size even if the byte budget changed, so the
        resumed table is byte-identical to an uninterrupted build.
        ``resume=False`` ignores and removes any prior journal.  Tile
        digests are streamed into a sidecar manifest that
        :meth:`open_mmap` verifies (see :mod:`repro.core.integrity`).
        A build that *raises* cleans up after itself: temp-file builds
        remove everything they created; explicit-path builds keep the
        partial + journal pair for a later resume (``repro doctor``
        reports and can garbage-collect them).
        """
        owns_temp = path is None
        if path is None:
            directory = os.environ.get(
                "REPRO_SAT_DIR"
            ) or tempfile.gettempdir()
            fd, path = tempfile.mkstemp(
                prefix="repro-sat-", suffix=".npy", dir=directory
            )
            os.close(fd)
        path = os.fspath(path)
        partial = build_partial_path(path)
        journal_file = build_journal_path(path)
        carry_file = build_carry_path(path)
        dims = grid.dims
        ndim = grid.ndim
        dtype = sat_dtype(grid.num_buckets)
        shape = _padded_shape(num_disks, dims)
        scheme_name = getattr(scheme, "name", "") or ""
        rest_padded = tuple(d + 1 for d in dims[1:])

        journal = None
        if resume and not owns_temp:
            journal = cls._load_build_journal(
                path, dtype, shape, scheme_name
            )
        elif not resume:
            _remove_quietly(journal_file, carry_file, partial)

        rows = (
            int(journal["tile_rows"])
            if journal is not None
            else cls.tile_rows(grid, num_disks, byte_budget)
        )
        out = None
        try:
            with trace(
                "sat.build_chunked",
                dims=list(dims),
                num_disks=int(num_disks),
                tile_rows=rows,
                resumed=journal is not None,
            ):
                if journal is not None:
                    first_start = int(journal["next_start"])
                    tile_starts = [
                        int(s) for s in journal["tile_starts"]
                    ]
                    tile_digests = [
                        str(d) for d in journal["tile_digests"]
                    ]
                    carry = journal["carry"]
                    out = np.lib.format.open_memmap(
                        partial, mode="r+"
                    )  # qa503: allow — resuming our own journaled
                    # partial; identity was validated against the
                    # journal, and the final table is re-manifested.
                    if (
                        out.dtype != dtype
                        or tuple(out.shape) != shape
                    ):
                        raise AllocationError(
                            f"{partial} does not match its build "
                            f"journal (dtype {out.dtype}, shape "
                            f"{tuple(out.shape)})"
                        )
                    global_registry().inc("sat.build_resumes")
                    _LOG.info(
                        "resuming chunked SAT build of %s at row %d/%d",
                        path,
                        first_start,
                        dims[0],
                    )
                else:
                    first_start = 0
                    tile_starts = []
                    tile_digests = []
                    carry = np.zeros(
                        (num_disks,) + rest_padded, dtype=dtype
                    )
                    out = np.lib.format.open_memmap(
                        partial,
                        mode="w+",
                        dtype=dtype,
                        shape=shape,
                    )  # qa503: allow — creating the staged partial
                    # this build owns; nothing is being trusted.
                disks = np.arange(num_disks)
                interior = (slice(None), slice(None)) + (
                    slice(1, None),
                ) * (ndim - 1)
                for start in range(first_start, dims[0], rows):
                    stop = min(start + rows, dims[0])
                    block = scheme.disk_array_block(
                        grid, num_disks, start, stop
                    )
                    chunk = np.zeros(
                        (num_disks, stop - start) + rest_padded,
                        dtype=dtype,
                    )
                    chunk[interior] = block[
                        np.newaxis
                    ] == disks.reshape((num_disks,) + (1,) * ndim)
                    # Trailing axes first, then the tile axis; cumsums
                    # commute, and this order keeps the carry a single
                    # plane.
                    for axis in range(2, ndim + 1):
                        np.cumsum(chunk, axis=axis, out=chunk)
                    np.cumsum(chunk, axis=1, out=chunk)
                    chunk += carry[:, np.newaxis]
                    carry = np.ascontiguousarray(chunk[:, -1])
                    out[:, start + 1 : stop + 1] = chunk
                    # Tile data must be durable before the journal may
                    # claim it — flush, then checkpoint, then journal.
                    out.flush()
                    tile_starts.append(start)
                    tile_digests.append(sha256_hex(chunk.data))
                    cls._checkpoint_tile(
                        journal_file,
                        carry_file,
                        carry,
                        dtype,
                        shape,
                        scheme_name,
                        rows,
                        stop,
                        tile_starts,
                        tile_digests,
                    )
                    # Injection point: the fault strikes *between*
                    # tiles — the just-committed tile is durable, so an
                    # ``exit``-mode plan is exactly "SIGKILL at a tile
                    # boundary" and a later run must resume from here.
                    maybe_io_fault("sat.write", f"tile@{start}")
                out.flush()
            # Release the writable mapping, then publish: rename the
            # finished partial into place, write the manifest, drop the
            # build sidecars.  A crash between these steps leaves a
            # valid table that is at worst missing its manifest.
            del out
            out = None
            os.replace(partial, path)
            SatManifest(
                dtype=dtype.str,
                shape=shape,
                num_disks=int(num_disks),
                tile_rows=rows,
                tile_starts=tile_starts,
                tile_digests=tile_digests,
                file_bytes=os.path.getsize(path),
                params={"scheme": scheme_name, "dims": list(dims)},
            ).write(path)
            _remove_quietly(journal_file, carry_file)
        except BaseException:
            if out is not None:
                del out
            if owns_temp:
                # Nobody holds this path: remove every artifact the
                # failed build created (the mkstemp placeholder, the
                # partial, and the build sidecars).
                _remove_quietly(
                    path, partial, journal_file, carry_file
                )
            raise
        # Reopen read-only: the writable mapping is released and every
        # consumer sees the same immutable view an open_mmap would.
        # Header-level verification only — the manifest was written
        # from the in-memory digests one rename ago.
        return cls.open_mmap(path, verify="header")

    @classmethod
    def _checkpoint_tile(
        cls,
        journal_file: str,
        carry_file: str,
        carry: np.ndarray,
        dtype: np.dtype,
        shape: Tuple[int, ...],
        scheme_name: str,
        tile_rows: int,
        next_start: int,
        tile_starts: List[int],
        tile_digests: List[str],
    ) -> None:
        """Durably record one completed tile (carry first, then journal).

        Both files are replaced atomically; the journal's carry digest
        binds the pair, so a crash between the two renames leaves a
        journal that simply fails validation and resumes one tile
        earlier.
        """
        tmp = f"{carry_file}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as handle:
                np.save(handle, carry)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, carry_file)
        except BaseException:
            _remove_quietly(tmp)
            raise
        atomic_write_json(
            journal_file,
            {
                "schema": MANIFEST_SCHEMA_VERSION,
                "kind": "sat-journal",
                "dtype": dtype.str,
                "shape": list(shape),
                "scheme": scheme_name,
                "tile_rows": int(tile_rows),
                "next_start": int(next_start),
                "tile_starts": list(tile_starts),
                "tile_digests": list(tile_digests),
                "carry_sha256": sha256_hex(carry.data),
            },
        )

    @classmethod
    def open_mmap(
        cls,
        path: Union[str, os.PathLike],
        verify: Optional[str] = None,
    ) -> "SummedAreaTable":
        """Reopen a spilled table zero-copy (read-only memory map).

        The ``.npy`` header carries shape and dtype; the disk count and
        grid extents are recovered from the padded shape, so the path is
        a complete handle.

        The table is checked against its sidecar manifest *before* it is
        mapped — ``verify`` overrides ``REPRO_VERIFY`` (default
        ``header``; see :func:`repro.core.integrity.verify_sat`) — and a
        corrupt artifact raises
        :class:`~repro.core.exceptions.IntegrityError` rather than ever
        being loaded.  Tables without a manifest (pre-integrity spills,
        hand-made fixtures) still open at ``header``, logged and counted
        as unverified.
        """
        path = os.fspath(path)
        maybe_io_fault("sat.read", path)
        verify_sat(path, verify)
        array = np.load(path, mmap_mode="r")  # qa503: allow — this IS
        # the integrity-verified open; verify_sat ran one line up.
        if array.ndim < 2:
            raise AllocationError(
                f"{path} does not hold a stacked SAT "
                f"(ndim {array.ndim} < 2)"
            )
        num_disks = int(array.shape[0])
        dims = tuple(int(d) - 1 for d in array.shape[1:])
        if any(d <= 0 for d in dims):
            raise AllocationError(
                f"{path} has non-padded spatial extents {array.shape[1:]}"
            )
        return cls(array, Grid(dims), num_disks, path=path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dims(self) -> Tuple[int, ...]:
        """Grid extents (without padding)."""
        return self.grid.dims

    @property
    def ndim(self) -> int:
        return self.grid.ndim

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    @property
    def is_mmap(self) -> bool:
        """Whether the table is backed by a memory-mapped file."""
        return self.path is not None

    def nbytes(self) -> int:
        """Size of the table, in bytes (file size for mmap tables)."""
        return int(self.array.nbytes)

    def resident_nbytes(self) -> int:
        """Bytes guaranteed resident in RAM (0 for mmap-backed tables)."""
        if self.is_mmap:
            return 0
        extra = (
            self._disk_last.nbytes if self._disk_last is not None else 0
        )
        return int(self.array.nbytes) + int(extra)

    def disk_last(self) -> np.ndarray:
        """Disk-contiguous copy ``(d_1+1, ..., d_k+1, M)`` for native kernels.

        Each spatial corner's ``M`` per-disk counts become one contiguous
        (usually single-cache-line) vector — the layout the compiled
        backends vectorize over.  Built lazily, cached, and shared by
        every backend; only available for in-RAM tables (a transposed
        copy of a beyond-RAM table would defeat the point of spilling).
        """
        if self.is_mmap:
            raise AllocationError(
                "disk-last layout is not available for memory-mapped "
                "SATs; use the streamed numpy path"
            )
        if self._disk_last is None:
            transposed = np.ascontiguousarray(
                np.moveaxis(self.array, 0, -1)
            )
            transposed.setflags(write=False)
            self._disk_last = transposed
        return self._disk_last

    # ------------------------------------------------------------------
    # Gathers
    # ------------------------------------------------------------------

    def _spatial_element_strides(self) -> np.ndarray:
        """Row-major strides of the padded spatial box, in elements."""
        padded = self.array.shape[1:]
        strides = np.ones(len(padded), dtype=np.int64)
        for axis in range(len(padded) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * padded[axis + 1]
        return strides

    def corner_counts(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Per-query per-disk counts ``(N, M)`` by 2^k-corner gather.

        ``lo``/``hi`` are clipped half-open bounds of shape ``(N, k)``
        (see ``ResponseTimeEngine``).  In-RAM tables use one fancy-index
        gather per corner; memory-mapped tables stream each corner's
        gather in ascending file order (sorted linear offsets) so page
        reads through the map stay sequential per disk plane.
        """
        num_queries, ndim = lo.shape
        if ndim != self.ndim:
            raise QueryError(
                f"{ndim}-d bounds do not match {self.ndim}-d SAT"
            )
        counts = np.zeros(
            (num_queries, self.num_disks), dtype=np.int64
        )
        if num_queries == 0:
            return counts
        if not self.is_mmap:
            for corner in range(1 << ndim):
                index: Tuple = (slice(None),)
                parity = 0
                for axis in range(ndim):
                    if (corner >> axis) & 1:
                        index += (lo[:, axis],)
                        parity ^= 1
                    else:
                        index += (hi[:, axis],)
                term = self.array[index]  # shape (M, N)
                if parity:
                    counts -= term.T
                else:
                    counts += term.T
            return counts
        strides = self._spatial_element_strides()
        flat = self.array.reshape(self.num_disks, -1)
        for corner in range(1 << ndim):
            offsets = np.zeros(num_queries, dtype=np.int64)
            parity = 0
            for axis in range(ndim):
                if (corner >> axis) & 1:
                    offsets += lo[:, axis] * strides[axis]
                    parity ^= 1
                else:
                    offsets += hi[:, axis] * strides[axis]
            order = np.argsort(offsets, kind="stable")
            sorted_offsets = offsets[order]
            sign = -1 if parity else 1
            for disk in range(self.num_disks):
                values = flat[disk][sorted_offsets].astype(np.int64)
                counts[order, disk] += sign * values
        return counts

    def close(self) -> None:
        """Release a memory-mapped table's file mapping (idempotent).

        The numpy views become invalid after this; in-RAM tables are
        unaffected.  The backing file is *not* deleted — the path handle
        stays reopenable.
        """
        if self.is_mmap and self.array is not None:
            mmap_obj = getattr(self.array, "_mmap", None)
            self.array = None  # type: ignore[assignment]
            if mmap_obj is not None:
                mmap_obj.close()
