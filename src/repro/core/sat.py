"""Per-disk summed-area tables: in-RAM, and chunked/memory-mapped.

The :class:`~repro.core.engine.ResponseTimeEngine` answers every query
through one data structure: the stacked k-dimensional summed-area table
(SAT) of the ``M`` disk-indicator arrays,

    sat[m, i_1, ..., i_k] = |{ b on disk m : b_j < i_j for all j }|,

zero-padded with one leading plane per spatial axis so inclusion–
exclusion slices are uniform.  This module owns that structure:

* :meth:`SummedAreaTable.build` — the in-RAM build (moved here from the
  engine), one pass of indicators + one ``cumsum`` per axis;
* :meth:`SummedAreaTable.build_chunked` — a **tiled build that never
  materializes the whole grid**: the allocation is generated tile by
  tile (:meth:`~repro.schemes.base.DeclusteringScheme.disk_array_block`),
  prefix sums are carried across tiles, and the table spills to a
  memory-mapped ``.npy`` file, all under a configurable byte budget.
  This is what makes beyond-RAM grids (1024³ and up — billions of
  buckets, a scenario the 1994 paper could not touch) buildable and
  queryable on ordinary hardware;
* :meth:`SummedAreaTable.open_mmap` — reopen a spilled table zero-copy
  (the ``.npy`` header carries shape and dtype, so the path alone is a
  complete, picklable handle — see ``repro.core.shm.MmapSatHandle``);
* :meth:`SummedAreaTable.corner_counts` — the batched 2^k-corner gather,
  streamed in ascending file order for memory-mapped tables so page
  reads stay sequential.

All arithmetic is exact integer work; every layout of the same
allocation holds bit-identical counts, which the QA423 backend contract
certifies.
"""

from __future__ import annotations

import os
import tempfile
from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import AllocationError, QueryError
from repro.core.grid import Grid
from repro.obs.trace import trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.schemes.base import DeclusteringScheme

__all__ = [
    "DEFAULT_BYTE_BUDGET",
    "SummedAreaTable",
    "sat_byte_budget",
    "sat_dtype",
]

#: Default working-memory budget (bytes) for chunked builds and streamed
#: gathers: 256 MiB, small enough for CI runners, large enough that the
#: paper-scale grids never actually chunk.
DEFAULT_BYTE_BUDGET = 256 * 1024 * 1024

#: Environment variable overriding the default byte budget.
BYTE_BUDGET_ENV = "REPRO_SAT_BUDGET"


def sat_byte_budget(budget: Optional[int] = None) -> int:
    """Resolve the working-memory budget: argument > env var > default."""
    if budget is None:
        raw = os.environ.get(BYTE_BUDGET_ENV)
        budget = int(raw) if raw else DEFAULT_BYTE_BUDGET
    budget = int(budget)
    if budget <= 0:
        raise AllocationError(f"SAT byte budget must be positive: {budget}")
    return budget


def sat_dtype(num_buckets: int) -> np.dtype:
    """Smallest signed dtype that can hold any SAT entry.

    Entries never exceed the bucket count, so int32 suffices up to
    2^31 - 1 buckets; downstream arithmetic accumulates in int64.
    """
    return np.dtype(
        np.int32 if num_buckets <= np.iinfo(np.int32).max else np.int64
    )


def _padded_shape(num_disks: int, dims: Sequence[int]) -> Tuple[int, ...]:
    return (int(num_disks),) + tuple(int(d) + 1 for d in dims)


class SummedAreaTable:
    """The stacked per-disk SAT, backed by RAM or by a memory-mapped file.

    Attributes
    ----------
    array:
        The ``(M, d_1 + 1, ..., d_k + 1)`` table — an ``ndarray`` for
        in-RAM tables, an ``np.memmap`` view for spilled ones.  Read-only
        either way.
    """

    __slots__ = ("array", "grid", "num_disks", "path", "_disk_last")

    def __init__(
        self,
        array: np.ndarray,
        grid: Grid,
        num_disks: int,
        path: Optional[str] = None,
    ):
        expected = _padded_shape(num_disks, grid.dims)
        if tuple(array.shape) != expected:
            raise AllocationError(
                f"SAT shape {tuple(array.shape)} does not match "
                f"grid {grid.dims} with M={num_disks} (expected {expected})"
            )
        self.array = array
        self.grid = grid
        self.num_disks = int(num_disks)
        self.path = path
        #: Lazily built disk-last (disk-contiguous) copy for native
        #: backends; shared across backends, in-RAM tables only.
        self._disk_last: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, allocation: DiskAllocation) -> "SummedAreaTable":
        """In-RAM build from a materialized allocation (the default path)."""
        table = allocation.table
        num_disks = allocation.num_disks
        ndim = table.ndim
        disks = np.arange(num_disks, dtype=table.dtype)
        indicators = table[np.newaxis] == disks.reshape(
            (num_disks,) + (1,) * ndim
        )
        sat = np.zeros(
            _padded_shape(num_disks, table.shape),
            dtype=sat_dtype(table.size),
        )
        interior = (slice(None),) + (slice(1, None),) * ndim
        sat[interior] = indicators
        for axis in range(1, ndim + 1):
            np.cumsum(sat, axis=axis, out=sat)
        sat.setflags(write=False)
        return cls(sat, allocation.grid, num_disks)

    @classmethod
    def _tile_cost(cls, grid: Grid, num_disks: int) -> Tuple[int, int]:
        """``(per_row_bytes, carry_bytes)`` of one chunked-build tile.

        Per row: the SAT chunk row per disk, plus the int64 coordinate
        arithmetic of the allocation block (ndim temporaries).
        """
        rest_padded = 1
        for d in grid.dims[1:]:
            rest_padded *= d + 1
        itemsize = sat_dtype(grid.num_buckets).itemsize
        per_row = num_disks * rest_padded * itemsize
        per_row += (grid.ndim + 1) * rest_padded * 8
        carry = num_disks * rest_padded * itemsize
        return per_row, carry

    @classmethod
    def tile_rows(
        cls, grid: Grid, num_disks: int, byte_budget: Optional[int] = None
    ) -> int:
        """Rows of the leading axis one build tile may span under the budget.

        The tile working set is the per-tile SAT chunk (``M`` disks ×
        rows × padded trailing extents), the tile's allocation block, and
        the carry plane; the row count is what makes that fit.
        """
        budget = sat_byte_budget(byte_budget)
        per_row, carry = cls._tile_cost(grid, num_disks)
        rows = max(1, (budget - carry) // max(per_row, 1))
        return int(min(rows, grid.dims[0]))

    @classmethod
    def tile_working_set(
        cls, grid: Grid, num_disks: int, rows: int
    ) -> int:
        """Estimated peak bytes a ``rows``-row build tile touches.

        The inverse of :meth:`tile_rows` — benchmarks and the CI gate use
        it to certify a chunked build stayed within its byte budget.
        """
        per_row, carry = cls._tile_cost(grid, num_disks)
        return int(rows) * per_row + carry

    @classmethod
    def build_chunked(
        cls,
        scheme: "DeclusteringScheme",
        grid: Grid,
        num_disks: int,
        byte_budget: Optional[int] = None,
        path: Optional[Union[str, os.PathLike]] = None,
    ) -> "SummedAreaTable":
        """Tiled build spilling to a memory-mapped ``.npy`` file.

        The grid is swept in tiles of :meth:`tile_rows` rows along the
        leading axis; each tile's allocation block comes from
        ``scheme.disk_array_block`` (so the full table is never
        materialized), trailing-axis prefix sums are computed within the
        tile, and the leading-axis sum is carried across tiles.  ``path``
        defaults to a fresh temp file (``REPRO_SAT_DIR`` overrides the
        directory); the caller owns the file's lifetime.
        """
        if path is None:
            directory = os.environ.get(
                "REPRO_SAT_DIR"
            ) or tempfile.gettempdir()
            fd, path = tempfile.mkstemp(
                prefix="repro-sat-", suffix=".npy", dir=directory
            )
            os.close(fd)
        path = os.fspath(path)
        dims = grid.dims
        ndim = grid.ndim
        dtype = sat_dtype(grid.num_buckets)
        rows = cls.tile_rows(grid, num_disks, byte_budget)
        with trace(
            "sat.build_chunked",
            dims=list(dims),
            num_disks=int(num_disks),
            tile_rows=rows,
        ):
            out = np.lib.format.open_memmap(
                path,
                mode="w+",
                dtype=dtype,
                shape=_padded_shape(num_disks, dims),
            )
            rest_padded = tuple(d + 1 for d in dims[1:])
            carry = np.zeros((num_disks,) + rest_padded, dtype=dtype)
            disks = np.arange(num_disks)
            interior = (slice(None), slice(None)) + (
                slice(1, None),
            ) * (ndim - 1)
            for start in range(0, dims[0], rows):
                stop = min(start + rows, dims[0])
                block = scheme.disk_array_block(
                    grid, num_disks, start, stop
                )
                chunk = np.zeros(
                    (num_disks, stop - start) + rest_padded, dtype=dtype
                )
                chunk[interior] = block[np.newaxis] == disks.reshape(
                    (num_disks,) + (1,) * ndim
                )
                # Trailing axes first, then the tile axis; cumsums
                # commute, and this order keeps the carry a single plane.
                for axis in range(2, ndim + 1):
                    np.cumsum(chunk, axis=axis, out=chunk)
                np.cumsum(chunk, axis=1, out=chunk)
                chunk += carry[:, np.newaxis]
                carry = np.ascontiguousarray(chunk[:, -1])
                out[:, start + 1 : stop + 1] = chunk
            out.flush()
        # Reopen read-only: the writable mapping is released and every
        # consumer sees the same immutable view an open_mmap would.
        del out
        return cls.open_mmap(path)

    @classmethod
    def open_mmap(
        cls, path: Union[str, os.PathLike]
    ) -> "SummedAreaTable":
        """Reopen a spilled table zero-copy (read-only memory map).

        The ``.npy`` header carries shape and dtype; the disk count and
        grid extents are recovered from the padded shape, so the path is
        a complete handle.
        """
        path = os.fspath(path)
        array = np.load(path, mmap_mode="r")
        if array.ndim < 2:
            raise AllocationError(
                f"{path} does not hold a stacked SAT "
                f"(ndim {array.ndim} < 2)"
            )
        num_disks = int(array.shape[0])
        dims = tuple(int(d) - 1 for d in array.shape[1:])
        if any(d <= 0 for d in dims):
            raise AllocationError(
                f"{path} has non-padded spatial extents {array.shape[1:]}"
            )
        return cls(array, Grid(dims), num_disks, path=path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dims(self) -> Tuple[int, ...]:
        """Grid extents (without padding)."""
        return self.grid.dims

    @property
    def ndim(self) -> int:
        return self.grid.ndim

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    @property
    def is_mmap(self) -> bool:
        """Whether the table is backed by a memory-mapped file."""
        return self.path is not None

    def nbytes(self) -> int:
        """Size of the table, in bytes (file size for mmap tables)."""
        return int(self.array.nbytes)

    def resident_nbytes(self) -> int:
        """Bytes guaranteed resident in RAM (0 for mmap-backed tables)."""
        if self.is_mmap:
            return 0
        extra = (
            self._disk_last.nbytes if self._disk_last is not None else 0
        )
        return int(self.array.nbytes) + int(extra)

    def disk_last(self) -> np.ndarray:
        """Disk-contiguous copy ``(d_1+1, ..., d_k+1, M)`` for native kernels.

        Each spatial corner's ``M`` per-disk counts become one contiguous
        (usually single-cache-line) vector — the layout the compiled
        backends vectorize over.  Built lazily, cached, and shared by
        every backend; only available for in-RAM tables (a transposed
        copy of a beyond-RAM table would defeat the point of spilling).
        """
        if self.is_mmap:
            raise AllocationError(
                "disk-last layout is not available for memory-mapped "
                "SATs; use the streamed numpy path"
            )
        if self._disk_last is None:
            transposed = np.ascontiguousarray(
                np.moveaxis(self.array, 0, -1)
            )
            transposed.setflags(write=False)
            self._disk_last = transposed
        return self._disk_last

    # ------------------------------------------------------------------
    # Gathers
    # ------------------------------------------------------------------

    def _spatial_element_strides(self) -> np.ndarray:
        """Row-major strides of the padded spatial box, in elements."""
        padded = self.array.shape[1:]
        strides = np.ones(len(padded), dtype=np.int64)
        for axis in range(len(padded) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * padded[axis + 1]
        return strides

    def corner_counts(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Per-query per-disk counts ``(N, M)`` by 2^k-corner gather.

        ``lo``/``hi`` are clipped half-open bounds of shape ``(N, k)``
        (see ``ResponseTimeEngine``).  In-RAM tables use one fancy-index
        gather per corner; memory-mapped tables stream each corner's
        gather in ascending file order (sorted linear offsets) so page
        reads through the map stay sequential per disk plane.
        """
        num_queries, ndim = lo.shape
        if ndim != self.ndim:
            raise QueryError(
                f"{ndim}-d bounds do not match {self.ndim}-d SAT"
            )
        counts = np.zeros(
            (num_queries, self.num_disks), dtype=np.int64
        )
        if num_queries == 0:
            return counts
        if not self.is_mmap:
            for corner in range(1 << ndim):
                index: Tuple = (slice(None),)
                parity = 0
                for axis in range(ndim):
                    if (corner >> axis) & 1:
                        index += (lo[:, axis],)
                        parity ^= 1
                    else:
                        index += (hi[:, axis],)
                term = self.array[index]  # shape (M, N)
                if parity:
                    counts -= term.T
                else:
                    counts += term.T
            return counts
        strides = self._spatial_element_strides()
        flat = self.array.reshape(self.num_disks, -1)
        for corner in range(1 << ndim):
            offsets = np.zeros(num_queries, dtype=np.int64)
            parity = 0
            for axis in range(ndim):
                if (corner >> axis) & 1:
                    offsets += lo[:, axis] * strides[axis]
                    parity ^= 1
                else:
                    offsets += hi[:, axis] * strides[axis]
            order = np.argsort(offsets, kind="stable")
            sorted_offsets = offsets[order]
            sign = -1 if parity else 1
            for disk in range(self.num_disks):
                values = flat[disk][sorted_offsets].astype(np.int64)
                counts[order, disk] += sign * values
        return counts

    def close(self) -> None:
        """Release a memory-mapped table's file mapping (idempotent).

        The numpy views become invalid after this; in-RAM tables are
        unaffected.  The backing file is *not* deleted — the path handle
        stays reopenable.
        """
        if self.is_mmap and self.array is not None:
            mmap_obj = getattr(self.array, "_mmap", None)
            self.array = None  # type: ignore[assignment]
            if mmap_obj is not None:
                mmap_obj.close()
