"""Per-disk summed-area tables: in-RAM, and chunked/memory-mapped.

The :class:`~repro.core.engine.ResponseTimeEngine` answers every query
through one data structure: the stacked k-dimensional summed-area table
(SAT) of the ``M`` disk-indicator arrays,

    sat[m, i_1, ..., i_k] = |{ b on disk m : b_j < i_j for all j }|,

zero-padded with one leading plane per spatial axis so inclusion–
exclusion slices are uniform.  This module owns that structure:

* :meth:`SummedAreaTable.build` — the in-RAM build (moved here from the
  engine), one pass of indicators + one ``cumsum`` per axis;
* :meth:`SummedAreaTable.build_chunked` — a **tiled build that never
  materializes the whole grid**: the allocation is generated tile by
  tile (:meth:`~repro.schemes.base.DeclusteringScheme.disk_array_block`),
  prefix sums are carried across tiles, and the table spills to a
  memory-mapped ``.npy`` file, all under a configurable byte budget.
  This is what makes beyond-RAM grids (1024³ and up — billions of
  buckets, a scenario the 1994 paper could not touch) buildable and
  queryable on ordinary hardware;
* :meth:`SummedAreaTable.open_mmap` — reopen a spilled table zero-copy
  (the ``.npy`` header carries shape and dtype, so the path alone is a
  complete, picklable handle — see ``repro.core.shm.MmapSatHandle``);
* :meth:`SummedAreaTable.corner_counts` — the batched 2^k-corner gather,
  streamed in ascending file order for memory-mapped tables so page
  reads stay sequential.

All arithmetic is exact integer work; every layout of the same
allocation holds bit-identical counts, which the QA423 backend contract
certifies.
"""

from __future__ import annotations

import json
import mmap as _mmap_module
import os
import pickle
import tempfile
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import (
    AllocationError,
    LayoutError,
    QueryError,
)
from repro.core.grid import Grid
from repro.core.integrity import (
    MANIFEST_SCHEMA_VERSION,
    SAT_JOURNAL_KIND,
    SAT_SHARDS_KIND,
    SatManifest,
    atomic_write_json,
    sha256_hex,
    verify_sat,
)
from repro.faults.io import maybe_io_fault
from repro.obs.log import get_logger
from repro.obs.metrics import global_registry
from repro.obs.trace import trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.schemes.base import DeclusteringScheme

_LOG = get_logger("repro.core.sat")

__all__ = [
    "DEFAULT_BYTE_BUDGET",
    "SummedAreaTable",
    "build_carry_path",
    "build_journal_path",
    "build_partial_path",
    "build_shards_path",
    "build_workers",
    "sat_byte_budget",
    "sat_dtype",
]

#: Default working-memory budget (bytes) for chunked builds and streamed
#: gathers: 256 MiB, small enough for CI runners, large enough that the
#: paper-scale grids never actually chunk.
DEFAULT_BYTE_BUDGET = 256 * 1024 * 1024

#: Environment variable overriding the default byte budget.
BYTE_BUDGET_ENV = "REPRO_SAT_BUDGET"

#: Environment variable selecting how many processes a chunked build
#: fans phase-1 tiles over (``--build-workers`` writes it).
BUILD_WORKERS_ENV = "REPRO_BUILD_WORKERS"

#: Pool-rebuild rounds a parallel build attempts after worker deaths
#: before computing the leftover tiles serially in the parent (which
#: always completes — the serial loop is the recovery path of record).
_MAX_POOL_ROUNDS = 4


def sat_byte_budget(budget: Optional[int] = None) -> int:
    """Resolve the working-memory budget: argument > env var > default."""
    if budget is None:
        raw = os.environ.get(BYTE_BUDGET_ENV)
        budget = int(raw) if raw else DEFAULT_BYTE_BUDGET
    budget = int(budget)
    if budget <= 0:
        raise AllocationError(f"SAT byte budget must be positive: {budget}")
    return budget


def build_workers(workers: Optional[int] = None) -> int:
    """Resolve the chunked-build worker count: argument > env var > 1.

    ``1`` means the classic serial sweep.  Note the byte budget bounds
    each tile's working set *per process*: ``N`` phase-1 workers hold up
    to ``N`` tile chunks at once, so the aggregate transient footprint
    of a parallel build is ``workers ×`` :meth:`SummedAreaTable.tile_working_set`.
    """
    if workers is None:
        raw = os.environ.get(BUILD_WORKERS_ENV)
        workers = int(raw) if raw else 1
    workers = int(workers)
    if workers < 1:
        raise AllocationError(
            f"build worker count must be >= 1: {workers}"
        )
    return workers


def sat_dtype(num_buckets: int) -> np.dtype:
    """Smallest signed dtype that can hold any SAT entry.

    Entries never exceed the bucket count, so int32 suffices up to
    2^31 - 1 buckets; downstream arithmetic accumulates in int64.
    """
    return np.dtype(
        np.int32 if num_buckets <= np.iinfo(np.int32).max else np.int64
    )


def _padded_shape(num_disks: int, dims: Sequence[int]) -> Tuple[int, ...]:
    return (int(num_disks),) + tuple(int(d) + 1 for d in dims)


# ----------------------------------------------------------------------
# Crash-safe chunked-build sidecars
# ----------------------------------------------------------------------
#
# A chunked build never writes the final path directly.  It writes
# ``<path>.partial`` plus a tile journal and a carry-plane checkpoint,
# each updated with an atomic rename after every completed tile, then
# renames the partial into place.  A SIGKILL at any moment therefore
# leaves either (a) nothing at the final path plus a resumable
# partial/journal pair, or (b) the finished table — never a torn file
# under the real name.


def build_partial_path(path: Union[str, os.PathLike]) -> str:
    """Where a chunked build stages its output before the final rename."""
    return os.fspath(path) + ".partial"


def build_journal_path(path: Union[str, os.PathLike]) -> str:
    """The tile journal recording how far a chunked build has gotten."""
    return os.fspath(path) + ".journal.json"


def build_carry_path(path: Union[str, os.PathLike]) -> str:
    """The carry-plane checkpoint matching the journal's last tile."""
    return os.fspath(path) + ".carry.npy"


def build_shards_path(path: Union[str, os.PathLike]) -> str:
    """The phase-1 shard log of a parallel build: tiles workers committed.

    Each entry maps a tile start row to the sha256 of the tile's
    *carry-free* slab (trailing-axis and tile-axis prefix sums, no
    leading-axis carry) as written into the shared ``.partial`` mmap.
    Phase 2 verifies the digest before reusing a slab it did not write
    itself, so a worker killed mid-write can never poison the table.
    """
    return os.fspath(path) + ".shards.json"


def _remove_quietly(*paths: str) -> None:
    for p in paths:
        try:
            os.unlink(p)
        except OSError:
            pass


class SummedAreaTable:
    """The stacked per-disk SAT, backed by RAM or by a memory-mapped file.

    Attributes
    ----------
    array:
        The ``(M, d_1 + 1, ..., d_k + 1)`` table — an ``ndarray`` for
        in-RAM tables, an ``np.memmap`` view for spilled ones.  Read-only
        either way.
    """

    __slots__ = ("array", "grid", "num_disks", "path", "_disk_last")

    def __init__(
        self,
        array: np.ndarray,
        grid: Grid,
        num_disks: int,
        path: Optional[str] = None,
    ):
        expected = _padded_shape(num_disks, grid.dims)
        if tuple(array.shape) != expected:
            raise AllocationError(
                f"SAT shape {tuple(array.shape)} does not match "
                f"grid {grid.dims} with M={num_disks} (expected {expected})"
            )
        self.array = array
        self.grid = grid
        self.num_disks = int(num_disks)
        self.path = path
        #: Lazily built disk-last (disk-contiguous) copy for native
        #: backends; shared across backends, in-RAM tables only.
        self._disk_last: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, allocation: DiskAllocation) -> "SummedAreaTable":
        """In-RAM build from a materialized allocation (the default path)."""
        table = allocation.table
        num_disks = allocation.num_disks
        ndim = table.ndim
        disks = np.arange(num_disks, dtype=table.dtype)
        indicators = table[np.newaxis] == disks.reshape(
            (num_disks,) + (1,) * ndim
        )
        sat = np.zeros(
            _padded_shape(num_disks, table.shape),
            dtype=sat_dtype(table.size),
        )
        interior = (slice(None),) + (slice(1, None),) * ndim
        sat[interior] = indicators
        for axis in range(1, ndim + 1):
            np.cumsum(sat, axis=axis, out=sat)
        sat.setflags(write=False)
        return cls(sat, allocation.grid, num_disks)

    @classmethod
    def _tile_cost(cls, grid: Grid, num_disks: int) -> Tuple[int, int]:
        """``(per_row_bytes, carry_bytes)`` of one chunked-build tile.

        Per row: the SAT chunk row per disk, plus the int64 coordinate
        arithmetic of the allocation block (ndim temporaries).
        """
        rest_padded = 1
        for d in grid.dims[1:]:
            rest_padded *= d + 1
        itemsize = sat_dtype(grid.num_buckets).itemsize
        per_row = num_disks * rest_padded * itemsize
        per_row += (grid.ndim + 1) * rest_padded * 8
        carry = num_disks * rest_padded * itemsize
        return per_row, carry

    @classmethod
    def tile_rows(
        cls, grid: Grid, num_disks: int, byte_budget: Optional[int] = None
    ) -> int:
        """Rows of the leading axis one build tile may span under the budget.

        The tile working set is the per-tile SAT chunk (``M`` disks ×
        rows × padded trailing extents), the tile's allocation block, and
        the carry plane; the row count is what makes that fit.
        """
        budget = sat_byte_budget(byte_budget)
        per_row, carry = cls._tile_cost(grid, num_disks)
        rows = max(1, (budget - carry) // max(per_row, 1))
        return int(min(rows, grid.dims[0]))

    @classmethod
    def tile_working_set(
        cls, grid: Grid, num_disks: int, rows: int
    ) -> int:
        """Estimated peak bytes a ``rows``-row build tile touches.

        The inverse of :meth:`tile_rows` — benchmarks and the CI gate use
        it to certify a chunked build stayed within its byte budget.
        """
        per_row, carry = cls._tile_cost(grid, num_disks)
        return int(rows) * per_row + carry

    @classmethod
    def _load_build_journal(
        cls,
        path: str,
        dtype: np.dtype,
        shape: Tuple[int, ...],
        scheme_name: str,
    ) -> Optional[Dict[str, object]]:
        """A prior interrupted build's journal, validated, or ``None``.

        Returns the journal document only when every identity field
        (dtype, shape, scheme) matches the requested build, the partial
        file exists, the tile bookkeeping is self-consistent, and the
        carry checkpoint's digest matches what the journal recorded —
        anything less and resuming could not be byte-identical, so the
        stale sidecars are removed and the build starts fresh.
        """
        journal_file = build_journal_path(path)
        carry_file = build_carry_path(path)
        partial = build_partial_path(path)

        def _discard(why: str) -> None:
            _LOG.warning(
                "discarding unusable build journal for %s: %s", path, why
            )
            # The shard log indexes slabs inside the partial, so it
            # dies with it.
            _remove_quietly(
                journal_file, carry_file, partial,
                build_shards_path(path),
            )

        try:
            with open(journal_file) as handle:
                journal = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            _discard(f"unreadable ({exc!r})")
            return None
        try:
            ok = (
                int(journal["schema"]) == MANIFEST_SCHEMA_VERSION
                and journal["kind"] == SAT_JOURNAL_KIND
                and str(journal["dtype"]) == dtype.str
                and tuple(journal["shape"]) == shape
                and str(journal.get("scheme", "")) == scheme_name
                and int(journal["tile_rows"]) >= 1
                and 0 < int(journal["next_start"]) <= shape[1] - 1
                and len(journal["tile_starts"])
                == len(journal["tile_digests"])
            )
        except (KeyError, TypeError, ValueError):
            ok = False
        if ok:
            rows = int(journal["tile_rows"])
            expected_starts = list(
                range(0, int(journal["next_start"]), rows)
            )
            ok = [int(s) for s in journal["tile_starts"]] == (
                expected_starts
            )
        if not ok:
            _discard("identity or tile bookkeeping mismatch")
            return None
        if not os.path.exists(partial):
            _discard("partial file is gone")
            return None
        try:
            carry = np.load(carry_file)  # qa503: allow — digest-checked
            # against the journal on the next line before any use.
            carry = np.ascontiguousarray(carry)
        except (OSError, ValueError):
            _discard("carry checkpoint unreadable")
            return None
        if (
            carry.dtype != dtype
            or carry.shape != (shape[0],) + shape[2:]
            or sha256_hex(carry.data) != journal.get("carry_sha256")
        ):
            _discard("carry checkpoint does not match the journal")
            return None
        journal["carry"] = carry
        return journal

    @classmethod
    def _load_build_shards(
        cls,
        path: str,
        dtype: np.dtype,
        shape: Tuple[int, ...],
        scheme_name: str,
        tile_rows: int,
    ) -> Dict[int, str]:
        """A prior build's validated phase-1 shard log, or ``{}``.

        Identity fields must match the requested build and the resolved
        tile size — a shard log written under different tile geometry
        indexes slabs that do not exist.  Entries are *not* hashed here;
        phase 2 verifies each slab against its recorded digest before
        reuse, so a stale or torn entry costs a recompute, never a
        wrong table.
        """
        shards_file = build_shards_path(path)
        try:
            with open(shards_file) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return {}
        except (OSError, ValueError) as exc:
            _LOG.warning(
                "discarding unreadable shard log for %s: %r", path, exc
            )
            _remove_quietly(shards_file)
            return {}
        done: Dict[int, str] = {}
        try:
            ok = (
                int(document["schema"]) == MANIFEST_SCHEMA_VERSION
                and document["kind"] == SAT_SHARDS_KIND
                and str(document["dtype"]) == dtype.str
                and tuple(document["shape"]) == shape
                and str(document.get("scheme", "")) == scheme_name
                and int(document["tile_rows"]) == int(tile_rows)
            )
            if ok:
                done = {
                    int(start): str(digest)
                    for start, digest in document["done"].items()
                }
        except (AttributeError, KeyError, TypeError, ValueError):
            ok = False
        leading = shape[1] - 1
        if not ok or any(
            start < 0 or start >= leading or start % int(tile_rows)
            for start in done
        ):
            _LOG.warning(
                "discarding shard log for %s: identity or tile "
                "bookkeeping mismatch",
                path,
            )
            _remove_quietly(shards_file)
            return {}
        return done

    @classmethod
    def _write_shards(
        cls,
        shards_file: str,
        dtype: np.dtype,
        shape: Tuple[int, ...],
        scheme_name: str,
        tile_rows: int,
        shards: Dict[int, str],
    ) -> None:
        """Durably record the worker-committed phase-1 tiles.

        Written by the *parent* after a shard future resolves; a worker
        returns only after flushing its own mapping, so the log never
        claims a slab that might not be durable.  Atomic replace, like
        the carry journal.
        """
        atomic_write_json(
            shards_file,
            {
                "schema": MANIFEST_SCHEMA_VERSION,
                "kind": SAT_SHARDS_KIND,
                "dtype": dtype.str,
                "shape": list(shape),
                "scheme": scheme_name,
                "tile_rows": int(tile_rows),
                "done": {
                    str(start): digest
                    for start, digest in sorted(shards.items())
                },
            },
        )

    @classmethod
    def _local_tile_chunk(
        cls,
        scheme: "DeclusteringScheme",
        grid: Grid,
        num_disks: int,
        dtype: np.dtype,
        start: int,
        stop: int,
    ) -> np.ndarray:
        """One tile's carry-free SAT chunk (shared by both build phases).

        The indicator block for rows ``[start, stop)`` with trailing-axis
        and tile-axis prefix sums applied — everything except the
        leading-axis carry, which couples tiles and is phase 2's job.
        Exactly the per-tile arithmetic of the serial sweep, so serial
        and parallel builds are byte-identical by construction.
        """
        ndim = grid.ndim
        rest_padded = tuple(d + 1 for d in grid.dims[1:])
        block = scheme.disk_array_block(grid, num_disks, start, stop)
        chunk = np.zeros(
            (num_disks, stop - start) + rest_padded, dtype=dtype
        )
        disks = np.arange(num_disks)
        interior = (slice(None), slice(None)) + (slice(1, None),) * (
            ndim - 1
        )
        chunk[interior] = block[np.newaxis] == disks.reshape(
            (num_disks,) + (1,) * ndim
        )
        # Trailing axes first, then the tile axis; cumsums commute, and
        # this order keeps the cross-tile carry a single plane.
        for axis in range(2, ndim + 1):
            np.cumsum(chunk, axis=axis, out=chunk)
        np.cumsum(chunk, axis=1, out=chunk)
        return chunk

    @staticmethod
    def _scheme_picklable(scheme: "DeclusteringScheme") -> bool:
        """Whether the scheme can travel to spawn workers (phase 1)."""
        try:
            pickle.dumps(scheme)
            return True
        except Exception as exc:  # qa502: allow — logged and counted, serial build is the correct fallback
            global_registry().inc("sat.build.serial_fallbacks")
            _LOG.warning(
                "scheme %r is not picklable (%r); building serially",
                getattr(scheme, "name", scheme),
                exc,
            )
            return False

    @classmethod
    def build_chunked(
        cls,
        scheme: "DeclusteringScheme",
        grid: Grid,
        num_disks: int,
        byte_budget: Optional[int] = None,
        path: Optional[Union[str, os.PathLike]] = None,
        resume: bool = True,
        workers: Optional[int] = None,
    ) -> "SummedAreaTable":
        """Tiled build spilling to a memory-mapped ``.npy`` file.

        The grid is swept in tiles of :meth:`tile_rows` rows along the
        leading axis; each tile's allocation block comes from
        ``scheme.disk_array_block`` (so the full table is never
        materialized), trailing-axis prefix sums are computed within the
        tile, and the leading-axis sum is carried across tiles.  ``path``
        defaults to a fresh temp file (``REPRO_SAT_DIR`` overrides the
        directory); the caller owns the file's lifetime.

        With ``workers > 1`` (argument > ``REPRO_BUILD_WORKERS`` > 1)
        the sweep splits into **two phases**: phase 1 fans the carry-free
        tile chunks (:meth:`_local_tile_chunk`) out across a spawn-safe
        process pool, each worker writing its slab straight into the
        shared ``.partial`` mmap and the parent journaling every
        committed shard; phase 2 — overlapped with phase 1, consuming
        tiles in order as their shards land — propagates the
        leading-axis carry plane tile by tile (a cheap vectorized add)
        and writes the usual carry journal.  Cumsum order is identical
        to the serial sweep, so the finished file is **byte-identical**
        for any worker count.  Worker deaths break the pool, are
        counted (``sat.build.worker_deaths``), and the missing tiles are
        re-pooled a bounded number of times before the parent finishes
        them serially.  Each phase-1 worker holds one tile chunk, so the
        transient footprint is ``workers ×`` :meth:`tile_working_set`.

        The build is **crash-safe and resumable**: it stages into
        ``<path>.partial``, journals every completed tile (plus the
        carry plane) with atomic renames, and only renames the finished
        table into place.  Killed at any point — phase 1, phase 2, or
        the serial sweep — a re-run with the same ``path`` picks up
        from the last journaled tile, reusing worker shards whose
        digests still verify and recomputing the rest, so the resumed
        table is byte-identical to an uninterrupted build (the journal's
        tile size wins even if the byte budget changed).
        ``resume=False`` ignores and removes any prior journal.  Tile
        digests are streamed into a sidecar manifest that
        :meth:`open_mmap` verifies (see :mod:`repro.core.integrity`).
        A build that *raises* cleans up after itself: temp-file builds
        remove everything they created; explicit-path builds keep the
        partial + journal/shard set for a later resume (``repro
        doctor`` reports and can garbage-collect them).
        """
        owns_temp = path is None
        if path is None:
            directory = os.environ.get(
                "REPRO_SAT_DIR"
            ) or tempfile.gettempdir()
            fd, path = tempfile.mkstemp(
                prefix="repro-sat-", suffix=".npy", dir=directory
            )
            os.close(fd)
        path = os.fspath(path)
        partial = build_partial_path(path)
        journal_file = build_journal_path(path)
        carry_file = build_carry_path(path)
        shards_file = build_shards_path(path)
        dims = grid.dims
        dtype = sat_dtype(grid.num_buckets)
        shape = _padded_shape(num_disks, dims)
        scheme_name = getattr(scheme, "name", "") or ""
        rest_padded = tuple(d + 1 for d in dims[1:])
        workers = build_workers(workers)
        registry = global_registry()

        journal = None
        shards: Dict[int, str] = {}
        if resume and not owns_temp:
            journal = cls._load_build_journal(
                path, dtype, shape, scheme_name
            )
        elif not resume:
            _remove_quietly(
                journal_file, carry_file, partial, shards_file
            )

        rows = (
            int(journal["tile_rows"])
            if journal is not None
            else cls.tile_rows(grid, num_disks, byte_budget)
        )
        if resume and not owns_temp:
            shards = cls._load_build_shards(
                path, dtype, shape, scheme_name, rows
            )
        out = None
        try:
            with trace(
                "sat.build_chunked",
                dims=list(dims),
                num_disks=int(num_disks),
                tile_rows=rows,
                workers=workers,
                resumed=journal is not None or bool(shards),
            ):
                if journal is not None:
                    first_start = int(journal["next_start"])
                    tile_starts = [
                        int(s) for s in journal["tile_starts"]
                    ]
                    tile_digests = [
                        str(d) for d in journal["tile_digests"]
                    ]
                    carry = journal["carry"]
                    out = np.lib.format.open_memmap(
                        partial, mode="r+"
                    )  # qa503: allow — resuming our own journaled
                    # partial; identity was validated against the
                    # journal, and the final table is re-manifested.
                    if (
                        out.dtype != dtype
                        or tuple(out.shape) != shape
                    ):
                        raise AllocationError(
                            f"{partial} does not match its build "
                            f"journal (dtype {out.dtype}, shape "
                            f"{tuple(out.shape)})"
                        )
                    global_registry().inc("sat.build_resumes")
                    _LOG.info(
                        "resuming chunked SAT build of %s at row %d/%d",
                        path,
                        first_start,
                        dims[0],
                    )
                else:
                    first_start = 0
                    tile_starts = []
                    tile_digests = []
                    carry = np.zeros(
                        (num_disks,) + rest_padded, dtype=dtype
                    )
                    if shards and os.path.exists(partial):
                        # Phase-1-only crash: workers committed shards
                        # but no carry tile was ever journaled.  Reuse
                        # the partial; every slab reuse is digest-gated.
                        candidate = np.lib.format.open_memmap(
                            partial, mode="r+"
                        )  # qa503: allow — resuming our own shard-
                        # logged partial; identity was validated
                        # against the shard log, every reused slab is
                        # digest-checked, and the final table is
                        # re-manifested.
                        if (
                            candidate.dtype == dtype
                            and tuple(candidate.shape) == shape
                        ):
                            out = candidate
                            global_registry().inc("sat.build_resumes")
                            _LOG.info(
                                "resuming parallel SAT build of %s "
                                "(%d committed phase-1 shard(s))",
                                path,
                                len(shards),
                            )
                        else:
                            del candidate
                            shards = {}
                            _remove_quietly(shards_file)
                    if out is None:
                        shards = {}
                        _remove_quietly(shards_file)
                        out = np.lib.format.open_memmap(
                            partial,
                            mode="w+",
                            dtype=dtype,
                            shape=shape,
                        )  # qa503: allow — creating the staged partial
                        # this build owns; nothing is being trusted.

                #: Shards committed by *this* process's pool: their
                #: slabs cannot be torn, so phase 2 skips the re-hash.
                trusted: Set[int] = set()
                phase2_cursor = first_start

                def _commit_tile(start: int) -> None:
                    """Phase 2 / serial sweep for one tile.

                    The final slab is ``local chunk + carry``; the local
                    chunk comes from a digest-verified worker shard when
                    one exists (a cheap vectorized add) and is computed
                    in-process otherwise — both byte-identical.
                    """
                    nonlocal carry
                    stop = min(start + rows, dims[0])
                    chunk = None
                    shard_digest = shards.get(start)
                    if shard_digest is not None:
                        slab = np.ascontiguousarray(
                            out[:, start + 1 : stop + 1]
                        )
                        if (
                            start in trusted
                            or sha256_hex(slab.data) == shard_digest
                        ):
                            slab += carry[:, np.newaxis]
                            chunk = slab
                            registry.inc("sat.build.shard_reuses")
                        else:
                            registry.inc("sat.build.shard_mismatches")
                            _LOG.warning(
                                "shard slab at row %d of %s failed "
                                "its digest; recomputing",
                                start,
                                path,
                            )
                    if chunk is None:
                        chunk = cls._local_tile_chunk(
                            scheme, grid, num_disks, dtype, start, stop
                        )
                        chunk += carry[:, np.newaxis]
                    carry = np.ascontiguousarray(chunk[:, -1])
                    out[:, start + 1 : stop + 1] = chunk
                    # Tile data must be durable before the journal may
                    # claim it — flush, then checkpoint, then journal.
                    out.flush()
                    tile_starts.append(start)
                    tile_digests.append(sha256_hex(chunk.data))
                    cls._checkpoint_tile(
                        journal_file,
                        carry_file,
                        carry,
                        dtype,
                        shape,
                        scheme_name,
                        rows,
                        stop,
                        tile_starts,
                        tile_digests,
                    )
                    # Injection point: the fault strikes *between*
                    # tiles — the just-committed tile is durable, so an
                    # ``exit``-mode plan is exactly "SIGKILL at a tile
                    # boundary" and a later run must resume from here.
                    maybe_io_fault("sat.write", f"tile@{start}")

                def _advance_phase2() -> None:
                    """Carry-sweep every contiguous committed shard."""
                    nonlocal phase2_cursor
                    while (
                        phase2_cursor < dims[0]
                        and phase2_cursor in shards
                    ):
                        _commit_tile(phase2_cursor)
                        phase2_cursor += rows

                tile_span = list(range(first_start, dims[0], rows))
                pending = [s for s in tile_span if s not in shards]
                if (
                    workers > 1
                    and len(pending) > 1
                    and cls._scheme_picklable(scheme)
                ):
                    registry.inc("sat.build.parallel_builds")
                    with trace(
                        "sat.build.phase1",
                        tiles=len(pending),
                        workers=workers,
                    ):
                        cls._fan_out_tiles(
                            partial,
                            scheme,
                            dims,
                            num_disks,
                            dtype,
                            shape,
                            scheme_name,
                            rows,
                            workers,
                            pending,
                            shards,
                            trusted,
                            shards_file,
                            _advance_phase2,
                        )
                # Serial sweep: the whole build when workers == 1, the
                # recovery path for tiles phase 1 could not finish, and
                # phase 2 for shards resumed from a prior run.
                while phase2_cursor < dims[0]:
                    _commit_tile(phase2_cursor)
                    phase2_cursor += rows
                out.flush()
            # Release the writable mapping, then publish: rename the
            # finished partial into place, write the manifest, drop the
            # build sidecars.  A crash between these steps leaves a
            # valid table that is at worst missing its manifest.
            del out
            out = None
            os.replace(partial, path)
            SatManifest(
                dtype=dtype.str,
                shape=shape,
                num_disks=int(num_disks),
                tile_rows=rows,
                tile_starts=tile_starts,
                tile_digests=tile_digests,
                file_bytes=os.path.getsize(path),
                params={"scheme": scheme_name, "dims": list(dims)},
            ).write(path)
            _remove_quietly(journal_file, carry_file, shards_file)
        except BaseException:
            if out is not None:
                del out
            if owns_temp:
                # Nobody holds this path: remove every artifact the
                # failed build created (the mkstemp placeholder, the
                # partial, and the build sidecars).
                _remove_quietly(
                    path, partial, journal_file, carry_file, shards_file
                )
            raise
        # Reopen read-only: the writable mapping is released and every
        # consumer sees the same immutable view an open_mmap would.
        # Header-level verification only — the manifest was written
        # from the in-memory digests one rename ago.
        return cls.open_mmap(path, verify="header")

    @classmethod
    def _fan_out_tiles(
        cls,
        partial: str,
        scheme: "DeclusteringScheme",
        dims: Tuple[int, ...],
        num_disks: int,
        dtype: np.dtype,
        shape: Tuple[int, ...],
        scheme_name: str,
        rows: int,
        workers: int,
        pending: List[int],
        shards: Dict[int, str],
        trusted: "Set[int]",
        shards_file: str,
        advance_phase2,
    ) -> None:
        """Phase 1: fan carry-free tile shards out across a spawn pool.

        Workers write their slabs straight into the shared ``.partial``
        mmap (``MAP_SHARED`` keeps pages coherent across processes) and
        return ``(start, digest)``; the parent records each commit in
        the shard log *after* the worker has flushed, so the log never
        claims data that is not durable.  Phase 2 overlaps: after every
        commit the contiguous prefix of finished shards is carry-swept
        immediately.

        A worker death (``BrokenProcessPool``) abandons the pool round;
        the remaining tiles are re-pooled up to ``_MAX_POOL_ROUNDS``
        times and any leftovers fall through to the caller's serial
        sweep, so the build always completes.
        """
        import multiprocessing
        from concurrent.futures import (
            ProcessPoolExecutor,
            as_completed,
        )
        from concurrent.futures.process import BrokenProcessPool

        registry = global_registry()
        try:
            ctx = multiprocessing.get_context("spawn")
        except ValueError:  # pragma: no cover - spawn always exists
            registry.inc("sat.build.serial_fallbacks")
            return
        rounds = 0
        while pending and rounds < _MAX_POOL_ROUNDS:
            rounds += 1
            if rounds > 1:
                registry.inc("sat.build.tile_retries", len(pending))
            procs: List = []
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(pending)),
                    mp_context=ctx,
                ) as pool:  # qa601: allow — tile ranges are disjoint;
                    # each worker writes only its own slab of the
                    # MAP_SHARED partial, and the parent only reads a
                    # slab after its future (post-flush) resolves.
                    futures = {
                        pool.submit(
                            _build_tile_shard,
                            partial,
                            scheme,
                            dims,
                            num_disks,
                            dtype.str,
                            start,
                            min(start + rows, dims[0]),
                        ): start
                        for start in pending
                    }
                    procs = list(
                        (getattr(pool, "_processes", None) or {}).values()
                    )
                    for future in as_completed(futures):
                        try:
                            start_done, digest = future.result()
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:  # qa502: allow — failed shard is counted and recomputed (re-pooled, then serially); never fatal
                            registry.inc("sat.build.shard_failures")
                            _LOG.warning(
                                "tile shard at row %d failed: %s",
                                futures[future],
                                exc,
                            )
                            continue
                        shards[start_done] = digest
                        trusted.add(start_done)
                        registry.inc("sat.build.shard_commits")
                        cls._write_shards(
                            shards_file,
                            dtype,
                            shape,
                            scheme_name,
                            rows,
                            shards,
                        )
                        advance_phase2()
            except BrokenProcessPool:
                registry.inc("sat.build.worker_deaths")
                _LOG.warning(
                    "a SAT build worker died; re-pooling the "
                    "remaining tiles (round %d/%d)",
                    rounds,
                    _MAX_POOL_ROUNDS,
                )
                cls._reap_processes(procs)
            except OSError as exc:
                # Pool machinery itself failed (no /dev/shm, fd
                # exhaustion): fall back to the serial sweep.
                registry.inc("sat.build.serial_fallbacks")
                _LOG.warning(
                    "process pool unavailable (%s); building "
                    "serially",
                    exc,
                )
                cls._reap_processes(procs)
                return
            pending = [s for s in pending if s not in shards]

    @staticmethod
    def _reap_processes(procs: List) -> None:
        """SIGKILL workers a broken pool may have left mid-bootstrap.

        When a pool breaks while siblings are still spawning, the
        executor's SIGTERM sweep can miss workers blocked in the spawn
        handshake — each holds dup'd write-ends of the others' prep
        pipes, so none ever sees EOF and they deadlock (and keep any
        inherited stdio pipes open, wedging harnesses that capture
        output).  SIGKILL is safe here: a shard is only trusted after
        its future resolves, which is after the worker's flush.
        """
        for proc in procs:
            try:
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5)
            except (OSError, ValueError, AttributeError):
                continue

    @classmethod
    def _checkpoint_tile(
        cls,
        journal_file: str,
        carry_file: str,
        carry: np.ndarray,
        dtype: np.dtype,
        shape: Tuple[int, ...],
        scheme_name: str,
        tile_rows: int,
        next_start: int,
        tile_starts: List[int],
        tile_digests: List[str],
    ) -> None:
        """Durably record one completed tile (carry first, then journal).

        Both files are replaced atomically; the journal's carry digest
        binds the pair, so a crash between the two renames leaves a
        journal that simply fails validation and resumes one tile
        earlier.
        """
        tmp = f"{carry_file}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as handle:
                np.save(handle, carry)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, carry_file)
        except BaseException:
            _remove_quietly(tmp)
            raise
        atomic_write_json(
            journal_file,
            {
                "schema": MANIFEST_SCHEMA_VERSION,
                "kind": SAT_JOURNAL_KIND,
                "dtype": dtype.str,
                "shape": list(shape),
                "scheme": scheme_name,
                "tile_rows": int(tile_rows),
                "next_start": int(next_start),
                "tile_starts": list(tile_starts),
                "tile_digests": list(tile_digests),
                "carry_sha256": sha256_hex(carry.data),
            },
        )

    @classmethod
    def open_mmap(
        cls,
        path: Union[str, os.PathLike],
        verify: Optional[str] = None,
    ) -> "SummedAreaTable":
        """Reopen a spilled table zero-copy (read-only memory map).

        The ``.npy`` header carries shape and dtype; the disk count and
        grid extents are recovered from the padded shape, so the path is
        a complete handle.

        The table is checked against its sidecar manifest *before* it is
        mapped — ``verify`` overrides ``REPRO_VERIFY`` (default
        ``header``; see :func:`repro.core.integrity.verify_sat`) — and a
        corrupt artifact raises
        :class:`~repro.core.exceptions.IntegrityError` rather than ever
        being loaded.  Tables without a manifest (pre-integrity spills,
        hand-made fixtures) still open at ``header``, logged and counted
        as unverified.
        """
        path = os.fspath(path)
        maybe_io_fault("sat.read", path)
        verify_sat(path, verify)
        array = np.load(path, mmap_mode="r")  # qa503: allow — this IS
        # the integrity-verified open; verify_sat ran one line up.
        if array.ndim < 2:
            raise AllocationError(
                f"{path} does not hold a stacked SAT "
                f"(ndim {array.ndim} < 2)"
            )
        num_disks = int(array.shape[0])
        dims = tuple(int(d) - 1 for d in array.shape[1:])
        if any(d <= 0 for d in dims):
            raise AllocationError(
                f"{path} has non-padded spatial extents {array.shape[1:]}"
            )
        return cls(array, Grid(dims), num_disks, path=path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dims(self) -> Tuple[int, ...]:
        """Grid extents (without padding)."""
        return self.grid.dims

    @property
    def ndim(self) -> int:
        return self.grid.ndim

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    @property
    def is_mmap(self) -> bool:
        """Whether the table is backed by a memory-mapped file."""
        return self.path is not None

    def nbytes(self) -> int:
        """Size of the table, in bytes (file size for mmap tables)."""
        return int(self.array.nbytes)

    def resident_nbytes(self) -> int:
        """Bytes guaranteed resident in RAM (0 for mmap-backed tables)."""
        if self.is_mmap:
            return 0
        extra = (
            self._disk_last.nbytes if self._disk_last is not None else 0
        )
        return int(self.array.nbytes) + int(extra)

    def disk_last(self) -> np.ndarray:
        """Disk-contiguous copy ``(d_1+1, ..., d_k+1, M)`` for native kernels.

        Each spatial corner's ``M`` per-disk counts become one contiguous
        (usually single-cache-line) vector — the layout the compiled
        backends vectorize over.  Built lazily, cached, and shared by
        every backend; only available for in-RAM tables (a transposed
        copy of a beyond-RAM table would defeat the point of spilling).

        Raises :class:`~repro.core.exceptions.LayoutError` for
        memory-mapped tables, naming the supported alternatives.
        """
        if self.is_mmap:
            raise LayoutError(
                "disk-last (disk-contiguous) layout is not available "
                "for memory-mapped SATs: this table is stored "
                "disk-first (one contiguous spatial plane per disk) "
                f"at {self.path!r}, and transposing it would "
                "materialize the whole beyond-RAM file in memory. "
                "Supported alternatives: the streamed file-order "
                "gather (SummedAreaTable.corner_counts, automatic for "
                "mapped tables) or the cnative streaming kernel "
                "(select the 'cnative' backend through the backend "
                "registry; batch queries on mapped tables dispatch to "
                "its stream_counts kernel)."
            )
        if self._disk_last is None:
            transposed = np.ascontiguousarray(
                np.moveaxis(self.array, 0, -1)
            )
            transposed.setflags(write=False)
            self._disk_last = transposed
        return self._disk_last

    # ------------------------------------------------------------------
    # Gathers
    # ------------------------------------------------------------------

    def spatial_element_strides(self) -> np.ndarray:
        """Row-major strides of the padded spatial box, in elements.

        Public because streaming backends (the ``cnative`` corner-gather
        kernel) linearize query corners into flat offsets with exactly
        these strides.
        """
        padded = self.array.shape[1:]
        strides = np.ones(len(padded), dtype=np.int64)
        for axis in range(len(padded) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * padded[axis + 1]
        return strides

    # Backwards-compatible private alias (pre-streaming-kernel name).
    _spatial_element_strides = spatial_element_strides

    def prefetch(self) -> bool:
        """Hint the kernel to read ahead on a mapped table (best effort).

        Issues ``madvise(MADV_WILLNEED)`` on the whole mapping so the
        page cache starts filling before the streamed gather touches it.
        Returns ``True`` when the hint was actually issued; in-RAM
        tables, closed tables, and platforms without ``madvise`` return
        ``False``.  Counted as ``backend.stream.prefetches``.
        """
        if not self.is_mmap or self.array is None:
            return False
        mmap_obj = getattr(self.array, "_mmap", None)
        if mmap_obj is None:
            return False
        try:
            mmap_obj.madvise(_mmap_module.MADV_WILLNEED)
        except (AttributeError, OSError, ValueError):
            # madvise may be missing (non-POSIX) or the mapping closed
            # under us; the hint is purely advisory either way.
            return False
        global_registry().inc("backend.stream.prefetches")
        return True

    def corner_counts(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Per-query per-disk counts ``(N, M)`` by 2^k-corner gather.

        ``lo``/``hi`` are clipped half-open bounds of shape ``(N, k)``
        (see ``ResponseTimeEngine``).  In-RAM tables use one fancy-index
        gather per corner; memory-mapped tables stream each corner's
        gather in ascending file order (sorted linear offsets) so page
        reads through the map stay sequential per disk plane.
        """
        num_queries, ndim = lo.shape
        if ndim != self.ndim:
            raise QueryError(
                f"{ndim}-d bounds do not match {self.ndim}-d SAT"
            )
        counts = np.zeros(
            (num_queries, self.num_disks), dtype=np.int64
        )
        if num_queries == 0:
            return counts
        if not self.is_mmap:
            for corner in range(1 << ndim):
                index: Tuple = (slice(None),)
                parity = 0
                for axis in range(ndim):
                    if (corner >> axis) & 1:
                        index += (lo[:, axis],)
                        parity ^= 1
                    else:
                        index += (hi[:, axis],)
                term = self.array[index]  # shape (M, N)
                if parity:
                    counts -= term.T
                else:
                    counts += term.T
            return counts
        self.prefetch()
        strides = self.spatial_element_strides()
        flat = self.array.reshape(self.num_disks, -1)
        for corner in range(1 << ndim):
            offsets = np.zeros(num_queries, dtype=np.int64)
            parity = 0
            for axis in range(ndim):
                if (corner >> axis) & 1:
                    offsets += lo[:, axis] * strides[axis]
                    parity ^= 1
                else:
                    offsets += hi[:, axis] * strides[axis]
            order = np.argsort(offsets, kind="stable")
            sorted_offsets = offsets[order]
            sign = -1 if parity else 1
            for disk in range(self.num_disks):
                values = flat[disk][sorted_offsets].astype(np.int64)
                counts[order, disk] += sign * values
        return counts

    def close(self) -> None:
        """Release a memory-mapped table's file mapping (idempotent).

        The numpy views become invalid after this; in-RAM tables are
        unaffected.  The backing file is *not* deleted — the path handle
        stays reopenable.
        """
        if self.is_mmap and self.array is not None:
            mmap_obj = getattr(self.array, "_mmap", None)
            self.array = None  # type: ignore[assignment]
            if mmap_obj is not None:
                mmap_obj.close()


def _build_tile_shard(
    partial: str,
    scheme: "DeclusteringScheme",
    dims: Tuple[int, ...],
    num_disks: int,
    dtype_str: str,
    start: int,
    stop: int,
) -> Tuple[int, str]:
    """Phase-1 pool worker: compute one carry-free tile shard.

    Runs in a spawned child process.  Writes the local (carry-free)
    slab into this tile's disjoint region of the shared ``.partial``
    memory map, flushes it to make the data durable, and returns
    ``(start, digest)`` so the parent can record the commit in the
    shard log — data first, log second, so the log never points at a
    torn slab.

    Module-level (not a closure) so the spawn pickler can import it.
    """
    chunk = SummedAreaTable._local_tile_chunk(
        scheme,
        Grid(dims),
        int(num_disks),
        np.dtype(dtype_str),
        int(start),
        int(stop),
    )
    out = np.lib.format.open_memmap(
        partial, mode="r+"
    )  # qa503: allow — staged partial owned by this build's parent;
    # the slab is digest-bound in the shard log and the finished table
    # is re-manifested after phase 2.
    try:
        out[:, start + 1 : stop + 1] = chunk
        out.flush()
    finally:
        del out
    digest = sha256_hex(chunk.data)
    # Injection point: fires *after* the flush but *before* the parent
    # learns of the commit — an ``exit``-mode plan is exactly "a worker
    # died mid-phase-1" and the parent must re-pool or recompute.
    maybe_io_fault("sat.write", f"shard@{start}")
    return int(start), digest
