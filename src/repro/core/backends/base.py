"""The kernel-backend interface: the three hot loops, swappable.

A :class:`KernelBackend` implements the library's hot kernels —

1. the batched 2^k-corner query gather behind
   :meth:`~repro.core.engine.ResponseTimeEngine.batch_response_times`,
2. the sliding-window shape sweep behind
   :func:`repro.core.cost.sliding_response_times`, and
3. the whole-grid allocation-table kernels the arithmetic schemes
   (``dm``/``gdm``/``fx``) build their ``disk_array`` from —

against a shared, backend-neutral data model: clipped half-open bounds
arrays and :class:`~repro.core.sat.SummedAreaTable` objects.  The numpy
implementation is the **bit-identical reference**; every other backend
is certified against it by the QA423 contract rule, so swapping
backends can only move time around, never results.

Backends declare availability at runtime (``numba`` needs the numba
package, ``cnative`` needs a C compiler); unavailable backends stay
registered so ``--backend``/``REPRO_BACKEND`` can fail loudly with the
reason instead of silently running something else.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.sat import SummedAreaTable

__all__ = ["KernelBackend"]


class KernelBackend(abc.ABC):
    """One implementation of the hot kernels.

    Attributes
    ----------
    name:
        Registry identifier (``"numpy"``, ``"numba"``, ``"cnative"``).
    """

    #: Registry identifier; subclasses must override.
    name: str = ""

    def available(self) -> bool:
        """Whether the backend can run in this process (deps, compiler)."""
        return self.unavailable_reason() is None

    def unavailable_reason(self) -> Optional[str]:
        """Why the backend cannot run, or None when it can."""
        return None

    # -- 1. batched rectangle queries ----------------------------------

    @abc.abstractmethod
    def batch_disk_counts(
        self, sat: SummedAreaTable, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Per-query per-disk bucket counts, shape ``(N, M)`` int64.

        ``lo``/``hi`` are the clipped half-open bounds ``(N, k)`` the
        engine computes; zero-extent boxes (fully clipped queries) must
        produce all-zero rows.
        """

    def batch_response_times(
        self, sat: SummedAreaTable, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Busiest-disk count per query, shape ``(N,)`` int64.

        Default: max-reduce :meth:`batch_disk_counts`; fused backends
        override to skip the ``(N, M)`` intermediate entirely.
        """
        counts = self.batch_disk_counts(sat, lo, hi)
        if counts.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        return counts.max(axis=1)

    # -- 2. sliding-window shape sweep ---------------------------------

    @abc.abstractmethod
    def window_response_times(
        self, sat: SummedAreaTable, shape: Sequence[int]
    ) -> np.ndarray:
        """RT of ``shape`` at every placement, from a prebuilt SAT.

        Output shape ``(d_1 - s_1 + 1, ..., d_k - s_k + 1)`` int64; the
        caller guarantees the shape fits the grid.
        """

    @abc.abstractmethod
    def sliding_response_times(
        self,
        table: np.ndarray,
        num_disks: int,
        shape: Sequence[int],
    ) -> np.ndarray:
        """RT of ``shape`` at every placement, from a raw allocation table.

        The one-shot (no engine) path of
        :func:`repro.core.cost.sliding_response_times`; the caller
        guarantees the shape fits.
        """

    # -- 3. whole-grid allocation-table kernels ------------------------

    @abc.abstractmethod
    def linear_mod_table(
        self,
        dims: Tuple[int, ...],
        coefficients: Tuple[int, ...],
        num_disks: int,
    ) -> np.ndarray:
        """``(sum_j c_j · i_j) mod M`` over every bucket, int64.

        The DM/GDM family's whole-grid kernel; the modulo follows
        python semantics (result in ``[0, M)`` for negative
        coefficients too).
        """

    @abc.abstractmethod
    def xor_mod_table(
        self, dims: Tuple[int, ...], num_disks: int
    ) -> np.ndarray:
        """``(i_1 XOR ... XOR i_k) mod M`` over every bucket, int64 (FX)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
