"""``cnative``: the hot kernels as a tiny C extension, built on demand.

The C source below is compiled once per machine (``cc -O3`` into a
shared library cached under ``REPRO_NATIVE_CACHE`` or the system temp
dir, keyed by a hash of the source) and loaded through ``ctypes`` — no
build step, no new dependency beyond a C compiler.  When no compiler is
present the backend reports itself unavailable and selection fails
loudly; nothing silently falls back.

Why it wins: the numpy batch path runs one fancy-index gather per SAT
corner and materializes an ``(M, N)`` intermediate per corner plus the
``(N, M)`` count matrix.  The C kernel consumes the **disk-last** SAT
layout (:meth:`repro.core.sat.SummedAreaTable.disk_last`), where one
corner's ``M`` per-disk counts are a single contiguous vector — for the
paper-scale ``M = 16`` exactly one cache line — and fuses the 2^k-corner
accumulation with the max-over-disks reduction, so a query is answered
in ``2^k`` cache-line reads with no intermediates at all.  Memory-mapped
(beyond-RAM) SATs have no disk-last copy by design; batch queries on
those dispatch to the ``stream_counts`` kernel instead, which walks the
mapped file's disk-first planes in ascending file order over pre-sorted
corner offsets (madvise/willneed-prefetched) — the numpy streamed
gather remains only as the no-compiler fallback.

Bit-identity with the numpy reference is certified by QA423 and the
backend property tests; the speedup floor is gated by
``scripts/check_bench_gate.py`` (BENCH_native.json).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.backends.base import KernelBackend
from repro.core.backends.numpy_backend import NumpyBackend
from repro.core.exceptions import IntegrityError
from repro.core.integrity import (
    library_digest_path,
    verify_library,
    write_library_digest,
)
from repro.core.sat import SummedAreaTable, sat_dtype
from repro.faults.io import maybe_io_fault
from repro.obs.log import get_logger
from repro.obs.metrics import global_registry

_LOG = get_logger("repro.core.backends.native")

__all__ = ["CNativeBackend"]

#: Hard cap on query/grid arity the C kernels accept (2^k corner tables
#: are stack-allocated).
_MAX_NDIM = 16

_KERNEL_TEMPLATE = r"""
#include <stdint.h>

/* Batched rectangle queries against a disk-last SAT
   (spatial-major, disk id fastest).  strides are in ELEMENTS and
   already include the factor M, so satT[off + m] is disk m's count at
   the spatial corner `off`. */

void batch_rt_{suffix}(
    const {ctype} *satT, const int64_t *strides,
    int32_t num_disks, int32_t ndim,
    const int64_t *lo, const int64_t *hi, int64_t num_queries,
    int64_t *out)
{{
    int32_t ncorners = 1 << ndim;
    int64_t offs[1 << {max_ndim}];
    int32_t signs[1 << {max_ndim}];
    int64_t acc[{max_disks}];
    for (int64_t q = 0; q < num_queries; q++) {{
        const int64_t *qlo = lo + (size_t)q * ndim;
        const int64_t *qhi = hi + (size_t)q * ndim;
        for (int32_t c = 0; c < ncorners; c++) {{
            int64_t off = 0;
            int32_t parity = 0;
            for (int32_t a = 0; a < ndim; a++) {{
                if ((c >> a) & 1) {{
                    off += qlo[a] * strides[a];
                    parity ^= 1;
                }} else {{
                    off += qhi[a] * strides[a];
                }}
            }}
            offs[c] = off;
            signs[c] = parity ? -1 : 1;
        }}
        for (int32_t m = 0; m < num_disks; m++) acc[m] = 0;
        for (int32_t c = 0; c < ncorners; c++) {{
            const {ctype} *v = satT + offs[c];
            if (signs[c] < 0) {{
                for (int32_t m = 0; m < num_disks; m++)
                    acc[m] -= (int64_t)v[m];
            }} else {{
                for (int32_t m = 0; m < num_disks; m++)
                    acc[m] += (int64_t)v[m];
            }}
        }}
        int64_t best = acc[0];
        for (int32_t m = 1; m < num_disks; m++)
            if (acc[m] > best) best = acc[m];
        out[q] = best;
    }}
}}

void batch_counts_{suffix}(
    const {ctype} *satT, const int64_t *strides,
    int32_t num_disks, int32_t ndim,
    const int64_t *lo, const int64_t *hi, int64_t num_queries,
    int64_t *out)
{{
    int32_t ncorners = 1 << ndim;
    for (int64_t q = 0; q < num_queries; q++) {{
        const int64_t *qlo = lo + (size_t)q * ndim;
        const int64_t *qhi = hi + (size_t)q * ndim;
        int64_t *row = out + (size_t)q * num_disks;
        for (int32_t m = 0; m < num_disks; m++) row[m] = 0;
        for (int32_t c = 0; c < ncorners; c++) {{
            int64_t off = 0;
            int32_t parity = 0;
            for (int32_t a = 0; a < ndim; a++) {{
                if ((c >> a) & 1) {{
                    off += qlo[a] * strides[a];
                    parity ^= 1;
                }} else {{
                    off += qhi[a] * strides[a];
                }}
            }}
            const {ctype} *v = satT + off;
            if (parity) {{
                for (int32_t m = 0; m < num_disks; m++)
                    row[m] -= (int64_t)v[m];
            }} else {{
                for (int32_t m = 0; m < num_disks; m++)
                    row[m] += (int64_t)v[m];
            }}
        }}
    }}
}}

/* Sliding shape sweep: RT at every placement origin, fused max over
   disks, from the same disk-last SAT.  Corner offsets relative to the
   origin are constant for a fixed shape, so each origin costs 2^k
   contiguous M-vector reads. */

/* Streaming corner gather for memory-mapped (disk-FIRST) SATs.

   The spilled file stores one contiguous spatial plane per disk, so
   the walk is ordered for page locality: outer loop over disk planes
   (ascending file position), inner loop over corners, queries visited
   in `perm` order — the caller sorts them once by base-corner offset,
   which keeps every corner's plane reads mostly ascending without
   paying a per-corner sort.  Corner offsets are folded in here (a few
   integer mul-adds per gathered element, nothing next to the memory
   access) so the caller builds no per-corner temporaries at all.
   Accumulation is scatter by original query index, so results are
   independent of the visit order — exact integer sums either way.  No
   stack-sized tables: the stream path has no disk cap. */

void stream_counts_{suffix}(
    const {ctype} *sat, int64_t plane_elems,
    int32_t num_disks, int32_t ndim,
    const int64_t *strides,
    const int64_t *lo, const int64_t *hi,
    const int64_t *perm, int64_t num_queries,
    int64_t *scratch, int64_t *out)
{{
    int32_t ncorners = 1 << ndim;
    int64_t *offs = scratch;                /* num_queries entries */
    int64_t *rows = scratch + num_queries;  /* num_queries entries */
    for (int32_t c = 0; c < ncorners; c++) {{
        int32_t parity = 0;
        for (int32_t a = 0; a < ndim; a++)
            if ((c >> a) & 1) parity ^= 1;
        for (int64_t i = 0; i < num_queries; i++) {{
            int64_t q = perm[i];
            const int64_t *qlo = lo + (size_t)q * ndim;
            const int64_t *qhi = hi + (size_t)q * ndim;
            int64_t off = 0;
            for (int32_t a = 0; a < ndim; a++)
                off += (((c >> a) & 1) ? qlo[a] : qhi[a])
                    * strides[a];
            offs[i] = off;
            rows[i] = q * num_disks;
        }}
        for (int32_t m = 0; m < num_disks; m++) {{
            const {ctype} *plane = sat + (size_t)m * plane_elems;
            /* The gathers are independent L2/L3 misses; prefetching a
               couple dozen iterations ahead overlaps them instead of
               serializing on each load. */
            if (parity) {{
                for (int64_t i = 0; i < num_queries; i++) {{
                    if (i + 24 < num_queries)
                        __builtin_prefetch(
                            plane + offs[i + 24], 0, 1);
                    out[rows[i] + m] -= (int64_t)plane[offs[i]];
                }}
            }} else {{
                for (int64_t i = 0; i < num_queries; i++) {{
                    if (i + 24 < num_queries)
                        __builtin_prefetch(
                            plane + offs[i + 24], 0, 1);
                    out[rows[i] + m] += (int64_t)plane[offs[i]];
                }}
            }}
        }}
    }}
}}

void window_rt_{suffix}(
    const {ctype} *satT, const int64_t *strides,
    int32_t num_disks, int32_t ndim,
    const int64_t *shape, const int64_t *out_dims,
    int64_t *out)
{{
    int32_t ncorners = 1 << ndim;
    int64_t deltas[1 << {max_ndim}];
    int32_t signs[1 << {max_ndim}];
    int64_t coords[{max_ndim}];
    int64_t acc[{max_disks}];
    int64_t total = 1;
    for (int32_t a = 0; a < ndim; a++) {{
        coords[a] = 0;
        total *= out_dims[a];
    }}
    for (int32_t c = 0; c < ncorners; c++) {{
        int64_t delta = 0;
        int32_t parity = 0;
        for (int32_t a = 0; a < ndim; a++) {{
            if ((c >> a) & 1) parity ^= 1;     /* low corner: origin */
            else delta += shape[a] * strides[a]; /* high: origin + s */
        }}
        deltas[c] = delta;
        signs[c] = parity ? -1 : 1;
    }}
    for (int64_t i = 0; i < total; i++) {{
        int64_t base = 0;
        for (int32_t a = 0; a < ndim; a++)
            base += coords[a] * strides[a];
        for (int32_t m = 0; m < num_disks; m++) acc[m] = 0;
        for (int32_t c = 0; c < ncorners; c++) {{
            const {ctype} *v = satT + base + deltas[c];
            if (signs[c] < 0) {{
                for (int32_t m = 0; m < num_disks; m++)
                    acc[m] -= (int64_t)v[m];
            }} else {{
                for (int32_t m = 0; m < num_disks; m++)
                    acc[m] += (int64_t)v[m];
            }}
        }}
        int64_t best = acc[0];
        for (int32_t m = 1; m < num_disks; m++)
            if (acc[m] > best) best = acc[m];
        out[i] = best;
        for (int32_t a = ndim - 1; a >= 0; a--) {{
            if (++coords[a] < out_dims[a]) break;
            coords[a] = 0;
        }}
    }}
}}
"""

_TABLE_KERNELS = r"""
/* Whole-grid allocation-table kernels (row-major, python modulo). */

void linear_mod_table(
    const int64_t *dims, const int64_t *coeffs,
    int32_t ndim, int64_t num_disks, int64_t *out)
{
    int64_t coords[64];
    int64_t total = 1;
    for (int32_t a = 0; a < ndim; a++) {
        coords[a] = 0;
        total *= dims[a];
    }
    for (int64_t i = 0; i < total; i++) {
        int64_t value = 0;
        for (int32_t a = 0; a < ndim; a++)
            value += coeffs[a] * coords[a];
        int64_t disk = value % num_disks;
        if (disk < 0) disk += num_disks;
        out[i] = disk;
        for (int32_t a = ndim - 1; a >= 0; a--) {
            if (++coords[a] < dims[a]) break;
            coords[a] = 0;
        }
    }
}

void xor_mod_table(
    const int64_t *dims, int32_t ndim, int64_t num_disks, int64_t *out)
{
    int64_t coords[64];
    int64_t total = 1;
    for (int32_t a = 0; a < ndim; a++) {
        coords[a] = 0;
        total *= dims[a];
    }
    for (int64_t i = 0; i < total; i++) {
        int64_t value = 0;
        for (int32_t a = 0; a < ndim; a++)
            value ^= coords[a];
        out[i] = value % num_disks;
        for (int32_t a = ndim - 1; a >= 0; a--) {
            if (++coords[a] < dims[a]) break;
            coords[a] = 0;
        }
    }
}
"""

#: Disk counts beyond this fall back to numpy (the accumulator is
#: stack-allocated in the C kernels).
_MAX_DISKS = 4096


def _kernel_source() -> str:
    parts = ["#include <stddef.h>\n"]
    for suffix, ctype in (("i32", "int32_t"), ("i64", "int64_t")):
        parts.append(
            _KERNEL_TEMPLATE.format(
                suffix=suffix,
                ctype=ctype,
                max_ndim=_MAX_NDIM,
                max_disks=_MAX_DISKS,
            )
        )
    parts.append(_TABLE_KERNELS)
    return "\n".join(parts)


def _find_compiler() -> Optional[str]:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_NATIVE_CACHE")
    if configured:
        return configured
    return os.path.join(
        tempfile.gettempdir(), f"repro-native-{os.getuid()}"
    )


def _remove_quietly(*paths: str) -> None:
    for path in paths:
        try:
            os.unlink(path)
        except OSError:
            pass


def _compile_library(source: str) -> str:
    """Compile the kernel source into a cached shared library; return path.

    A cache hit is verified against its digest sidecar first
    (:func:`repro.core.integrity.verify_library`, depth from
    ``REPRO_VERIFY``); a corrupt cached library is evicted and
    recompiled rather than ``CDLL``-loaded.  Raises
    ``subprocess.CalledProcessError``/``OSError`` on compile failure —
    the backend turns those into an unavailability reason — and a
    failed compile leaves nothing behind in the cache directory.
    """
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    directory = _cache_dir()
    os.makedirs(directory, exist_ok=True)
    lib_path = os.path.join(directory, f"reprokern-{digest}.so")
    maybe_io_fault("compile", lib_path)
    if os.path.exists(lib_path):
        try:
            verify_library(lib_path)
            return lib_path
        except IntegrityError as exc:
            _LOG.warning(
                "cached kernel library failed verification, "
                "recompiling: %s",
                exc,
            )
            global_registry().inc("integrity.so_rebuilds")
            _remove_quietly(lib_path, library_digest_path(lib_path))
    compiler = _find_compiler()
    if compiler is None:
        raise OSError("no C compiler (cc/gcc/clang) on PATH")
    src_path = os.path.join(directory, f"reprokern-{digest}.c")
    tmp_path = f"{lib_path}.{os.getpid()}.tmp"
    compiled = False
    try:
        with open(src_path, "w") as handle:
            handle.write(source)
        base_cmd = [compiler, "-O3", "-fPIC", "-shared", src_path,
                    "-o", tmp_path]
        try:
            subprocess.run(
                base_cmd[:1] + ["-march=native"] + base_cmd[1:],
                check=True,
                capture_output=True,
            )
        except subprocess.CalledProcessError:
            # Portable fallback: some toolchains reject -march=native.
            subprocess.run(base_cmd, check=True, capture_output=True)
        os.replace(tmp_path, lib_path)  # atomic: concurrent builds race
        compiled = True
    finally:
        if not compiled:
            # Both compiles failed (or the write itself did): leave no
            # orphaned source/temp artifacts in the shared cache dir.
            _remove_quietly(src_path, tmp_path)
    write_library_digest(lib_path)
    return lib_path


_PTR_I64 = ctypes.POINTER(ctypes.c_int64)


class CNativeBackend(KernelBackend):
    """Fused C kernels over the disk-last SAT layout (see module docs)."""

    name = "cnative"

    def __init__(self) -> None:
        self._lib: Optional[ctypes.CDLL] = None
        self._load_error: Optional[str] = None
        self._reference = NumpyBackend()

    # -- loading -------------------------------------------------------

    def _library(self) -> Optional[ctypes.CDLL]:
        if self._lib is None and self._load_error is None:
            try:
                lib_path = _compile_library(_kernel_source())
                # _compile_library digest-verifies cache hits and
                # sidecars fresh compiles; this is the verified load.
                self._lib = ctypes.CDLL(lib_path)  # qa503: allow — digest-verified by _compile_library
            except Exception as exc:
                detail = ""
                stderr = getattr(exc, "stderr", None)
                if stderr:
                    detail = f": {stderr.decode(errors='replace')[:200]}"
                self._load_error = (
                    f"C kernel build failed ({type(exc).__name__}: "
                    f"{exc}{detail})"
                )
                # Every kernel call now takes the numpy reference path;
                # counted so chaos runs can assert the degraded mode.
                global_registry().inc("backend.reference_fallbacks")
                _LOG.warning(
                    "cnative unavailable, serving from the numpy "
                    "reference: %s",
                    self._load_error,
                )
        return self._lib

    def unavailable_reason(self) -> Optional[str]:
        self._library()
        return self._load_error

    # -- shared plumbing -----------------------------------------------

    def _sat_call_args(self, sat: SummedAreaTable):
        """(fn-suffix, satT pointer, element strides) for a SAT, or None.

        Returns None when the SAT has no disk-last layout (mmap) or the
        configuration exceeds the compiled kernels' static bounds — the
        caller then delegates to the numpy reference.
        """
        if sat.is_mmap:
            return None
        if sat.ndim > _MAX_NDIM or sat.num_disks > _MAX_DISKS:
            return None
        disk_last = sat.disk_last()
        if disk_last.dtype == np.int32:
            suffix, ctype = "i32", ctypes.c_int32
        elif disk_last.dtype == np.int64:
            suffix, ctype = "i64", ctypes.c_int64
        else:
            return None
        itemsize = disk_last.itemsize
        strides = np.array(
            [s // itemsize for s in disk_last.strides[:-1]],
            dtype=np.int64,
        )
        pointer = disk_last.ctypes.data_as(ctypes.POINTER(ctype))
        return suffix, pointer, strides

    @staticmethod
    def _bounds_c(lo: np.ndarray, hi: np.ndarray):
        lo = np.ascontiguousarray(lo, dtype=np.int64)
        hi = np.ascontiguousarray(hi, dtype=np.int64)
        return lo, hi

    # -- streaming gather over memory-mapped tables --------------------

    @staticmethod
    def _stream_suffix(sat: SummedAreaTable) -> Optional[str]:
        """Kernel dtype suffix for a mapped table, or None if unusable.

        The stream kernel has no stack-sized tables, so there is no
        disk-count cap; only the 2^k corner enumeration bounds ndim.
        """
        if not sat.is_mmap or sat.array is None:
            return None
        if sat.ndim > _MAX_NDIM:
            return None
        if sat.dtype == np.int32:
            return "i32"
        if sat.dtype == np.int64:
            return "i64"
        return None

    def _stream_counts(
        self,
        sat: SummedAreaTable,
        lo: np.ndarray,
        hi: np.ndarray,
        library: ctypes.CDLL,
        suffix: str,
    ) -> np.ndarray:
        """Per-query per-disk counts ``(N, M)`` via the stream kernel.

        Queries are sorted once by their base (all-``hi``) corner's
        flat offset — the other corners' offsets are strongly
        correlated, so one permutation keeps every corner's plane
        reads mostly ascending at an eighth of a per-corner sort's
        cost.  The C kernel folds the corner offset arithmetic in and
        walks disk planes in file order accumulating
        ``sign * plane[offset]`` into each query's row.  Bit-identical
        to the numpy streamed gather and the in-RAM fancy-index path —
        all three sum the same exact integers.
        """
        num_queries, ndim = lo.shape
        lo, hi = self._bounds_c(lo, hi)
        strides = sat.spatial_element_strides()
        base_offsets = hi @ strides
        perm = np.ascontiguousarray(
            np.argsort(base_offsets, kind="stable").astype(np.int64)
        )
        sat.prefetch()
        out = np.zeros((num_queries, sat.num_disks), dtype=np.int64)
        ctype = (
            ctypes.c_int32 if suffix == "i32" else ctypes.c_int64
        )
        plane_elems = int(np.prod(sat.array.shape[1:]))
        strides = np.ascontiguousarray(strides, dtype=np.int64)
        scratch = np.empty(2 * num_queries, dtype=np.int64)
        getattr(library, f"stream_counts_{suffix}")(
            sat.array.ctypes.data_as(ctypes.POINTER(ctype)),
            ctypes.c_int64(plane_elems),
            ctypes.c_int32(sat.num_disks),
            ctypes.c_int32(ndim),
            strides.ctypes.data_as(_PTR_I64),
            lo.ctypes.data_as(_PTR_I64),
            hi.ctypes.data_as(_PTR_I64),
            perm.ctypes.data_as(_PTR_I64),
            ctypes.c_int64(num_queries),
            scratch.ctypes.data_as(_PTR_I64),
            out.ctypes.data_as(_PTR_I64),
        )
        registry = global_registry()
        registry.inc("backend.stream.batches")
        registry.inc("backend.stream.queries", num_queries)
        return out

    # -- batched rectangle queries -------------------------------------

    def batch_response_times(
        self, sat: SummedAreaTable, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        prepared = self._sat_call_args(sat)
        library = self._library()
        if prepared is None or library is None:
            suffix = self._stream_suffix(sat)
            if library is not None and suffix is not None:
                if lo.shape[0] == 0:
                    return np.zeros(0, dtype=np.int64)
                counts = self._stream_counts(
                    sat, lo, hi, library, suffix
                )
                return counts.max(axis=1)
            return self._reference.batch_response_times(sat, lo, hi)
        num_queries = lo.shape[0]
        out = np.zeros(num_queries, dtype=np.int64)
        if num_queries == 0:
            return out
        suffix, pointer, strides = prepared
        lo, hi = self._bounds_c(lo, hi)
        getattr(library, f"batch_rt_{suffix}")(
            pointer,
            strides.ctypes.data_as(_PTR_I64),
            ctypes.c_int32(sat.num_disks),
            ctypes.c_int32(sat.ndim),
            lo.ctypes.data_as(_PTR_I64),
            hi.ctypes.data_as(_PTR_I64),
            ctypes.c_int64(num_queries),
            out.ctypes.data_as(_PTR_I64),
        )
        return out

    def batch_disk_counts(
        self, sat: SummedAreaTable, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        prepared = self._sat_call_args(sat)
        library = self._library()
        if prepared is None or library is None:
            suffix = self._stream_suffix(sat)
            if library is not None and suffix is not None:
                if lo.shape[0] == 0:
                    return np.zeros(
                        (0, sat.num_disks), dtype=np.int64
                    )
                return self._stream_counts(
                    sat, lo, hi, library, suffix
                )
            return self._reference.batch_disk_counts(sat, lo, hi)
        num_queries = lo.shape[0]
        out = np.zeros((num_queries, sat.num_disks), dtype=np.int64)
        if num_queries == 0:
            return out
        suffix, pointer, strides = prepared
        lo, hi = self._bounds_c(lo, hi)
        getattr(library, f"batch_counts_{suffix}")(
            pointer,
            strides.ctypes.data_as(_PTR_I64),
            ctypes.c_int32(sat.num_disks),
            ctypes.c_int32(sat.ndim),
            lo.ctypes.data_as(_PTR_I64),
            hi.ctypes.data_as(_PTR_I64),
            ctypes.c_int64(num_queries),
            out.ctypes.data_as(_PTR_I64),
        )
        return out

    # -- sliding-window shape sweep ------------------------------------

    def window_response_times(
        self, sat: SummedAreaTable, shape: Sequence[int]
    ) -> np.ndarray:
        prepared = self._sat_call_args(sat)
        library = self._library()
        if prepared is None or library is None:
            return self._reference.window_response_times(sat, shape)
        shape = tuple(int(s) for s in shape)
        out_dims = np.array(
            [d - s + 1 for s, d in zip(shape, sat.dims)],
            dtype=np.int64,
        )
        out = np.zeros(int(out_dims.prod()), dtype=np.int64)
        suffix, pointer, strides = prepared
        shape_arr = np.array(shape, dtype=np.int64)
        getattr(library, f"window_rt_{suffix}")(
            pointer,
            strides.ctypes.data_as(_PTR_I64),
            ctypes.c_int32(sat.num_disks),
            ctypes.c_int32(sat.ndim),
            shape_arr.ctypes.data_as(_PTR_I64),
            out_dims.ctypes.data_as(_PTR_I64),
            out.ctypes.data_as(_PTR_I64),
        )
        return out.reshape(tuple(int(d) for d in out_dims))

    def sliding_response_times(
        self,
        table: np.ndarray,
        num_disks: int,
        shape: Sequence[int],
    ) -> np.ndarray:
        # One-shot path: build the SAT (numpy cumsums — same O(M·buckets)
        # cost as a single legacy pass), then run the fused C sweep.
        library = self._library()
        if (
            library is None
            or table.ndim > _MAX_NDIM
            or num_disks > _MAX_DISKS
        ):
            return self._reference.sliding_response_times(
                table, num_disks, shape
            )
        from repro.core.allocation import DiskAllocation
        from repro.core.grid import Grid

        allocation = DiskAllocation(
            Grid(table.shape), num_disks, table
        )
        sat = SummedAreaTable.build(allocation)
        return self.window_response_times(sat, shape)

    # -- whole-grid allocation-table kernels ---------------------------

    def linear_mod_table(
        self,
        dims: Tuple[int, ...],
        coefficients: Tuple[int, ...],
        num_disks: int,
    ) -> np.ndarray:
        library = self._library()
        if library is None or len(dims) > 64:
            return self._reference.linear_mod_table(
                dims, coefficients, num_disks
            )
        dims_arr = np.array(dims, dtype=np.int64)
        coeffs_arr = np.array(coefficients, dtype=np.int64)
        out = np.zeros(int(dims_arr.prod()), dtype=np.int64)
        library.linear_mod_table(
            dims_arr.ctypes.data_as(_PTR_I64),
            coeffs_arr.ctypes.data_as(_PTR_I64),
            ctypes.c_int32(len(dims)),
            ctypes.c_int64(num_disks),
            out.ctypes.data_as(_PTR_I64),
        )
        return out.reshape(dims)

    def xor_mod_table(
        self, dims: Tuple[int, ...], num_disks: int
    ) -> np.ndarray:
        library = self._library()
        if library is None or len(dims) > 64:
            return self._reference.xor_mod_table(dims, num_disks)
        dims_arr = np.array(dims, dtype=np.int64)
        out = np.zeros(int(dims_arr.prod()), dtype=np.int64)
        library.xor_mod_table(
            dims_arr.ctypes.data_as(_PTR_I64),
            ctypes.c_int32(len(dims)),
            ctypes.c_int64(num_disks),
            out.ctypes.data_as(_PTR_I64),
        )
        return out.reshape(dims)
