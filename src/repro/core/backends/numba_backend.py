"""``numba``: the hot kernels as JIT-compiled python, when numba exists.

Mirrors the ``cnative`` C kernels over the same disk-last SAT layout;
the JIT happens lazily on first use so importing this module (and
registering the backend) costs nothing.  When the numba package is
missing the backend reports itself unavailable with the import error —
the container image does not ship numba, so this path is exercised by
the optional ``native`` CI leg (``pip install -e '.[dev,native]'``) and
skipped gracefully everywhere else.

Bit-identity with the numpy reference is certified by QA423 and the
backend property tests.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.backends.base import KernelBackend
from repro.core.backends.numpy_backend import NumpyBackend
from repro.core.sat import SummedAreaTable

__all__ = ["NumbaBackend"]

try:  # pragma: no cover - container image ships without numba
    import numba  # noqa: F401

    _NUMBA_ERROR: Optional[str] = None
except ImportError as _exc:  # pragma: no cover - exercised in CI leg
    _NUMBA_ERROR = f"numba is not installed ({_exc})"

_JIT_CACHE: dict = {}


def _kernels():  # pragma: no cover - requires numba
    """Compile (once) and return the jitted kernel trio."""
    if _JIT_CACHE:
        return _JIT_CACHE
    from numba import njit

    @njit(cache=True)
    def batch_rt(satT, strides, num_disks, lo, hi, out):
        # qa701: allow — numba-jitted scalar kernel, loops compile to
        # native code
        num_queries = lo.shape[0]
        ndim = lo.shape[1]
        ncorners = 1 << ndim
        acc = np.zeros(num_disks, dtype=np.int64)
        for q in range(num_queries):
            acc[:] = 0
            for corner in range(ncorners):
                off = 0
                parity = 0
                for axis in range(ndim):
                    if (corner >> axis) & 1:
                        off += lo[q, axis] * strides[axis]
                        parity ^= 1
                    else:
                        off += hi[q, axis] * strides[axis]
                if parity:
                    for m in range(num_disks):
                        acc[m] -= satT[off + m]
                else:
                    for m in range(num_disks):
                        acc[m] += satT[off + m]
            best = acc[0]
            for m in range(1, num_disks):
                if acc[m] > best:
                    best = acc[m]
            out[q] = best

    @njit(cache=True)
    def batch_counts(satT, strides, num_disks, lo, hi, out):
        # qa701: allow — numba-jitted scalar kernel
        num_queries = lo.shape[0]
        ndim = lo.shape[1]
        ncorners = 1 << ndim
        for q in range(num_queries):
            for corner in range(ncorners):
                off = 0
                parity = 0
                for axis in range(ndim):
                    if (corner >> axis) & 1:
                        off += lo[q, axis] * strides[axis]
                        parity ^= 1
                    else:
                        off += hi[q, axis] * strides[axis]
                if parity:
                    for m in range(num_disks):
                        out[q, m] -= satT[off + m]
                else:
                    for m in range(num_disks):
                        out[q, m] += satT[off + m]

    @njit(cache=True)
    def window_rt(satT, strides, num_disks, shape, out_dims, out):
        # qa701: allow — numba-jitted scalar kernel
        ndim = shape.shape[0]
        ncorners = 1 << ndim
        deltas = np.zeros(ncorners, dtype=np.int64)
        signs = np.zeros(ncorners, dtype=np.int64)
        for corner in range(ncorners):
            delta = 0
            parity = 0
            for axis in range(ndim):
                if (corner >> axis) & 1:
                    parity ^= 1
                else:
                    delta += shape[axis] * strides[axis]
            deltas[corner] = delta
            signs[corner] = -1 if parity else 1
        coords = np.zeros(ndim, dtype=np.int64)
        acc = np.zeros(num_disks, dtype=np.int64)
        total = 1
        for axis in range(ndim):
            total *= out_dims[axis]
        for i in range(total):
            base = 0
            for axis in range(ndim):
                base += coords[axis] * strides[axis]
            acc[:] = 0
            for corner in range(ncorners):
                off = base + deltas[corner]
                if signs[corner] < 0:
                    for m in range(num_disks):
                        acc[m] -= satT[off + m]
                else:
                    for m in range(num_disks):
                        acc[m] += satT[off + m]
            best = acc[0]
            for m in range(1, num_disks):
                if acc[m] > best:
                    best = acc[m]
            out[i] = best
            for axis in range(ndim - 1, -1, -1):
                coords[axis] += 1
                if coords[axis] < out_dims[axis]:
                    break
                coords[axis] = 0

    _JIT_CACHE["batch_rt"] = batch_rt
    _JIT_CACHE["batch_counts"] = batch_counts
    _JIT_CACHE["window_rt"] = window_rt
    return _JIT_CACHE


class NumbaBackend(KernelBackend):
    """JIT-compiled kernels over the disk-last SAT layout."""

    name = "numba"

    def __init__(self) -> None:
        self._reference = NumpyBackend()

    def unavailable_reason(self) -> Optional[str]:
        return _NUMBA_ERROR

    @staticmethod
    def _flat_sat(sat: SummedAreaTable):
        """(flat disk-last view, element strides) or None for mmap SATs."""
        if sat.is_mmap:
            return None
        disk_last = sat.disk_last()
        itemsize = disk_last.itemsize
        strides = np.array(
            [s // itemsize for s in disk_last.strides[:-1]],
            dtype=np.int64,
        )
        return disk_last.reshape(-1), strides

    def batch_response_times(
        self, sat: SummedAreaTable, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - requires numba
        prepared = self._flat_sat(sat)
        if prepared is None:
            return self._reference.batch_response_times(sat, lo, hi)
        flat, strides = prepared
        out = np.zeros(lo.shape[0], dtype=np.int64)
        if out.shape[0]:
            _kernels()["batch_rt"](
                flat,
                strides,
                sat.num_disks,
                np.ascontiguousarray(lo, dtype=np.int64),
                np.ascontiguousarray(hi, dtype=np.int64),
                out,
            )
        return out

    def batch_disk_counts(
        self, sat: SummedAreaTable, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - requires numba
        prepared = self._flat_sat(sat)
        if prepared is None:
            return self._reference.batch_disk_counts(sat, lo, hi)
        flat, strides = prepared
        out = np.zeros((lo.shape[0], sat.num_disks), dtype=np.int64)
        if out.shape[0]:
            _kernels()["batch_counts"](
                flat,
                strides,
                sat.num_disks,
                np.ascontiguousarray(lo, dtype=np.int64),
                np.ascontiguousarray(hi, dtype=np.int64),
                out,
            )
        return out

    def window_response_times(
        self, sat: SummedAreaTable, shape: Sequence[int]
    ) -> np.ndarray:  # pragma: no cover - requires numba
        prepared = self._flat_sat(sat)
        if prepared is None:
            return self._reference.window_response_times(sat, shape)
        flat, strides = prepared
        shape_arr = np.array(
            [int(s) for s in shape], dtype=np.int64
        )
        out_dims = np.array(
            [d - s + 1 for s, d in zip(shape_arr, sat.dims)],
            dtype=np.int64,
        )
        out = np.zeros(int(out_dims.prod()), dtype=np.int64)
        _kernels()["window_rt"](
            flat, strides, sat.num_disks, shape_arr, out_dims, out
        )
        return out.reshape(tuple(int(d) for d in out_dims))

    def sliding_response_times(
        self,
        table: np.ndarray,
        num_disks: int,
        shape: Sequence[int],
    ) -> np.ndarray:  # pragma: no cover - requires numba
        from repro.core.allocation import DiskAllocation
        from repro.core.grid import Grid

        allocation = DiskAllocation(
            Grid(table.shape), num_disks, table
        )
        sat = SummedAreaTable.build(allocation)
        return self.window_response_times(sat, shape)

    # Table kernels: the numpy versions are already single vectorized
    # expressions; JIT-ing them buys nothing, so delegate.

    def linear_mod_table(
        self,
        dims: Tuple[int, ...],
        coefficients: Tuple[int, ...],
        num_disks: int,
    ) -> np.ndarray:
        return self._reference.linear_mod_table(
            dims, coefficients, num_disks
        )

    def xor_mod_table(
        self, dims: Tuple[int, ...], num_disks: int
    ) -> np.ndarray:
        return self._reference.xor_mod_table(dims, num_disks)
