"""The numpy kernel backend — always available, the bit-identical reference.

Every kernel here is the exact vectorized implementation the library
shipped before backends existed (moved out of ``core/engine.py``,
``core/cost.py`` and the scheme modules); the compiled backends are
certified against it by QA423, and the scalar per-query/per-bucket
functions remain the reference oracle above *this* backend (QA420–422,
QA430/431).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.backends.base import KernelBackend
from repro.core.sat import SummedAreaTable

__all__ = ["NumpyBackend", "sliding_window_sums"]


def sliding_window_sums(
    indicator: np.ndarray, shape: Sequence[int]
) -> np.ndarray:
    """Sum of ``indicator`` over every axis-aligned window of ``shape``.

    Separable: along each axis, the windowed sum is a difference of
    cumulative sums.
    """
    result = indicator
    for axis, side in enumerate(shape):
        csum = np.cumsum(result, axis=axis)
        length = result.shape[axis]
        head = np.take(csum, [side - 1], axis=axis)
        if length > side:
            tail = (
                np.take(csum, range(side, length), axis=axis)
                - np.take(csum, range(0, length - side), axis=axis)
            )
            result = np.concatenate([head, tail], axis=axis)
        else:
            result = head
    return result


class NumpyBackend(KernelBackend):
    """Pure-numpy kernels; the reference every other backend must match."""

    name = "numpy"

    # -- batched rectangle queries -------------------------------------

    def batch_disk_counts(
        self, sat: SummedAreaTable, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        # The SAT owns the gather so the in-RAM fancy-index path and the
        # streamed mmap path share one implementation.
        return sat.corner_counts(lo, hi)

    # -- sliding-window shape sweep ------------------------------------

    def window_response_times(
        self, sat: SummedAreaTable, shape: Sequence[int]
    ) -> np.ndarray:
        return self.window_disk_counts(sat, shape).max(axis=0)

    def window_disk_counts(
        self, sat: SummedAreaTable, shape: Sequence[int]
    ) -> np.ndarray:
        """Per-disk window counts ``(M, *placements)`` — numpy-only extra.

        Kept on the numpy backend (not the abstract interface) because
        it materializes per-disk planes; the engine's
        ``disk_window_counts`` is its only caller.
        """
        dims = sat.dims
        ndim = sat.ndim
        shape = tuple(int(s) for s in shape)
        array = sat.array
        counts: np.ndarray = np.zeros(0)
        for corner in range(1 << ndim):
            slices = [slice(None)]
            parity = 0
            for axis in range(ndim):
                if (corner >> axis) & 1:
                    # Low corner on this axis: origin o (subtracted term).
                    slices.append(
                        slice(0, dims[axis] - shape[axis] + 1)
                    )
                    parity ^= 1
                else:
                    # High corner: o + s (added term).
                    slices.append(slice(shape[axis], dims[axis] + 1))
            term = array[tuple(slices)]
            if corner == 0:
                counts = term.astype(np.int64, copy=True)
            elif parity:
                counts -= term
            else:
                counts += term
        return counts

    def sliding_response_times(
        self,
        table: np.ndarray,
        num_disks: int,
        shape: Sequence[int],
    ) -> np.ndarray:
        out_shape = tuple(
            d - s + 1 for s, d in zip(shape, table.shape)
        )
        best = np.zeros(out_shape, dtype=np.int64)
        for disk in range(num_disks):
            window = sliding_window_sums(
                (table == disk).astype(np.int64), shape
            )
            np.maximum(best, window, out=best)
        return best

    # -- whole-grid allocation-table kernels ---------------------------

    def linear_mod_table(
        self,
        dims: Tuple[int, ...],
        coefficients: Tuple[int, ...],
        num_disks: int,
    ) -> np.ndarray:
        total = np.zeros(dims, dtype=np.int64)
        coords = list(np.indices(dims, dtype=np.int64))
        for coefficient, axis_coords in zip(coefficients, coords):
            total += coefficient * axis_coords
        return total % num_disks

    def xor_mod_table(
        self, dims: Tuple[int, ...], num_disks: int
    ) -> np.ndarray:
        table = np.zeros(dims, dtype=np.int64)
        coords = list(np.indices(dims, dtype=np.int64))
        for axis_coords in coords:
            np.bitwise_xor(table, axis_coords, out=table)
        return table % num_disks
