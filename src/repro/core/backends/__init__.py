"""Pluggable kernel backends for the library's three hot loops.

The registry maps backend names to :class:`~repro.core.backends.base.
KernelBackend` instances.  Resolution order for the active backend:

1. an explicit :func:`set_backend` / :func:`use_backend` call,
2. the ``REPRO_BACKEND`` environment variable (how the CLI's
   ``--backend`` flag and the worker-pool initializer propagate the
   choice into spawned processes),
3. the default, ``"numpy"``.

Selecting an unknown or unavailable backend raises
:class:`~repro.core.exceptions.BackendError` with the reason — never a
silent fallback, because a benchmark or experiment that quietly ran a
different backend than asked would be a lie.  The pseudo-name
``"native"`` resolves to the fastest available compiled backend
(``numba`` if importable, else ``cnative``) for callers that want
"fast, whichever flavor this machine has".

All registered backends are certified bit-identical to the numpy
reference by the QA423 contract rule.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.core.backends.base import KernelBackend
from repro.core.backends.native import CNativeBackend
from repro.core.backends.numba_backend import NumbaBackend
from repro.core.backends.numpy_backend import NumpyBackend
from repro.core.exceptions import BackendError

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "active_backend",
    "active_backend_name",
    "all_backends",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]

#: Environment variable carrying the backend choice across processes.
BACKEND_ENV = "REPRO_BACKEND"

#: The always-available bit-identical reference backend.
DEFAULT_BACKEND = "numpy"

#: Pseudo-name resolving to the fastest available compiled backend.
NATIVE_ALIAS = "native"

_REGISTRY: Dict[str, KernelBackend] = {}

#: Explicit in-process override (set_backend / use_backend); beats env.
_ACTIVE: Optional[str] = None


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add ``backend`` to the registry (last registration wins)."""
    if not backend.name:
        raise BackendError("backend has no name")
    _REGISTRY[backend.name] = backend
    return backend


def _resolve_alias(name: str) -> str:
    if name != NATIVE_ALIAS:
        return name
    for candidate in ("numba", "cnative"):
        backend = _REGISTRY.get(candidate)
        if backend is not None and backend.available():
            return candidate
    raise BackendError(
        "no native backend is available: "
        + "; ".join(
            f"{n}: {_REGISTRY[n].unavailable_reason()}"
            for n in ("numba", "cnative")
            if n in _REGISTRY
        )
    )


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name; raise BackendError if it cannot run."""
    resolved = _resolve_alias(name)
    backend = _REGISTRY.get(resolved)
    if backend is None:
        known = ", ".join(sorted(_REGISTRY))
        raise BackendError(
            f"unknown backend {name!r} (registered: {known})"
        )
    reason = backend.unavailable_reason()
    if reason is not None:
        raise BackendError(
            f"backend {resolved!r} is unavailable: {reason}"
        )
    return backend


def all_backends() -> List[KernelBackend]:
    """Every registered backend, available or not, in name order."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def available_backends() -> List[KernelBackend]:
    """Every backend that can run in this process, in name order."""
    return [b for b in all_backends() if b.available()]


def active_backend_name() -> str:
    """The name the current process resolves to (without validating it)."""
    if _ACTIVE is not None:
        return _ACTIVE
    return os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND


def active_backend() -> KernelBackend:
    """The backend every kernel call site dispatches through."""
    return get_backend(active_backend_name())


def set_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide backend override.

    Validates eagerly so a bad ``--backend`` fails at startup, not at
    the first kernel call.
    """
    global _ACTIVE
    if name is not None:
        get_backend(name)
    _ACTIVE = name  # qa601: allow — per-process override by design; serve workers each re-apply the server's --backend at startup


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Temporarily run with ``name`` as the active backend."""
    global _ACTIVE
    backend = get_backend(name)
    previous = _ACTIVE
    _ACTIVE = name
    try:
        yield backend
    finally:
        _ACTIVE = previous


register_backend(NumpyBackend())
register_backend(CNativeBackend())
register_backend(NumbaBackend())
