"""Artifact integrity: checksummed manifests for the native data plane.

PR 7 made two kinds of on-disk artifact load-bearing: spilled
summed-area tables (``SummedAreaTable.build_chunked`` / ``open_mmap``)
and the compiled-kernel ``.so`` cache (``repro.core.backends.native``).
Both were trusted blindly — a truncated or torn file with a plausible
``.npy`` header would be memory-mapped and silently produce wrong
answers; a corrupt ``.so`` would be ``CDLL``-loaded and crash (or
worse).  This module is the trust boundary:

* every spilled SAT gets a JSON **sidecar manifest**
  (``<table>.npy.manifest.json``) recording dtype, shape, disk count,
  tile layout, and a sha256 digest per build tile — streamed during the
  chunked build, so hashing rides along with the tile writes at near
  zero extra cost;
* every cached ``.so`` gets a **digest sidecar**
  (``<lib>.so.sha256``) written at compile time;
* :func:`verify_sat` / :func:`verify_library` check an artifact against
  its sidecar and raise a typed
  :class:`~repro.core.exceptions.IntegrityError` on any mismatch —
  corruption is *never* silently loaded.

Verification depth is configured by ``REPRO_VERIFY``:

``off``
    trust the artifact (the pre-integrity behavior);
``header``
    the default — manifest present and consistent with the ``.npy``
    header and the file size.  Catches truncation, wrong dtype/shape,
    and swapped files for the cost of one small JSON read;
``full``
    re-hash every tile and compare against the manifest.  Catches any
    bit flip; costs one sequential read of the whole artifact.

A *missing* sidecar is tolerated at ``header`` (logged and counted as
``integrity.unverified_opens`` — pre-existing artifacts stay usable)
but rejected at ``full``.

All checks are counted through :mod:`repro.obs` so degraded modes are
visible in ``--metrics-out`` exports and ``obs summary``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.exceptions import IntegrityError
from repro.obs.log import get_logger
from repro.obs.metrics import global_registry

_LOG = get_logger("repro.core.integrity")

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "SAT_JOURNAL_KIND",
    "SAT_SHARDS_KIND",
    "SatManifest",
    "VERIFY_ENV",
    "VERIFY_LEVELS",
    "atomic_write_json",
    "file_sha256",
    "library_digest_path",
    "manifest_path",
    "read_library_digest",
    "sha256_hex",
    "verify_level",
    "verify_library",
    "verify_sat",
    "write_library_digest",
]

#: Environment variable selecting the verification depth.
VERIFY_ENV = "REPRO_VERIFY"

#: Accepted ``REPRO_VERIFY`` values, shallow to deep.
VERIFY_LEVELS = ("off", "header", "full")

#: Bumped when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1

#: ``kind`` discriminators of the chunked-build sidecar documents: the
#: sequential carry journal (phase 2 / serial builds) and the parallel
#: phase-1 shard log recording which tiles workers have committed.
#: Shared with :mod:`repro.doctor`, which classifies both as resumable.
SAT_JOURNAL_KIND = "sat-journal"
SAT_SHARDS_KIND = "sat-shards"

#: Read granularity for whole-file hashing (1 MiB keeps memory flat).
_HASH_CHUNK = 1 << 20


def verify_level(level: Optional[str] = None) -> str:
    """Resolve the verification depth: argument > ``REPRO_VERIFY`` > header.

    Raises :class:`IntegrityError` on an unknown level — a typo'd
    ``REPRO_VERIFY=ful`` silently meaning "don't verify" would defeat
    the whole layer.
    """
    if level is None:
        level = os.environ.get(VERIFY_ENV) or "header"
    level = level.strip().lower()
    if level not in VERIFY_LEVELS:
        raise IntegrityError(
            f"unknown verification level {level!r}; "
            f"expected one of {VERIFY_LEVELS}"
        )
    return level


def sha256_hex(data: Union[bytes, memoryview]) -> str:
    """Hex sha256 of an in-memory buffer."""
    return hashlib.sha256(data).hexdigest()


def file_sha256(path: Union[str, os.PathLike]) -> str:
    """Hex sha256 of a file's contents, read in bounded chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(_HASH_CHUNK)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def atomic_write_json(path: Union[str, os.PathLike], document: dict) -> None:
    """Write JSON durably: temp file in the same directory + ``os.replace``.

    Readers never observe a torn sidecar — they see the old file or the
    new one, nothing in between.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def manifest_path(sat_path: Union[str, os.PathLike]) -> str:
    """The sidecar manifest path for a spilled SAT file."""
    return os.fspath(sat_path) + ".manifest.json"


@dataclass
class SatManifest:
    """Sidecar metadata of one spilled summed-area table.

    ``tile_starts[i]`` is the first *unpadded* leading-axis row of tile
    ``i``; tile ``i`` occupies padded rows ``[tile_starts[i] + 1,
    tile_starts[i+1] + 1)`` of the file (the leading zero plane at
    padded row 0 belongs to no tile and is checked separately at
    ``full``).  ``tile_digests[i]`` is the sha256 of that slab's
    C-order bytes, exactly as the chunked build wrote them.
    """

    dtype: str
    shape: Tuple[int, ...]
    num_disks: int
    tile_rows: int
    tile_starts: List[int]
    tile_digests: List[str]
    file_bytes: int
    params: Dict[str, object] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA_VERSION

    def content_digest(self) -> str:
        """One digest summarizing the whole table (digest of tile digests)."""
        return sha256_hex("".join(self.tile_digests).encode())

    def to_json(self) -> dict:
        return {
            "schema": self.schema,
            "kind": "sat",
            "dtype": self.dtype,
            "shape": list(self.shape),
            "num_disks": self.num_disks,
            "tile_rows": self.tile_rows,
            "tile_starts": list(self.tile_starts),
            "tile_digests": list(self.tile_digests),
            "file_bytes": self.file_bytes,
            "content_digest": self.content_digest(),
            "params": self.params,
        }

    @classmethod
    def from_json(cls, document: dict, source: str) -> "SatManifest":
        try:
            manifest = cls(
                dtype=str(document["dtype"]),
                shape=tuple(int(d) for d in document["shape"]),
                num_disks=int(document["num_disks"]),
                tile_rows=int(document["tile_rows"]),
                tile_starts=[int(s) for s in document["tile_starts"]],
                tile_digests=[str(d) for d in document["tile_digests"]],
                file_bytes=int(document["file_bytes"]),
                params=dict(document.get("params", {})),
                schema=int(document.get("schema", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IntegrityError(
                f"{source}: malformed SAT manifest ({exc!r})"
            ) from None
        if manifest.schema != MANIFEST_SCHEMA_VERSION:
            raise IntegrityError(
                f"{source}: manifest schema {manifest.schema} != "
                f"{MANIFEST_SCHEMA_VERSION}"
            )
        if len(manifest.tile_starts) != len(manifest.tile_digests):
            raise IntegrityError(
                f"{source}: {len(manifest.tile_starts)} tile start(s) vs "
                f"{len(manifest.tile_digests)} digest(s)"
            )
        return manifest

    def write(self, sat_path: Union[str, os.PathLike]) -> str:
        """Write the sidecar next to ``sat_path``; returns its path."""
        path = manifest_path(sat_path)
        atomic_write_json(path, self.to_json())
        return path

    @classmethod
    def load(cls, sat_path: Union[str, os.PathLike]) -> "SatManifest":
        """Load and structurally validate the sidecar of ``sat_path``."""
        path = manifest_path(sat_path)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            raise
        except (OSError, ValueError) as exc:
            raise IntegrityError(
                f"{path}: unreadable SAT manifest ({exc!r})"
            ) from None
        return cls.from_json(document, path)


def _npy_header(path: str) -> Tuple[Tuple[int, ...], np.dtype, int]:
    """``(shape, dtype, data_offset)`` from a ``.npy`` file's header.

    Reads only the header — never maps the data — so it is safe on
    arbitrarily corrupt files; header-level damage becomes a typed
    :class:`IntegrityError`.
    """
    try:
        with open(path, "rb") as handle:
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                header = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                header = np.lib.format.read_array_header_2_0(handle)
            else:
                raise IntegrityError(
                    f"{path}: unsupported .npy format version "
                    f"{version}"
                )
            shape, fortran, dtype = header
            offset = handle.tell()
    except (OSError, ValueError) as exc:
        raise IntegrityError(
            f"{path}: unreadable .npy header ({exc!r})"
        ) from None
    if fortran:
        raise IntegrityError(f"{path}: Fortran-order SATs are not produced")
    return tuple(int(d) for d in shape), np.dtype(dtype), int(offset)


#: Stat-keyed memo of header-verified SATs: path -> (signature,
#: manifest).  Header verification is a pure function of the table and
#: manifest files, so while both stat signatures (size, mtime_ns, inode)
#: are unchanged the previous verdict stands — repeat ``open_mmap``
#: calls in one process (cache rebuild probes, per-task reopens in
#: workers) skip the JSON re-parse.  Any rewrite goes through
#: ``os.replace`` and changes the inode, invalidating the entry.
_HEADER_MEMO: Dict[str, Tuple[tuple, SatManifest]] = {}
_HEADER_MEMO_MAX = 64


def _stat_signature(path: str) -> tuple:
    table = os.stat(path)
    sidecar = os.stat(manifest_path(path))
    return (
        table.st_size, table.st_mtime_ns, table.st_ino,
        sidecar.st_size, sidecar.st_mtime_ns, sidecar.st_ino,
    )


def verify_sat(
    path: Union[str, os.PathLike], level: Optional[str] = None
) -> Optional[SatManifest]:
    """Check a spilled SAT against its sidecar manifest.

    Returns the manifest (``None`` at ``off``, or when the manifest is
    missing and tolerated); raises :class:`IntegrityError` whenever the
    artifact and manifest disagree.  See the module docstring for what
    each level checks.
    """
    level = verify_level(level)
    if level == "off":
        return None
    path = os.fspath(path)
    registry = global_registry()
    signature = None
    if level == "header":
        memo = _HEADER_MEMO.get(path)
        try:
            signature = _stat_signature(path)
        except OSError:
            signature = None  # fall through to the full code path
        if memo is not None and signature is not None:
            if memo[0] == signature:
                registry.inc("integrity.sat_verifications")
                return memo[1]
            _HEADER_MEMO.pop(path, None)  # qa601: allow — per-process verification memo by design; each worker warms its own
    try:
        manifest = SatManifest.load(path)
    except FileNotFoundError:
        if level == "full":
            registry.inc("integrity.sat_failures")
            raise IntegrityError(
                f"{path}: no sidecar manifest "
                f"({manifest_path(path)}); REPRO_VERIFY=full refuses "
                f"unverifiable artifacts"
            ) from None
        _LOG.warning(
            "SAT %s has no sidecar manifest; loading unverified", path
        )
        registry.inc("integrity.unverified_opens")
        return None
    except IntegrityError:
        registry.inc("integrity.sat_failures")
        raise

    try:
        actual_bytes = os.path.getsize(path)
    except OSError as exc:
        registry.inc("integrity.sat_failures")
        raise IntegrityError(f"{path}: unreadable ({exc!r})") from None
    shape, dtype, offset = _npy_header(path)
    failure = None
    if shape != manifest.shape:
        failure = f"shape {shape} != manifest {manifest.shape}"
    elif dtype != np.dtype(manifest.dtype):
        failure = f"dtype {dtype} != manifest {manifest.dtype}"
    elif actual_bytes != manifest.file_bytes:
        failure = (
            f"file is {actual_bytes} bytes, manifest recorded "
            f"{manifest.file_bytes} (truncated or torn write)"
        )
    if failure is not None:
        registry.inc("integrity.sat_failures")
        raise IntegrityError(f"{path}: {failure}")
    if level == "full":
        _verify_sat_tiles(path, manifest, shape, dtype, offset)
    elif signature is not None:
        if len(_HEADER_MEMO) >= _HEADER_MEMO_MAX:
            _HEADER_MEMO.pop(next(iter(_HEADER_MEMO)))  # qa601: allow — per-process verification memo by design; each worker warms its own
        _HEADER_MEMO[path] = (signature, manifest)  # qa601: allow — per-process verification memo by design; each worker warms its own
    registry.inc("integrity.sat_verifications")
    return manifest


def _verify_sat_tiles(
    path: str,
    manifest: SatManifest,
    shape: Tuple[int, ...],
    dtype: np.dtype,
    offset: int,
) -> None:
    """Re-hash every tile slab of a spilled SAT (the ``full`` check)."""
    registry = global_registry()
    array = np.memmap(
        path, dtype=dtype, mode="r", offset=offset, shape=shape
    )
    try:
        if np.any(np.asarray(array[:, 0]) != 0):
            registry.inc("integrity.sat_failures")
            raise IntegrityError(
                f"{path}: leading pad plane is not all-zero"
            )
        leading = shape[1] - 1  # unpadded leading-axis extent
        boundaries = list(manifest.tile_starts) + [leading]
        covered = 0
        for index, start in enumerate(manifest.tile_starts):
            stop = boundaries[index + 1]
            if start != covered or stop <= start:
                registry.inc("integrity.sat_failures")
                raise IntegrityError(
                    f"{path}: manifest tiles do not cover the leading "
                    f"axis contiguously (tile {index} spans "
                    f"[{start}, {stop}) after {covered} covered row(s))"
                )
            covered = stop
            slab = np.ascontiguousarray(array[:, start + 1 : stop + 1])
            digest = sha256_hex(slab.data)
            if digest != manifest.tile_digests[index]:
                registry.inc("integrity.sat_failures")
                raise IntegrityError(
                    f"{path}: tile {index} (rows [{start}, {stop})) "
                    f"digest mismatch — artifact is corrupt"
                )
        if covered != leading:
            registry.inc("integrity.sat_failures")
            raise IntegrityError(
                f"{path}: manifest tiles cover {covered} of {leading} "
                f"leading-axis row(s)"
            )
    finally:
        mmap_obj = getattr(array, "_mmap", None)
        del array
        if mmap_obj is not None:
            mmap_obj.close()


# ----------------------------------------------------------------------
# Compiled-library (.so) sidecars
# ----------------------------------------------------------------------


def library_digest_path(lib_path: Union[str, os.PathLike]) -> str:
    """The digest sidecar path for a cached compiled library."""
    return os.fspath(lib_path) + ".sha256"


def write_library_digest(lib_path: Union[str, os.PathLike]) -> str:
    """Record a freshly compiled library's content digest; returns it."""
    digest = file_sha256(lib_path)
    atomic_write_json(
        library_digest_path(lib_path),
        {"schema": MANIFEST_SCHEMA_VERSION, "kind": "library",
         "sha256": digest},
    )
    return digest


def read_library_digest(
    lib_path: Union[str, os.PathLike],
) -> Optional[str]:
    """The recorded digest of a cached library, or None when absent."""
    try:
        with open(library_digest_path(lib_path)) as handle:
            document = json.load(handle)
        return str(document["sha256"])
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise IntegrityError(
            f"{library_digest_path(lib_path)}: malformed library digest "
            f"sidecar ({exc!r})"
        ) from None


def verify_library(
    lib_path: Union[str, os.PathLike], level: Optional[str] = None
) -> None:
    """Check a cached ``.so`` against its digest sidecar before loading.

    ``header`` and ``full`` both re-hash the library — kernel binaries
    are a few tens of kilobytes, so the full hash *is* the cheap check.
    A missing sidecar is tolerated (counted) except at ``full``; any
    mismatch raises :class:`IntegrityError`.
    """
    level = verify_level(level)
    if level == "off":
        return
    lib_path = os.fspath(lib_path)
    registry = global_registry()
    try:
        recorded = read_library_digest(lib_path)
    except IntegrityError:
        registry.inc("integrity.so_failures")
        raise
    if recorded is None:
        if level == "full":
            registry.inc("integrity.so_failures")
            raise IntegrityError(
                f"{lib_path}: no digest sidecar; REPRO_VERIFY=full "
                f"refuses unverifiable artifacts"
            )
        _LOG.warning(
            "compiled library %s has no digest sidecar; loading "
            "unverified", lib_path,
        )
        registry.inc("integrity.unverified_opens")
        return
    try:
        actual = file_sha256(lib_path)
    except OSError as exc:
        registry.inc("integrity.so_failures")
        raise IntegrityError(
            f"{lib_path}: unreadable ({exc!r})"
        ) from None
    if actual != recorded:
        registry.inc("integrity.so_failures")
        raise IntegrityError(
            f"{lib_path}: content digest mismatch — cached kernel "
            f"library is corrupt"
        )
    registry.inc("integrity.so_verifications")
