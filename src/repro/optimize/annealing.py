"""Workload-aware allocation optimization by simulated annealing.

The paper's conclusion: "information about common queries on a relation
ought to be used in deciding the declustering for it."  This module is
that advice, operationalized: starting from any allocation, a local search
over *disk-swap moves* minimizes the summed response time of a concrete
query workload.

Mechanics:

* **Moves are swaps** of two buckets' disk assignments, so the per-disk
  storage loads of the starting allocation are preserved exactly — the
  search cannot trade balance away for query speed.
* **Incremental evaluation**: per-query per-disk bucket counts are
  maintained in a ``(num_queries, M)`` matrix; a swap touches only the
  queries containing either bucket, and each such query's response time
  is recomputed from its count row.  A move is O(queries-per-bucket * M),
  not O(workload).
* **Annealing schedule**: classic exponential cooling with
  Metropolis acceptance; with ``initial_temperature=0`` it degrades to
  pure hill climbing.  Every run is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import WorkloadError
from repro.core.grid import Grid
from repro.core.query import RangeQuery

__all__ = [
    "AnnealingConfig",
    "AnnealingResult",
    "optimize_allocation",
    "optimize_allocation_multi",
    "workload_cost",
]


@dataclass(frozen=True)
class AnnealingConfig:
    """Knobs of the annealing run.

    Attributes
    ----------
    iterations:
        Number of proposed swap moves.
    initial_temperature:
        Metropolis temperature at iteration 0; 0 = hill climbing.
    cooling:
        Multiplicative decay applied each iteration (0 < cooling <= 1).
    seed:
        PRNG seed; the whole run is deterministic given it.
    """

    iterations: int = 20_000
    initial_temperature: float = 1.0
    cooling: float = 0.9995
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise WorkloadError(
                f"iterations must be >= 0, got {self.iterations}"
            )
        if self.initial_temperature < 0:
            raise WorkloadError(
                "initial temperature must be >= 0, got "
                f"{self.initial_temperature}"
            )
        if not 0 < self.cooling <= 1:
            raise WorkloadError(
                f"cooling must be in (0, 1], got {self.cooling}"
            )


@dataclass
class AnnealingResult:
    """Outcome of one optimization run."""

    allocation: DiskAllocation
    initial_cost: int
    final_cost: int
    accepted_moves: int
    proposed_moves: int
    history: List[int] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Fractional cost reduction, ``(initial - final) / initial``."""
        if self.initial_cost == 0:
            return 0.0
        return (self.initial_cost - self.final_cost) / self.initial_cost


class _WorkloadState:
    """Incremental summed-RT bookkeeping for a fixed query workload."""

    def __init__(
        self,
        grid: Grid,
        num_disks: int,
        table: np.ndarray,
        queries: Sequence[RangeQuery],
    ):
        self.grid = grid
        self.num_disks = num_disks
        self.table = table.copy()
        self.queries = list(queries)
        if not self.queries:
            raise WorkloadError("workload contains no queries")
        for query in self.queries:
            if not query.fits_in(grid):
                raise WorkloadError(
                    f"query {query} does not fit in grid {grid.dims}"
                )
        num_queries = len(self.queries)
        self.counts = np.zeros((num_queries, num_disks), dtype=np.int64)
        self.rts = np.zeros(num_queries, dtype=np.int64)
        # bucket linear index -> indices of queries containing it
        self.bucket_queries: Dict[int, List[int]] = {}
        for qi, query in enumerate(self.queries):
            region = self.table[query.slices()]
            self.counts[qi] = np.bincount(
                region.ravel(), minlength=num_disks
            )
            self.rts[qi] = self.counts[qi].max()
            for coords in query.iter_buckets():
                linear = grid.linear_index(coords)
                self.bucket_queries.setdefault(linear, []).append(qi)

    def total_cost(self) -> int:
        return int(self.rts.sum())

    def swap_delta(self, a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
        """Cost change if buckets ``a`` and ``b`` swapped disks."""
        return self._apply(a, b, commit=False)

    def commit_swap(self, a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
        """Perform the swap, returning the cost change."""
        return self._apply(a, b, commit=True)

    def _apply(self, a, b, commit: bool) -> int:
        disk_a = int(self.table[a])
        disk_b = int(self.table[b])
        if disk_a == disk_b:
            return 0
        set_a = set(self.bucket_queries.get(self.grid.linear_index(a), []))
        set_b = set(self.bucket_queries.get(self.grid.linear_index(b), []))
        delta = 0
        updates = []
        for qi in set_a | set_b:
            row = self.counts[qi].copy()
            if qi in set_a:
                row[disk_a] -= 1
                row[disk_b] += 1
            if qi in set_b:
                row[disk_b] -= 1
                row[disk_a] += 1
            new_rt = int(row.max())
            delta += new_rt - int(self.rts[qi])
            updates.append((qi, row, new_rt))
        if commit:
            for qi, row, new_rt in updates:
                self.counts[qi] = row
                self.rts[qi] = new_rt
            self.table[a] = disk_b
            self.table[b] = disk_a
        return delta


def workload_cost(
    allocation: DiskAllocation, queries: Sequence[RangeQuery]
) -> int:
    """Summed response time of a workload (the annealer's objective)."""
    from repro.core.cost import response_time

    return sum(response_time(allocation, q) for q in queries)


def optimize_allocation_multi(
    allocation: DiskAllocation,
    queries: Sequence[RangeQuery],
    config: AnnealingConfig = AnnealingConfig(),
    restarts: int = 3,
) -> AnnealingResult:
    """Best of ``restarts`` independent annealing runs (seeds derived
    from ``config.seed``).

    Annealing is a local search; restarts are the cheap insurance
    against an unlucky trajectory.  Deterministic given the base seed.
    """
    if restarts <= 0:
        raise WorkloadError(f"restarts must be positive, got {restarts}")
    best = None
    for attempt in range(restarts):
        run_config = AnnealingConfig(
            iterations=config.iterations,
            initial_temperature=config.initial_temperature,
            cooling=config.cooling,
            seed=config.seed + attempt,
        )
        result = optimize_allocation(allocation, queries, run_config)
        if best is None or result.final_cost < best.final_cost:
            best = result
    return best


def optimize_allocation(
    allocation: DiskAllocation,
    queries: Sequence[RangeQuery],
    config: AnnealingConfig = AnnealingConfig(),
) -> AnnealingResult:
    """Anneal an allocation against a workload; returns the improved map.

    The result's allocation has exactly the same per-disk storage loads as
    the input (moves are swaps).  With the default configuration the run
    takes well under a second for a 32 x 32 grid and a few hundred
    queries.
    """
    grid = allocation.grid
    state = _WorkloadState(
        grid, allocation.num_disks, np.asarray(allocation.table), queries
    )
    rng = np.random.default_rng(config.seed)
    initial_cost = state.total_cost()
    cost = initial_cost
    best_cost = cost
    best_table = state.table.copy()
    temperature = config.initial_temperature
    accepted = 0
    history = [cost]

    flat_buckets = [grid.coords_of(i) for i in range(grid.num_buckets)]
    for _ in range(config.iterations):
        ai, bi = rng.integers(0, grid.num_buckets, size=2)
        a = flat_buckets[int(ai)]
        b = flat_buckets[int(bi)]
        delta = state.swap_delta(a, b)
        accept = delta < 0
        if not accept and delta == 0:
            accept = bool(rng.random() < 0.5)
        elif not accept and temperature > 0:
            accept = bool(
                rng.random() < np.exp(-delta / temperature)
            )
        if accept:
            state.commit_swap(a, b)
            cost += delta
            accepted += 1
            if cost < best_cost:
                best_cost = cost
                best_table = state.table.copy()
        temperature *= config.cooling
        history.append(cost)

    return AnnealingResult(
        allocation=DiskAllocation(
            grid, allocation.num_disks, best_table
        ),
        initial_cost=initial_cost,
        final_cost=best_cost,
        accepted_moves=accepted,
        proposed_moves=config.iterations,
        history=history,
    )
