"""Workload-aware allocation optimization (simulated annealing)."""

from repro.optimize.annealing import (
    AnnealingConfig,
    AnnealingResult,
    optimize_allocation,
    optimize_allocation_multi,
    workload_cost,
)

__all__ = [
    "AnnealingConfig",
    "AnnealingResult",
    "optimize_allocation",
    "optimize_allocation_multi",
    "workload_cost",
]
