"""Fault models and degraded-mode evaluation.

The production-shaped half of the reproduction: disks fail (fail-stop) or
merely limp (stragglers), and both the declustered layouts and the
experiment runner itself must degrade gracefully.  Three pieces:

* :mod:`repro.faults.models` — ``FailStop`` / ``Slowdown`` faults, the
  merged :class:`FaultScenario`, and the seeded :class:`FaultInjector`;
* :mod:`repro.faults.degraded` — availability and degraded response-time
  semantics for unreplicated and replicated allocations;
* :mod:`repro.faults.injection` — crash/hang injection for the runner's
  own worker processes (chaos testing the self-healing paths);
* :mod:`repro.faults.io` — I/O-level injection points inside the
  artifact layer (SAT spills, kernel compiles, shm attaches), driving
  the integrity/recovery chaos tests.
"""

from repro.faults.degraded import (
    availability,
    degraded_buckets_per_disk,
    degraded_optimal_response_time,
    degraded_response_time,
    query_is_available,
    replicated_availability,
    replicated_query_is_available,
)
from repro.faults.injection import (
    InjectedFault,
    RunnerFaultPlan,
    maybe_inject_runner_fault,
)
from repro.faults.io import (
    InjectedIOFault,
    IoFaultPlan,
    maybe_io_fault,
)
from repro.faults.models import (
    FailStop,
    Fault,
    FaultInjector,
    FaultScenario,
    Slowdown,
)

__all__ = [
    "FailStop",
    "Fault",
    "FaultInjector",
    "FaultScenario",
    "InjectedFault",
    "InjectedIOFault",
    "IoFaultPlan",
    "RunnerFaultPlan",
    "Slowdown",
    "availability",
    "degraded_buckets_per_disk",
    "degraded_optimal_response_time",
    "degraded_response_time",
    "maybe_inject_runner_fault",
    "maybe_io_fault",
    "query_is_available",
    "replicated_availability",
    "replicated_query_is_available",
]
