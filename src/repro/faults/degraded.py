"""Degraded-mode cost semantics: response time and availability under faults.

For an **unreplicated** :class:`~repro.core.allocation.DiskAllocation`
every bucket lives on exactly one disk, so a fail-stop is unforgiving: a
query touching any bucket of a failed disk cannot be answered completely —
it is *lost*.  The degraded metrics therefore split in two:

* **availability** — the fraction of queries that touch no failed disk
  (binary per query: answered in full or lost);
* **degraded response time** — the parallel completion time over the
  *surviving* disks only, with each disk's bucket count scaled by its
  straggler factor: ``max_d load_d * factor_d``.  For a lost query this is
  the time to retrieve what still exists (the partial answer a real system
  would return alongside the error).

Replicated layouts route around faults instead of losing queries; their
degraded semantics live in the replica planner
(:func:`repro.replication.planner.plan_query` with a ``scenario``) and the
availability helpers below that consult both copies.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.cost import buckets_per_disk, optimal_response_time
from repro.core.exceptions import FaultError
from repro.core.query import RangeQuery
from repro.faults.models import FaultScenario
from repro.replication.allocation import ReplicatedAllocation

__all__ = [
    "availability",
    "batch_degraded_response_times",
    "batch_query_availability",
    "degraded_buckets_per_disk",
    "degraded_optimal_response_time",
    "degraded_response_time",
    "query_is_available",
    "replicated_availability",
    "replicated_query_is_available",
]


def _check_scenario(num_disks: int, scenario: FaultScenario) -> None:
    if scenario.num_disks != num_disks:
        raise FaultError(
            f"scenario covers {scenario.num_disks} disks but the "
            f"allocation uses {num_disks}"
        )


def degraded_buckets_per_disk(
    allocation: DiskAllocation,
    query: RangeQuery,
    scenario: FaultScenario,
) -> np.ndarray:
    """Per-disk bucket counts with failed disks zeroed, ``shape (M,)``.

    The zeroed buckets are exactly the lost part of the query; compare
    with :func:`repro.core.cost.buckets_per_disk` to count them.
    """
    _check_scenario(allocation.num_disks, scenario)
    counts = buckets_per_disk(allocation, query).copy()
    for disk in scenario.failed:
        counts[disk] = 0
    return counts


def degraded_response_time(
    allocation: DiskAllocation,
    query: RangeQuery,
    scenario: FaultScenario,
) -> float:
    """Completion time over surviving disks: ``max_d load_d * factor_d``.

    Equals the healthy :func:`~repro.core.cost.response_time` (as a float)
    under :meth:`FaultScenario.healthy`.  Buckets on failed disks do not
    contribute — for a lost query this is the cost of the partial answer.
    """
    counts = degraded_buckets_per_disk(allocation, query, scenario)
    if not counts.size:
        return 0.0
    return float((counts * scenario.factors).max())


def batch_degraded_response_times(
    counts: np.ndarray, scenario: FaultScenario
) -> np.ndarray:
    """Degraded completion times for a whole query batch, ``shape (N,)``.

    ``counts`` is the ``(N, M)`` per-query per-disk bucket matrix from
    :meth:`repro.core.engine.ResponseTimeEngine.batch_disk_counts`; the
    same matrix serves every scenario, which is what makes the
    degraded-mode sweeps cheap.  Entry ``i`` equals
    :func:`degraded_response_time` for query ``i`` exactly: failed
    columns are zeroed and the straggler-weighted row maximum taken with
    the same int64*float64 arithmetic as the scalar path.
    """
    _check_scenario(counts.shape[1], scenario)
    if scenario.failed:
        counts = counts.copy()
        counts[:, sorted(scenario.failed)] = 0
    if not counts.size:
        return np.zeros(counts.shape[0], dtype=np.float64)
    return (counts * scenario.factors).max(axis=1)


def batch_query_availability(
    counts: np.ndarray, scenario: FaultScenario
) -> np.ndarray:
    """Boolean availability per query of a batch, ``shape (N,)``.

    ``counts`` as in :func:`batch_degraded_response_times`; entry ``i``
    equals :func:`query_is_available` for query ``i`` (no touched bucket
    lives on a failed disk).
    """
    _check_scenario(counts.shape[1], scenario)
    if not scenario.failed:
        return np.ones(counts.shape[0], dtype=bool)
    return ~(counts[:, sorted(scenario.failed)] > 0).any(axis=1)


def query_is_available(
    allocation: DiskAllocation,
    query: RangeQuery,
    scenario: FaultScenario,
) -> bool:
    """Whether the query touches no failed disk (full answer possible)."""
    _check_scenario(allocation.num_disks, scenario)
    if not scenario.failed:
        return True
    counts = buckets_per_disk(allocation, query)
    return not any(counts[disk] > 0 for disk in scenario.failed)


def availability(
    allocation: DiskAllocation,
    queries: Iterable[RangeQuery],
    scenario: FaultScenario,
) -> float:
    """Fraction of ``queries`` answerable in full under ``scenario``.

    1.0 for an empty workload by convention (nothing was lost).
    """
    queries = list(queries)
    if not queries:
        return 1.0
    answered = sum(
        1
        for query in queries
        if query_is_available(allocation, query, scenario)
    )
    return answered / len(queries)


def replicated_query_is_available(
    replicated: ReplicatedAllocation,
    query: RangeQuery,
    scenario: FaultScenario,
) -> bool:
    """Whether every touched bucket keeps at least one surviving copy.

    Because the two copies are disjoint per bucket, any *single* fail-stop
    leaves the other copy alive — availability under one failure is 1.0 by
    construction, which the fault property tests measure rather than
    assume.
    """
    _check_scenario(replicated.num_disks, scenario)
    if not scenario.failed:
        return True
    if query.ndim != replicated.grid.ndim:
        raise FaultError(
            f"{query.ndim}-d query does not match "
            f"{replicated.grid.ndim}-d allocation"
        )
    clipped = query.clip_to(replicated.grid)
    if clipped is None:
        return True
    failed = np.fromiter(
        sorted(scenario.failed), dtype=np.int64, count=len(scenario.failed)
    )
    primary = replicated.primary.table[clipped.slices()]
    backup = replicated.backup.table[clipped.slices()]
    both_failed = np.isin(primary, failed) & np.isin(backup, failed)
    return not bool(both_failed.any())


def replicated_availability(
    replicated: ReplicatedAllocation,
    queries: Iterable[RangeQuery],
    scenario: FaultScenario,
) -> float:
    """Fraction of ``queries`` with every bucket reachable under faults."""
    queries = list(queries)
    if not queries:
        return 1.0
    answered = sum(
        1
        for query in queries
        if replicated_query_is_available(replicated, query, scenario)
    )
    return answered / len(queries)


def degraded_optimal_response_time(
    num_buckets: int, scenario: FaultScenario
) -> float:
    """The unbeatable completion time on the surviving, possibly slow array.

    With ``S`` surviving disks all healthy this is the familiar
    ``ceil(n / S)``.  With stragglers it is the smallest ``T`` such that
    the surviving disks can absorb ``n`` buckets when disk ``d`` finishes
    ``floor(T / factor_d)`` of them by time ``T`` — a lower bound on any
    planner, replicated or not (it ignores placement constraints
    entirely).
    """
    surviving = scenario.surviving()
    if num_buckets < 0:
        raise FaultError(
            f"bucket count must be non-negative: {num_buckets}"
        )
    if num_buckets == 0:
        return 0.0
    if not surviving:
        raise FaultError(
            "no surviving disks: the degraded optimum is undefined"
        )
    factors = [scenario.factor(d) for d in surviving]
    if all(f <= 1.0 for f in factors):
        return float(optimal_response_time(num_buckets, len(surviving)))
    # Candidate completion times are load * factor products; the optimum
    # is the smallest candidate whose induced capacities cover n buckets.
    candidates: List[float] = sorted(
        {
            load * factor
            for factor in factors
            for load in range(1, num_buckets + 1)
        }
    )
    for time in candidates:
        capacity = sum(
            int(time / factor + 1e-9) for factor in factors
        )
        if capacity >= num_buckets:
            return float(time)
    return float(candidates[-1])
