"""I/O-level chaos injection for the artifact layer.

:mod:`repro.faults.injection` sabotages whole experiment attempts; this
module reaches *inside* the native data plane, at the exact points where
a disk-full, a torn write, a corrupted cache, or a vanished shared
segment would strike in production::

    REPRO_IO_FAULTS="sat.write:1;compile" \\
    REPRO_IO_FAULTS_STATE=/tmp/io-fault-state \\
        python -m repro evaluate --scheme ecc ...

Plan grammar: semicolon-separated ``POINT[:MODE][:TIMES]`` entries.

* ``POINT`` is one of the injection points wired through the library:

  ===============  ====================================================
  ``sat.write``    before each tile write of a chunked SAT build
                   (:meth:`~repro.core.sat.SummedAreaTable.build_chunked`)
  ``sat.read``     on reopening a spilled SAT
                   (:meth:`~repro.core.sat.SummedAreaTable.open_mmap`)
  ``compile``      in the native backend's kernel compile/cache path
                   (:func:`repro.core.backends.native._compile_library`)
  ``shm.attach``   on attaching a published shared-memory allocation
                   (:func:`repro.core.shm.attach_allocation`)
  ===============  ====================================================

* ``MODE`` is ``error`` (the default — raise :class:`InjectedIOFault`,
  an ``OSError``, exactly what the real failure would look like) or
  ``exit`` (hard ``os._exit`` mid-operation: the deterministic,
  test-friendly stand-in for SIGKILL / power loss, leaving partial
  artifacts on disk for the recovery paths to deal with);
* ``TIMES`` (default 1) is how many hits of that point to sabotage.

Because ``MODE`` is optional, ``sat.write:2`` means "error mode, twice".

Attempt counting uses one file per point under
``REPRO_IO_FAULTS_STATE`` so it survives process boundaries (spawned
workers, subprocess test harnesses).  Without a state directory the
fault fires on *every* hit — useful for testing hard-down behavior.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.core.exceptions import FaultError

__all__ = [
    "IO_FAULTS_ENV",
    "IO_FAULTS_STATE_ENV",
    "IO_POINTS",
    "InjectedIOFault",
    "IoFaultPlan",
    "maybe_io_fault",
]

IO_FAULTS_ENV = "REPRO_IO_FAULTS"
IO_FAULTS_STATE_ENV = "REPRO_IO_FAULTS_STATE"

#: Exit status of ``exit``-mode faults; distinct from the runner plan's
#: 17 so harnesses can tell which layer killed a process.
IO_EXIT_STATUS = 23

#: Injection points wired through the library.
IO_POINTS = ("sat.write", "sat.read", "compile", "shm.attach")

_MODES = ("error", "exit")


class InjectedIOFault(OSError):
    """An artificial I/O failure raised by the fault plan (``error`` mode).

    An ``OSError`` on purpose: recovery code must treat an injected
    fault exactly like a real failed ``write(2)``/``open(2)`` — any
    handler that special-cases it is cheating the chaos test.
    """


@dataclass(frozen=True)
class _Entry:
    point: str
    mode: str
    times: int


class IoFaultPlan:
    """A parsed I/O fault plan plus its hit-count state directory."""

    def __init__(
        self,
        entries: Dict[str, "_Entry"],
        state_dir: Optional[Path] = None,
    ):
        self._entries = entries
        self._state_dir = state_dir

    @classmethod
    def from_spec(
        cls, spec: str, state_dir: Optional[str] = None
    ) -> "IoFaultPlan":
        """Parse ``POINT[:MODE][:TIMES];...`` into a plan."""
        entries: Dict[str, _Entry] = {}
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            parts = [p.strip() for p in raw.split(":")]
            if len(parts) not in (1, 2, 3):
                raise FaultError(
                    f"bad I/O fault entry {raw!r}; "
                    f"expected POINT[:MODE][:TIMES]"
                )
            point = parts[0].lower()
            if point not in IO_POINTS:
                raise FaultError(
                    f"unknown I/O fault point {point!r}; "
                    f"known: {IO_POINTS}"
                )
            mode, times = "error", 1
            if len(parts) == 3:
                mode, times = parts[1].lower(), int(parts[2])
            elif len(parts) == 2:
                # MODE is optional: a bare number is TIMES.
                if parts[1].isdigit():
                    times = int(parts[1])
                else:
                    mode = parts[1].lower()
            if mode not in _MODES:
                raise FaultError(
                    f"unknown I/O fault mode {mode!r}; known: {_MODES}"
                )
            if times < 1:
                raise FaultError(
                    f"I/O fault entry {raw!r} must fire at least once"
                )
            entries[point] = _Entry(point=point, mode=mode, times=times)
        return cls(entries, Path(state_dir) if state_dir else None)

    @classmethod
    def from_environment(cls) -> Optional["IoFaultPlan"]:
        """The plan named by ``REPRO_IO_FAULTS``, if any."""
        spec = os.environ.get(IO_FAULTS_ENV)
        if not spec:
            return None
        return cls.from_spec(spec, os.environ.get(IO_FAULTS_STATE_ENV))

    def _bump_hit(self, point: str) -> int:
        """Record one more hit of ``point``; returns the 1-based count.

        Without a state directory every hit counts as the first, so the
        fault fires forever — documented hard-down behavior.

        The counter may be bumped from several processes at once (a
        parallel build's workers and its parent all pass the same
        seam), so the read-modify-write holds an exclusive ``flock`` —
        otherwise two processes can read the same value, both claim
        hit 1, and a ``TIMES=1`` exit plan kills both instead of the
        one victim the plan named.
        """
        if self._state_dir is None:
            return 1
        self._state_dir.mkdir(parents=True, exist_ok=True)
        path = self._state_dir / f"{point.replace('.', '_')}.hits"
        with open(path, "a+") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.seek(0)
                text = handle.read().strip()
                hits = (int(text) if text else 0) + 1
                handle.seek(0)
                handle.truncate()
                handle.write(str(hits))
                handle.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return hits

    def apply(self, point: str, detail: str = "") -> None:
        """Sabotage this hit of ``point`` if the plan says so."""
        entry = self._entries.get(point)
        if entry is None:
            return
        hit = self._bump_hit(entry.point)
        if hit > entry.times:
            return
        if entry.mode == "exit":
            # Hard death mid-operation: no exception, no cleanup, no
            # atexit — the deterministic stand-in for SIGKILL.  Partial
            # artifacts stay on disk for the recovery paths.
            os._exit(IO_EXIT_STATUS)
        suffix = f" ({detail})" if detail else ""
        raise InjectedIOFault(
            f"injected I/O fault at {entry.point}{suffix} "
            f"(hit {hit}/{entry.times})"
        )


def maybe_io_fault(point: str, detail: str = "") -> None:
    """Apply the environment I/O fault plan to one artifact operation.

    No-op unless ``REPRO_IO_FAULTS`` is set; called from the artifact
    layer's hot seams (see :data:`IO_POINTS`) so chaos plans reach
    spawn-context workers and subprocesses through their environment.
    """
    plan = IoFaultPlan.from_environment()
    if plan is not None:
        plan.apply(point, detail)
