"""Crash/hang injection for the experiment runner's own workers.

The self-healing runner (:mod:`repro.experiments.runner`) is only worth
trusting if its failure paths are exercised, and worker processes cannot
be monkeypatched from a test — they are fresh ``spawn`` interpreters.
This module is the bridge: an environment-variable fault plan that every
``run_experiment`` call consults before doing real work, usable both from
the test suite and from the shell for ad-hoc chaos runs::

    REPRO_RUNNER_FAULTS="E2:crash:1" \\
    REPRO_RUNNER_FAULTS_STATE=/tmp/fault-state \\
        python -m repro experiment all --quick --workers 2

Plan grammar: semicolon-separated ``KEY:MODE[:TIMES]`` entries, where

* ``KEY`` is an experiment key (``E1`` ... ``THM``);
* ``MODE`` is ``crash`` (raise :class:`InjectedFault`), ``exit`` (hard
  ``os._exit`` — the worker dies without a traceback, breaking the pool),
  or ``hang`` (sleep far past any sane timeout);
* ``TIMES`` (default 1) is how many attempts of that key to sabotage.

Attempt counting needs state that survives worker re-spawns, so it lives
in one file per key under ``REPRO_RUNNER_FAULTS_STATE``.  Without a state
directory the fault fires on *every* attempt — useful for testing retry
exhaustion.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.core.exceptions import FaultError

__all__ = [
    "FAULTS_ENV",
    "FAULTS_STATE_ENV",
    "InjectedFault",
    "RunnerFaultPlan",
    "maybe_inject_runner_fault",
]

FAULTS_ENV = "REPRO_RUNNER_FAULTS"
FAULTS_STATE_ENV = "REPRO_RUNNER_FAULTS_STATE"

#: How long a "hung" worker sleeps; anything far beyond test timeouts.
HANG_SECONDS = 3600.0

_MODES = ("crash", "exit", "hang")


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault plan (``crash`` mode).

    Deliberately *not* a :class:`~repro.core.exceptions.DeclusteringError`:
    to the runner an injected crash must look exactly like an unexpected
    worker bug, not a polite library error.
    """


@dataclass(frozen=True)
class _Entry:
    key: str
    mode: str
    times: int


class RunnerFaultPlan:
    """A parsed fault plan plus its attempt-count state directory."""

    def __init__(
        self,
        entries: Dict[str, "_Entry"],
        state_dir: Optional[Path] = None,
    ):
        self._entries = entries
        self._state_dir = state_dir

    @classmethod
    def from_spec(
        cls, spec: str, state_dir: Optional[str] = None
    ) -> "RunnerFaultPlan":
        """Parse ``KEY:MODE[:TIMES];...`` into a plan."""
        entries: Dict[str, _Entry] = {}
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            parts = raw.split(":")
            if len(parts) not in (2, 3):
                raise FaultError(
                    f"bad fault entry {raw!r}; expected KEY:MODE[:TIMES]"
                )
            key, mode = parts[0].strip().upper(), parts[1].strip().lower()
            if mode not in _MODES:
                raise FaultError(
                    f"unknown fault mode {mode!r}; known: {_MODES}"
                )
            times = int(parts[2]) if len(parts) == 3 else 1
            if times < 1:
                raise FaultError(
                    f"fault entry {raw!r} must fire at least once"
                )
            entries[key] = _Entry(key=key, mode=mode, times=times)
        return cls(
            entries, Path(state_dir) if state_dir else None
        )

    @classmethod
    def from_environment(cls) -> Optional["RunnerFaultPlan"]:
        """The plan named by ``REPRO_RUNNER_FAULTS``, if any."""
        spec = os.environ.get(FAULTS_ENV)
        if not spec:
            return None
        return cls.from_spec(spec, os.environ.get(FAULTS_STATE_ENV))

    def _bump_attempt(self, key: str) -> int:
        """Record one more attempt of ``key``; returns the 1-based count.

        Without a state directory every attempt counts as the first, so
        the fault fires forever — documented retry-exhaustion behavior.
        """
        if self._state_dir is None:
            return 1
        self._state_dir.mkdir(parents=True, exist_ok=True)
        path = self._state_dir / f"{key}.attempts"
        attempts = 0
        if path.exists():
            text = path.read_text().strip()
            attempts = int(text) if text else 0
        attempts += 1
        path.write_text(str(attempts))
        return attempts

    def apply(self, key: str) -> None:
        """Sabotage this attempt of ``key`` if the plan says so."""
        entry = self._entries.get(key.upper())
        if entry is None:
            return
        attempt = self._bump_attempt(entry.key)
        if attempt > entry.times:
            return
        if entry.mode == "crash":
            raise InjectedFault(
                f"injected crash in experiment {entry.key} "
                f"(attempt {attempt}/{entry.times})"
            )
        if entry.mode == "exit":
            # A hard exit: no exception, no cleanup — exactly what a
            # segfaulting or OOM-killed worker looks like to the pool.
            os._exit(17)
        time.sleep(HANG_SECONDS)


def maybe_inject_runner_fault(key: str) -> None:
    """Apply the environment fault plan to one experiment attempt.

    No-op unless ``REPRO_RUNNER_FAULTS`` is set; called by
    :func:`repro.experiments.runner.run_experiment` so the plan reaches
    spawn-context worker processes through their inherited environment.
    """
    plan = RunnerFaultPlan.from_environment()
    if plan is not None:
        plan.apply(key)
