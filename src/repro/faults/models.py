"""Fault models: fail-stop disks, stragglers, and seeded scenario sampling.

The paper evaluates declustering on ``M`` perfectly healthy disks.  Real
arrays are not so polite: disks die outright (fail-stop) and, more often,
merely slow down (stragglers — a disk that serves each bucket at ``factor``
times the healthy cost dominates the response time long before it fails).
This module gives both failure modes a small, immutable vocabulary:

* :class:`FailStop` — a set of disks that serve nothing at all;
* :class:`Slowdown` — one disk whose per-bucket service time is multiplied
  by ``factor`` (> 1 is slower, as in the straggler literature);
* :class:`FaultScenario` — the merged state of an ``M``-disk array under
  any combination of the two, the object every degraded-mode evaluation
  consumes (:mod:`repro.faults.degraded`, the replication planner);
* :class:`FaultInjector` — deterministic, seeded sampling of scenarios so
  experiments over random failures replay bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.core.exceptions import FaultError

__all__ = [
    "FailStop",
    "Fault",
    "FaultInjector",
    "FaultScenario",
    "Slowdown",
]


@dataclass(frozen=True)
class FailStop:
    """One or more disks that stop serving entirely.

    ``disks`` is normalized to a sorted tuple of distinct ids; validation
    against the array size happens when the fault joins a
    :class:`FaultScenario` (the fault itself does not know ``M``).
    """

    disks: Tuple[int, ...]

    def __init__(self, disks: Union[int, Iterable[int]]):
        if isinstance(disks, int):
            normalized: Tuple[int, ...] = (int(disks),)
        else:
            normalized = tuple(sorted({int(d) for d in disks}))
        if not normalized:
            raise FaultError("FailStop needs at least one disk id")
        if any(d < 0 for d in normalized):
            raise FaultError(f"negative disk id in FailStop: {normalized}")
        object.__setattr__(self, "disks", normalized)


@dataclass(frozen=True)
class Slowdown:
    """A straggler: ``disk`` serves each bucket at ``factor`` x the cost.

    ``factor`` must exceed 1 — a "slowdown" at or below healthy speed is a
    specification error, not a fault.
    """

    disk: int
    factor: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "disk", int(self.disk))
        object.__setattr__(self, "factor", float(self.factor))
        if self.disk < 0:
            raise FaultError(f"negative disk id in Slowdown: {self.disk}")
        if not self.factor > 1.0:
            raise FaultError(
                f"slowdown factor must be > 1, got {self.factor} "
                f"(disk {self.disk})"
            )


Fault = Union[FailStop, Slowdown]


class FaultScenario:
    """The state of an ``M``-disk array under a set of faults.

    Merges any number of :class:`FailStop` / :class:`Slowdown` faults into
    per-disk state: a frozen set of failed disks plus a read-only vector of
    service-time factors (1.0 for healthy disks; compounded when several
    slowdowns hit the same disk).  A disk that both fails and slows is
    simply failed — fail-stop dominates.

    Examples
    --------
    >>> s = FaultScenario(4, [FailStop(1), Slowdown(2, 3.0)])
    >>> s.is_failed(1), s.factor(2), s.surviving()
    (True, 3.0, (0, 2, 3))
    """

    __slots__ = ("_num_disks", "_failed", "_factors")

    def __init__(
        self, num_disks: int, faults: Sequence[Fault] = ()
    ):
        num_disks = int(num_disks)
        if num_disks <= 0:
            raise FaultError(
                f"number of disks must be positive, got {num_disks}"
            )
        failed = set()
        factors = np.ones(num_disks, dtype=np.float64)
        for fault in faults:
            if isinstance(fault, FailStop):
                for disk in fault.disks:
                    self._check_disk(disk, num_disks)
                    failed.add(disk)
            elif isinstance(fault, Slowdown):
                self._check_disk(fault.disk, num_disks)
                factors[fault.disk] *= fault.factor
            else:
                raise FaultError(
                    f"unknown fault type {type(fault).__name__!r}"
                )
        factors[sorted(failed)] = 1.0  # fail-stop dominates any slowdown
        factors.setflags(write=False)
        self._num_disks = num_disks
        self._failed = frozenset(failed)
        self._factors = factors

    @staticmethod
    def _check_disk(disk: int, num_disks: int) -> None:
        if not 0 <= disk < num_disks:
            raise FaultError(
                f"fault names disk {disk} outside [0, {num_disks})"
            )

    @classmethod
    def healthy(cls, num_disks: int) -> "FaultScenario":
        """The no-fault scenario for an ``M``-disk array."""
        return cls(num_disks)

    @property
    def num_disks(self) -> int:
        """``M``, the size of the (possibly degraded) array."""
        return self._num_disks

    @property
    def failed(self) -> frozenset:
        """The set of fail-stopped disk ids."""
        return self._failed

    @property
    def factors(self) -> np.ndarray:
        """Per-disk service-time multipliers, ``shape (M,)``, read-only.

        Failed disks report factor 1.0; they serve nothing, so the value
        never enters a completion time (their load is always zero).
        """
        return self._factors

    @property
    def num_failed(self) -> int:
        """How many disks are fail-stopped."""
        return len(self._failed)

    @property
    def is_healthy(self) -> bool:
        """True when no disk is failed or slowed."""
        return not self._failed and bool(np.all(self._factors <= 1.0))

    def is_failed(self, disk: int) -> bool:
        """Whether ``disk`` is fail-stopped."""
        return int(disk) in self._failed

    def factor(self, disk: int) -> float:
        """Service-time multiplier of ``disk`` (1.0 when healthy)."""
        return float(self._factors[int(disk)])

    def surviving(self) -> Tuple[int, ...]:
        """Ids of the disks still serving, ascending."""
        return tuple(
            d for d in range(self._num_disks) if d not in self._failed
        )

    def describe(self) -> str:
        """One-line human-readable summary of the scenario."""
        parts: List[str] = []
        if self._failed:
            parts.append(
                "failed=" + ",".join(str(d) for d in sorted(self._failed))
            )
        slow = [
            f"{d}x{self._factors[d]:g}"
            for d in range(self._num_disks)
            if d not in self._failed and self._factors[d] > 1.0
        ]
        if slow:
            parts.append("slow=" + ",".join(slow))
        return " ".join(parts) if parts else "healthy"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FaultScenario)
            and other._num_disks == self._num_disks
            and other._failed == self._failed
            and np.array_equal(other._factors, self._factors)
        )

    def __hash__(self) -> int:
        return hash(
            (self._num_disks, self._failed, self._factors.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"FaultScenario(num_disks={self._num_disks}, "
            f"{self.describe()})"
        )


class FaultInjector:
    """Deterministic sampling of failure scenarios.

    All randomness flows through one seeded ``numpy.random.Generator``, so
    a run that injects faults replays exactly given the same seed and call
    sequence — the same contract the workload generators follow.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def fail_stop(
        self, num_disks: int, num_failures: int = 1
    ) -> FaultScenario:
        """A scenario with ``num_failures`` distinct fail-stopped disks."""
        num_disks = int(num_disks)
        num_failures = int(num_failures)
        if num_failures < 0:
            raise FaultError(
                f"failure count must be non-negative: {num_failures}"
            )
        if num_failures >= num_disks:
            raise FaultError(
                f"cannot fail {num_failures} of {num_disks} disks and "
                "keep an array to evaluate"
            )
        if num_failures == 0:
            return FaultScenario.healthy(num_disks)
        disks = self._rng.choice(num_disks, size=num_failures, replace=False)
        return FaultScenario(
            num_disks, [FailStop(int(d) for d in disks)]
        )

    def slowdown(
        self,
        num_disks: int,
        num_slow: int = 1,
        factor_range: Tuple[float, float] = (1.5, 4.0),
    ) -> FaultScenario:
        """A scenario with ``num_slow`` stragglers, factors drawn uniformly."""
        num_disks = int(num_disks)
        num_slow = int(num_slow)
        lo, hi = (float(factor_range[0]), float(factor_range[1]))
        if not 1.0 < lo <= hi:
            raise FaultError(
                f"factor range must satisfy 1 < lo <= hi, got ({lo}, {hi})"
            )
        if not 0 <= num_slow <= num_disks:
            raise FaultError(
                f"cannot slow {num_slow} of {num_disks} disks"
            )
        if num_slow == 0:
            return FaultScenario.healthy(num_disks)
        disks = self._rng.choice(num_disks, size=num_slow, replace=False)
        faults: List[Fault] = [
            Slowdown(int(d), float(self._rng.uniform(lo, hi)))
            for d in disks
        ]
        return FaultScenario(num_disks, faults)

    def scenarios(
        self,
        num_disks: int,
        num_failures: int,
        count: int,
    ) -> List[FaultScenario]:
        """``count`` independently sampled fail-stop scenarios."""
        if count < 0:
            raise FaultError(f"scenario count must be non-negative: {count}")
        return [
            self.fail_stop(num_disks, num_failures) for _ in range(count)
        ]
