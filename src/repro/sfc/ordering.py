"""Ranking the buckets of an arbitrary grid along a space-filling curve.

The curve functions in this package are defined on ``2^p``-sided hypercubes,
but a grid may have any extents (and different extents per axis).  Following
the standard construction, the grid is embedded into the smallest enclosing
power-of-two hypercube, every bucket's curve position is computed there, and
the buckets are *re-ranked* by that position — i.e. the curve is restricted
to the cells that actually exist.  For a grid that is itself a power-of-two
hypercube the rank equals the raw curve position, so nothing changes in the
cases the paper evaluates.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.grid import Grid

__all__ = [
    "CurveIndexFn",
    "curve_positions",
    "curve_ranks",
    "enclosing_order",
]

#: A curve maps (coords, order) -> position along the curve.
CurveIndexFn = Callable[[Sequence[int], int], int]


def enclosing_order(grid: Grid) -> int:
    """Order ``p`` of the smallest ``2^p``-sided hypercube containing the grid."""
    return max(1, max(grid.bits_per_axis()))


def _vectorized_for(curve: CurveIndexFn):
    """The array-based implementation of a known curve, or ``None``."""
    from repro.sfc import hilbert, zorder

    return {
        hilbert.hilbert_index: hilbert.hilbert_index_array,
        zorder.morton_index: zorder.morton_index_array,
        zorder.gray_index: zorder.gray_index_array,
    }.get(curve)


def curve_positions(grid: Grid, curve: CurveIndexFn) -> np.ndarray:
    """Raw curve position of every bucket, shaped like the grid.

    Uses the vectorized transform when the curve has one (all built-in
    curves do); third-party curves fall back to the per-bucket path.
    """
    order = enclosing_order(grid)
    vectorized = _vectorized_for(curve)
    if vectorized is not None:
        coords = np.indices(grid.dims, dtype=np.int64)
        flat = coords.reshape(grid.ndim, -1).T
        return vectorized(flat, order).reshape(grid.dims)
    positions = np.empty(grid.dims, dtype=np.int64)
    for coords in grid.iter_buckets():
        positions[coords] = curve(coords, order)
    return positions


def curve_ranks(grid: Grid, curve: CurveIndexFn) -> np.ndarray:
    """Rank of every bucket along the curve restricted to the grid.

    Ranks are ``0 .. num_buckets - 1`` and preserve curve order.  For a full
    power-of-two hypercube, ``curve_ranks == curve_positions``.
    """
    positions = curve_positions(grid, curve)
    flat = positions.ravel()
    ranks = np.empty_like(flat)
    ranks[np.argsort(flat, kind="stable")] = np.arange(flat.size)
    return ranks.reshape(grid.dims)
