"""Z-order (Morton) and Gray-code linearizations of a power-of-two grid.

Neither appears in the paper's evaluation; they serve as ablation curves for
HCAM (same round-robin assignment, different linearization), isolating how
much of HCAM's behaviour comes specifically from the Hilbert curve's
locality.

* **Z-order** interleaves the coordinate bits directly.  It is the cheapest
  space-filling curve but takes long jumps, so its locality is weaker than
  Hilbert's.
* **Gray-code order** visits cells so that consecutive interleaved codes
  differ in one bit; it sits between Z-order and Hilbert in locality.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.exceptions import GridError

__all__ = [
    "gray_coords",
    "gray_decode",
    "gray_encode",
    "gray_index",
    "gray_index_array",
    "morton_coords",
    "morton_index",
    "morton_index_array",
]


def _validate(ndim: int, order: int) -> None:
    if ndim < 1:
        raise GridError(f"curve needs ndim >= 1, got {ndim}")
    if order < 1:
        raise GridError(f"curve needs order >= 1, got {order}")


def morton_index(coords: Sequence[int], order: int) -> int:
    """Interleave coordinate bits, axis 0 contributing the most significant.

    Examples
    --------
    >>> [morton_index((x, y), 1) for x in (0, 1) for y in (0, 1)]
    [0, 1, 2, 3]
    """
    ndim = len(coords)
    _validate(ndim, order)
    side = 1 << order
    index = 0
    for c in coords:
        if not 0 <= int(c) < side:
            raise GridError(
                f"coordinate {c} outside [0, {side}) for order {order}"
            )
    for bit in range(order - 1, -1, -1):
        for c in coords:
            index = (index << 1) | ((int(c) >> bit) & 1)
    return index


def morton_coords(index: int, ndim: int, order: int) -> Tuple[int, ...]:
    """Inverse of :func:`morton_index`."""
    _validate(ndim, order)
    total = 1 << (ndim * order)
    index = int(index)
    if not 0 <= index < total:
        raise GridError(f"curve position {index} outside [0, {total})")
    coords = [0] * ndim
    position = ndim * order - 1
    for bit in range(order - 1, -1, -1):
        for axis in range(ndim):
            coords[axis] |= ((index >> position) & 1) << bit
            position -= 1
    return tuple(coords)


def morton_index_array(coords, order: int):
    """Vectorized :func:`morton_index` for a ``(N, ndim)`` array."""
    import numpy as np

    coords = np.asarray(coords, dtype=np.int64)
    if coords.ndim != 2:
        raise GridError(
            f"expected an (N, ndim) coordinate array, got shape "
            f"{coords.shape}"
        )
    num_points, ndim = coords.shape
    _validate(ndim, order)
    side = 1 << order
    if num_points and (coords.min() < 0 or coords.max() >= side):
        raise GridError(
            f"coordinates outside [0, {side}) for order {order}"
        )
    index = np.zeros(num_points, dtype=np.int64)
    for bit in range(order - 1, -1, -1):
        for axis in range(ndim):
            index = (index << 1) | ((coords[:, axis] >> bit) & 1)
    return index


def gray_encode(value: int) -> int:
    """Reflected binary Gray code of ``value``."""
    if value < 0:
        raise GridError(f"Gray code needs a non-negative value, got {value}")
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`."""
    if code < 0:
        raise GridError(f"Gray decode needs a non-negative code, got {code}")
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


def gray_index_array(coords, order: int):
    """Vectorized :func:`gray_index` for a ``(N, ndim)`` array."""
    import numpy as np

    code = morton_index_array(coords, order)
    value = np.zeros_like(code)
    while code.any():
        value ^= code
        code >>= 1
    return value


def gray_index(coords: Sequence[int], order: int) -> int:
    """Rank of a cell in Gray-code order of its interleaved bits.

    The cell visited at rank ``r`` has Morton code ``gray_encode(r)``, so the
    rank of a cell is ``gray_decode(morton_index(cell))``.  Consecutive cells
    differ in exactly one interleaved bit (one coordinate changes by a power
    of two).
    """
    return gray_decode(morton_index(coords, order))


def gray_coords(index: int, ndim: int, order: int) -> Tuple[int, ...]:
    """Inverse of :func:`gray_index`."""
    _validate(ndim, order)
    total = 1 << (ndim * order)
    index = int(index)
    if not 0 <= index < total:
        raise GridError(f"curve position {index} outside [0, {total})")
    return morton_coords(gray_encode(index), ndim, order)
