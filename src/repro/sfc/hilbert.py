"""k-dimensional Hilbert curve, implemented from scratch.

The Hilbert curve visits every point of a ``2^p x ... x 2^p`` (n-dimensional)
grid exactly once, moving one unit step at a time, and never crosses itself.
HCAM (Faloutsos & Bhagwat, PDIS'93) uses it to linearize the bucket grid and
then deals disks round-robin along the curve; the curve's locality is what
gives HCAM its good behaviour on small range queries.

The implementation follows John Skilling's transpose algorithm
("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004): coordinates are
converted to/from a "transposed" form of the Hilbert index with O(n*p) bit
operations, with no recursion and no lookup tables, for any number of
dimensions ``n >= 1`` and order ``p >= 1``.

Both directions are provided and are exact inverses:

* :func:`hilbert_index` — coordinates -> position along the curve,
* :func:`hilbert_coords` — position -> coordinates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.exceptions import GridError

__all__ = [
    "curve_points",
    "hilbert_coords",
    "hilbert_index",
    "hilbert_index_array",
]


def _validate(ndim: int, order: int) -> None:
    if ndim < 1:
        raise GridError(f"Hilbert curve needs ndim >= 1, got {ndim}")
    if order < 1:
        raise GridError(f"Hilbert curve needs order >= 1, got {order}")


def _transpose_to_index(transpose: Sequence[int], ndim: int, order: int) -> int:
    """Interleave the transposed form back into a single integer.

    Bit ``b`` of ``transpose[i]`` becomes bit ``b * ndim + (ndim - 1 - i)``
    of the index (most significant bits come from the highest coordinate
    bit of axis 0).
    """
    index = 0
    for bit in range(order - 1, -1, -1):
        for axis in range(ndim):
            index = (index << 1) | ((transpose[axis] >> bit) & 1)
    return index


def _index_to_transpose(index: int, ndim: int, order: int) -> List[int]:
    """De-interleave an index into its transposed form (inverse of above)."""
    transpose = [0] * ndim
    position = ndim * order - 1
    for bit in range(order - 1, -1, -1):
        for axis in range(ndim):
            transpose[axis] |= ((index >> position) & 1) << bit
            position -= 1
    return transpose


def hilbert_index(coords: Sequence[int], order: int) -> int:
    """Position of ``coords`` along the Hilbert curve of the given order.

    Parameters
    ----------
    coords:
        Point in a ``[0, 2^order)^n`` hypercube.
    order:
        Bits per coordinate, ``p``.

    Returns
    -------
    int
        Curve position in ``[0, 2^(n*p))``.

    Examples
    --------
    >>> [hilbert_index((x, y), 1) for x in (0, 1) for y in (0, 1)]
    [0, 1, 3, 2]
    """
    ndim = len(coords)
    _validate(ndim, order)
    side = 1 << order
    x = [int(c) for c in coords]
    for c in x:
        if not 0 <= c < side:
            raise GridError(
                f"coordinate {c} outside [0, {side}) for order {order}"
            )

    # Skilling: inverse undo of the excess work (top bit down to bit 1).
    q = 1 << (order - 1)
    while q > 1:
        mask = q - 1
        for axis in range(ndim):
            if x[axis] & q:
                x[0] ^= mask  # invert low bits of axis 0
            else:
                swap = (x[0] ^ x[axis]) & mask
                x[0] ^= swap
                x[axis] ^= swap
        q >>= 1

    # Gray encode.
    for axis in range(1, ndim):
        x[axis] ^= x[axis - 1]
    flip = 0
    q = 1 << (order - 1)
    while q > 1:
        if x[ndim - 1] & q:
            flip ^= q - 1
        q >>= 1
    for axis in range(ndim):
        x[axis] ^= flip

    return _transpose_to_index(x, ndim, order)


def hilbert_coords(index: int, ndim: int, order: int) -> Tuple[int, ...]:
    """Coordinates of the point at ``index`` along the curve.

    Exact inverse of :func:`hilbert_index`.

    Examples
    --------
    >>> hilbert_coords(2, 2, 1)
    (1, 1)
    """
    _validate(ndim, order)
    total = 1 << (ndim * order)
    index = int(index)
    if not 0 <= index < total:
        raise GridError(f"curve position {index} outside [0, {total})")

    x = _index_to_transpose(index, ndim, order)

    # Gray decode.
    flip = x[ndim - 1] >> 1
    for axis in range(ndim - 1, 0, -1):
        x[axis] ^= x[axis - 1]
    x[0] ^= flip

    # Undo excess work (bit 1 up to the top bit).
    q = 2
    top = 1 << (order - 1)
    while q <= top:
        mask = q - 1
        for axis in range(ndim - 1, -1, -1):
            if x[axis] & q:
                x[0] ^= mask
            else:
                swap = (x[0] ^ x[axis]) & mask
                x[0] ^= swap
                x[axis] ^= swap
        q <<= 1

    return tuple(x)


def hilbert_index_array(coords, order: int):
    """Vectorized :func:`hilbert_index` for a ``(N, ndim)`` array.

    A faithful numpy port of the same Skilling transform: the bit-level
    loops run ``order * ndim`` times regardless of N, with every
    operation vectorized across the N points.  Used by HCAM to rank
    large grids hundreds of times faster than the scalar path; the test
    suite pins exact agreement with :func:`hilbert_index`.
    """
    import numpy as np

    coords = np.asarray(coords, dtype=np.int64)
    if coords.ndim != 2:
        raise GridError(
            f"expected an (N, ndim) coordinate array, got shape "
            f"{coords.shape}"
        )
    num_points, ndim = coords.shape
    _validate(ndim, order)
    side = 1 << order
    if num_points and (coords.min() < 0 or coords.max() >= side):
        raise GridError(
            f"coordinates outside [0, {side}) for order {order}"
        )
    x = coords.T.copy()  # shape (ndim, N)

    # Inverse undo of the excess work.
    q = 1 << (order - 1)
    while q > 1:
        mask = q - 1
        for axis in range(ndim):
            has_bit = (x[axis] & q) != 0
            # Where the bit is set: invert low bits of axis 0.
            x[0] = np.where(has_bit, x[0] ^ mask, x[0])
            # Elsewhere: swap the low bits of axis 0 and this axis.
            swap = np.where(has_bit, 0, (x[0] ^ x[axis]) & mask)
            x[0] ^= swap
            x[axis] ^= swap
        q >>= 1

    # Gray encode.
    for axis in range(1, ndim):
        x[axis] ^= x[axis - 1]
    flip = np.zeros(num_points, dtype=np.int64)
    q = 1 << (order - 1)
    while q > 1:
        flip = np.where((x[ndim - 1] & q) != 0, flip ^ (q - 1), flip)
        q >>= 1
    for axis in range(ndim):
        x[axis] ^= flip

    # Interleave the transposed form into indices.
    index = np.zeros(num_points, dtype=np.int64)
    for bit in range(order - 1, -1, -1):
        for axis in range(ndim):
            index = (index << 1) | ((x[axis] >> bit) & 1)
    return index


def curve_points(ndim: int, order: int) -> List[Tuple[int, ...]]:
    """The whole curve as a point sequence (small orders; mainly for tests).

    Successive points differ in exactly one coordinate by exactly one —
    the defining unit-step property.
    """
    _validate(ndim, order)
    return [
        hilbert_coords(i, ndim, order) for i in range(1 << (ndim * order))
    ]
