"""Space-filling-curve substrate: Hilbert, Z-order, and Gray-code curves.

These linearize a k-dimensional bucket grid into a single sequence; HCAM
(:mod:`repro.schemes.hilbert_scheme`) deals disks round-robin along the
Hilbert curve, and the ablation schemes do the same along the other curves.
"""

from repro.sfc.hilbert import (
    curve_points,
    hilbert_coords,
    hilbert_index,
    hilbert_index_array,
)
from repro.sfc.ordering import curve_positions, curve_ranks, enclosing_order
from repro.sfc.zorder import (
    gray_coords,
    gray_decode,
    gray_encode,
    gray_index,
    gray_index_array,
    morton_coords,
    morton_index,
    morton_index_array,
)

__all__ = [
    "hilbert_index",
    "hilbert_coords",
    "hilbert_index_array",
    "morton_index_array",
    "gray_index_array",
    "curve_points",
    "morton_index",
    "morton_coords",
    "gray_encode",
    "gray_decode",
    "gray_index",
    "gray_coords",
    "curve_positions",
    "curve_ranks",
    "enclosing_order",
]
