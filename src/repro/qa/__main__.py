"""``python -m repro.qa`` — run the full QA gate."""

import sys

from repro.qa.runner import main

if __name__ == "__main__":
    sys.exit(main())
