"""AST-linter driver: load sources, run every rule, collect findings.

The linter parses each file exactly once into a :class:`~repro.qa.rules.Project`
and hands that to the rules — module-scope rules see one file at a time,
project-scope rules (registry sync, scheme reachability) see all of them.
Files that fail to parse produce a ``QA001`` finding instead of aborting the
run, so one syntax error cannot hide every other diagnostic.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.qa.diagnostics import Finding, Severity
from repro.qa.rules import LintRule, ModuleSource, Project, all_rules

__all__ = [
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_project",
]

#: Rule id for files the parser rejects outright.
SYNTAX_RULE_ID = "QA001"


def _display_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def _iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.exists():
            yield path
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def load_project(
    paths: Sequence[Union[str, Path]],
    root: Optional[Union[str, Path]] = None,
) -> Tuple[Project, List[Finding]]:
    """Parse every ``.py`` file under ``paths``.

    Returns the project plus ``QA001`` findings for unparseable files.
    Display paths are made relative to ``root`` when given, which keeps
    finding fingerprints stable across machines and working directories.
    """
    root_path = Path(root) if root is not None else None
    project = Project()
    errors: List[Finding] = []
    for path in _iter_python_files(paths):
        display = _display_path(path, root_path)
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule=SYNTAX_RULE_ID,
                    severity=Severity.ERROR,
                    file=display,
                    line=exc.lineno or 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        project.modules[display] = ModuleSource(
            path=display, source=source, tree=tree
        )
    return project, errors


def lint_project(
    project: Project, rules: Optional[Sequence[LintRule]] = None
) -> List[Finding]:
    """Run every rule over an already-loaded project."""
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if rule.scope == "project":
            findings.extend(rule.check_project(project))
        else:
            for module in project:
                findings.extend(rule.check_module(module, project))
    return sorted(findings)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    root: Optional[Union[str, Path]] = None,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Load ``paths`` and lint them; the main library entry point."""
    project, errors = load_project(paths, root=root)
    return sorted(errors + lint_project(project, rules=rules))


def lint_source(
    source: str,
    path: str = "snippet.py",
    extra_modules: Optional[Dict[str, str]] = None,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint an in-memory snippet — the harness the rule tests are built on.

    ``extra_modules`` maps display paths to additional sources (e.g. a fake
    ``core/registry.py``) so project-scope rules can be exercised without
    touching the filesystem.
    """
    project = Project()
    sources = {path: source, **(extra_modules or {})}
    errors: List[Finding] = []
    for display, text in sources.items():
        try:
            tree = ast.parse(text, filename=display)
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule=SYNTAX_RULE_ID,
                    severity=Severity.ERROR,
                    file=display,
                    line=exc.lineno or 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        project.modules[display] = ModuleSource(
            path=display, source=text, tree=tree
        )
    return sorted(errors + lint_project(project, rules=rules))
