"""Orchestration for the QA gate: lint + contracts + baseline + reporting.

Used two ways: ``repro-decluster qa`` (the subparser in :mod:`repro.cli`
calls :func:`add_qa_arguments` / :func:`run_from_args`) and
``python -m repro.qa`` (:func:`main`).  Exit code 0 means no findings
outside the baseline; 1 means new findings; 2 means a usage error.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.qa.contracts import (
    ContractConfig,
    check_backends,
    check_engine,
    check_registry,
)
from repro.qa.diagnostics import (
    Baseline,
    Finding,
    render_json_report,
    render_text_report,
)
from repro.qa.linter import lint_paths
from repro.qa.rules import LintRule, all_rules
from repro.qa.sarif import write_sarif

__all__ = [
    "QAReport",
    "add_qa_arguments",
    "default_lint_targets",
    "main",
    "run_from_args",
    "run_qa",
]

#: Default baseline filename, resolved against the working directory.
#: Committed at the repository root; pre-existing waived findings live
#: there, new findings fail the gate.
DEFAULT_BASELINE = "qa_baseline.json"


def default_lint_target() -> Path:
    """The installed ``repro`` package directory — the core lint target."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_lint_targets() -> "tuple[List[Path], Path]":
    """``(paths, root)`` that ``qa`` lints when no paths are given.

    Always the ``repro`` package; when it is a checkout (``src/repro``
    with sibling ``scripts/``/``benchmarks/`` directories), those ride
    along and the repository root becomes the display root — finding
    fingerprints then read ``src/repro/...``/``scripts/...`` on every
    machine, which is what keeps the committed baseline portable.
    """
    package = default_lint_target()
    if package.parent.name == "src":
        repo_root = package.parent.parent
        extras = [
            repo_root / name
            for name in ("scripts", "benchmarks")
            if (repo_root / name).is_dir()
        ]
        if extras:
            return [package, *extras], repo_root
    return [package], package.parent


@dataclass
class QAReport:
    """Everything one QA run produced, pre-baseline and post-baseline."""

    findings: List[Finding] = field(default_factory=list)
    new: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def render(self, as_json: bool = False) -> str:
        if as_json:
            return render_json_report(self.new, suppressed=len(self.suppressed))
        if not self.findings:
            return "qa: clean — no findings"
        return render_text_report(self.new, suppressed=len(self.suppressed))


def run_qa(
    paths: Optional[Sequence[Union[str, Path]]] = None,
    root: Optional[Union[str, Path]] = None,
    lint: bool = True,
    contracts: bool = True,
    schemes: Optional[Sequence[str]] = None,
    contract_config: Optional[ContractConfig] = None,
    baseline: Optional[Baseline] = None,
    flow: bool = True,
) -> QAReport:
    """Run the requested passes and partition findings against the baseline.

    ``flow=False`` drops the rules that build the whole-project flow
    graph (the QA6xx reachability family) — useful when linting isolated
    snippets where cross-module reachability is meaningless.
    """
    findings: List[Finding] = []
    if lint:
        if paths is None:
            paths, default_root = default_lint_targets()
            root = root if root is not None else default_root
        rules: Optional[List[LintRule]] = None
        if not flow:
            rules = [rule for rule in all_rules() if not rule.uses_flow]
        findings.extend(lint_paths(paths, root=root, rules=rules))
    if contracts:
        findings.extend(check_registry(contract_config, names=schemes))
        findings.extend(check_engine(contract_config))
        findings.extend(check_backends(contract_config))
    findings.sort()
    report = QAReport(findings=findings)
    baseline = baseline or Baseline()
    report.new, report.suppressed = baseline.split(findings)
    return report


def add_qa_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``qa`` options to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to lint (default: the repro package, "
        "plus scripts/ and benchmarks/ when run from a checkout)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline suppression file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="OUT.json",
        help="also write a SARIF 2.1.0 log (baseline-suppressed findings "
        "are included with suppression records)",
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the AST linter"
    )
    parser.add_argument(
        "--no-flow",
        action="store_true",
        help="skip the whole-project flow analysis rules (QA6xx "
        "reachability family)",
    )
    parser.add_argument(
        "--no-contracts",
        action="store_true",
        help="skip the scheme-contract checker",
    )
    parser.add_argument(
        "--schemes",
        default=None,
        help="comma-separated registry names to contract-check "
        "(default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller contract-check matrix (fast smoke configuration)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list lint rules and exit",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed ``qa`` invocation; returns the exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(
                f"{rule.rule_id}  {rule.severity.value:7s} "
                f"[{rule.scope}] {rule.title}"
            )
        return 0
    if args.no_lint and args.no_contracts:
        print("qa: nothing to do (both passes disabled)", file=sys.stderr)
        return 2
    config = ContractConfig()
    if args.quick:
        config = config.scaled_down()
    schemes = None
    if args.schemes is not None:
        schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    baseline_path = Path(args.baseline)
    baseline = Baseline.load(baseline_path)
    try:
        report = run_qa(
            paths=args.paths or None,
            lint=not args.no_lint,
            contracts=not args.no_contracts,
            schemes=schemes,
            contract_config=config,
            baseline=baseline,
            flow=not args.no_flow,
        )
    except OSError as exc:
        print(f"qa: error: {exc}", file=sys.stderr)
        return 2
    if args.sarif:
        write_sarif(args.sarif, report.findings, baseline)
    if args.write_baseline:
        accepted = Baseline.from_findings(report.findings)
        accepted.save(baseline_path, report.findings)
        print(
            f"qa: baseline written to {baseline_path} "
            f"({len(report.findings)} finding(s) accepted)"
        )
        return 0
    print(report.render(as_json=args.json))
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.qa``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa",
        description=(
            "Project-specific static analysis: AST lint rules plus the "
            "declustering scheme-contract checker"
        ),
    )
    add_qa_arguments(parser)
    return run_from_args(parser.parse_args(argv))
