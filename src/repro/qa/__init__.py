"""Project-specific static analysis and scheme-contract checking.

The ``repro.qa`` package is the repository's correctness-tooling layer.
It has three parts:

* :mod:`repro.qa.diagnostics` — the shared :class:`~repro.qa.diagnostics.Finding`
  vocabulary, text/JSON reporters, and the baseline-suppression file that
  lets existing findings be burned down incrementally.
* :mod:`repro.qa.linter` + :mod:`repro.qa.rules` — an AST linter with rules
  specific to this reproduction (scheme/registry hygiene, seeded randomness,
  float comparisons in response-time code, ``__all__`` coverage).
* :mod:`repro.qa.contracts` — a runtime checker that verifies, for every
  registered declustering scheme, the ``disk_of``/``allocate`` contract the
  paper's results depend on: total, deterministic, in ``[0, M)``, and
  self-consistent.

Run everything with ``repro-decluster qa`` or ``python -m repro.qa``.
"""

from __future__ import annotations

from repro.qa.contracts import ContractConfig, check_registry, check_scheme
from repro.qa.diagnostics import (
    Baseline,
    Finding,
    Severity,
    parse_json_report,
    render_json_report,
    render_text_report,
)
from repro.qa.linter import lint_paths, lint_source
from repro.qa.runner import main, run_qa

__all__ = [
    "Baseline",
    "ContractConfig",
    "Finding",
    "Severity",
    "check_registry",
    "check_scheme",
    "lint_paths",
    "lint_source",
    "main",
    "parse_json_report",
    "render_json_report",
    "render_text_report",
    "run_qa",
]
