"""Project-specific static analysis and scheme-contract checking.

The ``repro.qa`` package is the repository's correctness-tooling layer.
It has three parts:

* :mod:`repro.qa.diagnostics` — the shared :class:`~repro.qa.diagnostics.Finding`
  vocabulary, text/JSON reporters, and the baseline-suppression file that
  lets existing findings be burned down incrementally.
* :mod:`repro.qa.linter` + :mod:`repro.qa.rules` — an AST linter with rules
  specific to this reproduction (scheme/registry hygiene, seeded randomness,
  float comparisons in response-time code, ``__all__`` coverage).
* :mod:`repro.qa.flow` — a whole-project symbol table, reference graph,
  and worker-reachability marking; the QA6xx concurrency-safety and
  QA7xx vectorization rule families are built on it, and
  :mod:`repro.qa.sarif` renders any run as a SARIF 2.1.0 log for
  code-scanning UIs.
* :mod:`repro.qa.contracts` — a runtime checker that verifies, for every
  registered declustering scheme, the ``disk_of``/``allocate`` contract the
  paper's results depend on: total, deterministic, in ``[0, M)``, and
  self-consistent.

Run everything with ``repro-decluster qa`` or ``python -m repro.qa``.
"""

from __future__ import annotations

from repro.qa.contracts import ContractConfig, check_registry, check_scheme
from repro.qa.diagnostics import (
    Baseline,
    Finding,
    Severity,
    parse_json_report,
    render_json_report,
    render_text_report,
)
from repro.qa.linter import lint_paths, lint_source
from repro.qa.runner import main, run_qa
from repro.qa.sarif import render_sarif, write_sarif

__all__ = [
    "Baseline",
    "ContractConfig",
    "Finding",
    "Severity",
    "check_registry",
    "check_scheme",
    "lint_paths",
    "lint_source",
    "main",
    "parse_json_report",
    "render_json_report",
    "render_sarif",
    "render_text_report",
    "run_qa",
    "write_sarif",
]
