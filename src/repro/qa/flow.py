"""Whole-project flow analysis: symbols, reference graph, worker marking.

PRs 2-5 turned the reproduction into a parallel system — spawn pools,
``/dev/shm`` allocation sharing, process-safe metrics — and the bug
classes that bit those PRs are *cross-module*: a worker-submitted
function three calls away from a module-global write, an shm handle
acquired in one function and (not) released in another.  The
single-module AST rules (QA1xx-QA5xx) cannot see those chains.  This
module builds the project-wide structures the QA6xx/QA7xx rule families
(:mod:`repro.qa.rules.concurrency`, :mod:`repro.qa.rules.vectorization`)
consume:

* a **symbol table** over every parsed module — module-level function
  defs, class methods, module-level globals, and each module's import
  aliases (``import numpy as np``, ``from repro.core import shm``,
  relative intra-package forms included);
* a **reference graph**: caller → callee edges for every resolvable
  function *reference* (not just call sites — a function stored in a
  dispatch dict or passed to ``pool.submit`` counts, which is exactly
  how the experiment runner fans work out);
* **worker-reachable marking**: a BFS from the pool seeds — functions
  passed to ``.submit(...)`` / ``.map(...)`` / ``apply_async`` /
  ``Process(target=...)`` and ``initializer=`` keywords (the
  ``runner._run_parallel`` pool initializer is found this way, not by
  name) — so a rule can ask "can this statement execute inside a spawn
  worker?".

Resolution is deliberately *static and approximate*.  Names and
module-attribute chains resolve exactly through the import table;
method calls (``obj.method(...)``) resolve only when at most
:data:`METHOD_CANDIDATE_LIMIT` classes in the project define that method
name and the name is not a ubiquitous container verb
(:data:`METHOD_NAME_STOPLIST`).  References to a class mark every method
of the class (constructing an object hands the callee all of its
behavior).  The result over-approximates mildly and under-approximates
where Python is genuinely dynamic; both directions are acceptable for a
lint gate with a pragma/baseline escape hatch.

Everything here is pure AST work — nothing is imported or executed, so
a module with a concurrency bug cannot crash the analyzer meant to flag
it.  Build cost over the whole package is tens of milliseconds; the
graph is memoized per :class:`~repro.qa.rules.Project` via
:func:`get_flow`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.qa.rules import ModuleSource, Project, dotted_name

__all__ = [
    "FunctionInfo",
    "GlobalVar",
    "ModuleFlow",
    "ProjectFlow",
    "get_flow",
    "module_dotted_name",
]

#: Method names too generic to resolve by name alone — edges through
#: them would mostly point at dict/list/set look-alikes, not project
#: methods.
METHOD_NAME_STOPLIST = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "extend",
        "format", "get", "index", "insert", "items", "join", "keys",
        "load", "open", "pop", "read", "remove", "save", "setdefault",
        "sort", "split", "strip", "update", "values", "write",
    }
)

#: A method reference resolves only when this few classes define the name.
METHOD_CANDIDATE_LIMIT = 3

#: Attribute-call names that submit their first positional argument to a
#: worker pool.
_SUBMIT_METHODS = frozenset(
    {"submit", "map", "apply_async", "starmap", "imap", "imap_unordered"}
)

#: Async offload calls: name -> positional index of the callable they
#: run on a worker thread.  ``loop.run_in_executor(executor, func,
#: ...)`` carries its callable second; ``asyncio.to_thread(func, ...)``
#: first.  Without these seeds the whole thread-side of an asyncio
#: server is invisible to the reachability pass.
_ASYNC_OFFLOAD_CALLS = {"run_in_executor": 1, "to_thread": 0}

#: Callee names whose ``target=`` / ``initializer=`` keyword runs in a
#: child process (or a pool worker).
_WORKER_KEYWORD_CALLEES = frozenset(
    {"Process", "ProcessPoolExecutor", "Pool", "ThreadPoolExecutor",
     "Thread"}
)
_WORKER_KEYWORDS = frozenset({"initializer", "target"})

#: Call results treated as freshly built mutable containers when they
#: initialize a module-level global.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
     "deque", "Counter"}
)


def module_dotted_name(path: str) -> str:
    """Dotted module name for a display path.

    ``src/repro/core/shm.py`` → ``repro.core.shm``;
    ``repro/qa/__init__.py`` → ``repro.qa``; a bare ``snippet.py`` →
    ``snippet``.  Standalone files (``scripts/foo.py``) keep their
    directory as a pseudo-package, which is harmless — resolution only
    ever compares these names with each other.
    """
    name = path[:-3] if path.endswith(".py") else path
    if name.startswith("src/"):
        name = name[len("src/"):]
    name = name.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    fq: str
    module: ModuleSource
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]

    @property
    def display(self) -> str:
        """Short human label: ``func`` or ``Class.method``."""
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass
class GlobalVar:
    """One module-level binding (candidate shared state)."""

    name: str
    module: ModuleSource
    lineno: int
    mutable: bool


def _is_mutable_initializer(value: ast.expr) -> bool:
    if isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
         ast.SetComp),
    ):
        return True
    if isinstance(value, ast.Call):
        dotted = dotted_name(value.func)
        if dotted is not None:
            return dotted.split(".")[-1] in _MUTABLE_FACTORIES
    return False


def _bind_import(imports: Dict[str, str], node: ast.Import) -> None:
    for alias in node.names:
        if alias.asname:
            imports[alias.asname] = alias.name
        else:
            # ``import a.b.c`` binds ``a``; chains through it resolve to
            # the full dotted path naturally.
            root = alias.name.split(".")[0]
            imports[root] = root


def _bind_import_from(
    imports: Dict[str, str], node: ast.ImportFrom, dotted: str,
    is_package: bool,
) -> None:
    if node.level == 0:
        base = node.module or ""
    else:
        parts = dotted.split(".")
        if not is_package:
            parts = parts[:-1]
        drop = node.level - 1
        parts = parts[: len(parts) - drop] if drop else parts
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
    for alias in node.names:
        if alias.name == "*":
            continue
        bound = alias.asname or alias.name
        imports[bound] = f"{base}.{alias.name}" if base else alias.name


@dataclass
class ModuleFlow:
    """Symbols of one module: imports, functions, classes, globals."""

    module: ModuleSource
    dotted: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> method FunctionInfos (methods keyed separately in
    #: the project-wide table).
    classes: Dict[str, List[FunctionInfo]] = field(default_factory=dict)
    globals: Dict[str, GlobalVar] = field(default_factory=dict)

    @classmethod
    def build(cls, module: ModuleSource) -> "ModuleFlow":
        dotted = module_dotted_name(module.path)
        is_package = module.path.rsplit("/", 1)[-1] == "__init__.py"
        flow = cls(module=module, dotted=dotted)
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                _bind_import(flow.imports, node)
            elif isinstance(node, ast.ImportFrom):
                _bind_import_from(flow.imports, node, dotted, is_package)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    fq=f"{dotted}.{node.name}", module=module, node=node
                )
                flow.functions[node.name] = info
            elif isinstance(node, ast.ClassDef):
                methods = []
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        methods.append(
                            FunctionInfo(
                                fq=f"{dotted}.{node.name}.{item.name}",
                                module=module,
                                node=item,
                                cls=node.name,
                            )
                        )
                flow.classes[node.name] = methods
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        flow.globals[target.id] = GlobalVar(
                            name=target.id,
                            module=module,
                            lineno=node.lineno,
                            mutable=_is_mutable_initializer(node.value),
                        )
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    flow.globals[node.target.id] = GlobalVar(
                        name=node.target.id,
                        module=module,
                        lineno=node.lineno,
                        mutable=(
                            node.value is not None
                            and _is_mutable_initializer(node.value)
                        ),
                    )
        return flow


def _local_names(func: ast.AST) -> Set[str]:
    """Names bound locally inside a function (params, assigns, targets)."""
    names: Set[str] = set()
    args = func.args  # type: ignore[attr-defined]
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not func:
                names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names - declared_global


def _scope_imports(
    base: Dict[str, str], func: ast.AST, dotted: str, is_package: bool
) -> Dict[str, str]:
    """Module imports overlaid with any imports local to ``func``."""
    overlay: Optional[Dict[str, str]] = None
    for node in ast.walk(func):
        if isinstance(node, ast.Import):
            overlay = dict(base) if overlay is None else overlay
            _bind_import(overlay, node)
        elif isinstance(node, ast.ImportFrom):
            overlay = dict(base) if overlay is None else overlay
            _bind_import_from(overlay, node, dotted, is_package)
    return overlay if overlay is not None else base


class ProjectFlow:
    """The project-wide symbol table, reference graph, and worker set."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleFlow] = {}
        #: fully-qualified name -> FunctionInfo (functions and methods).
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare method name -> fq names of every class method so named.
        self.methods_by_name: Dict[str, List[str]] = {}
        #: dotted class fq -> method fq list.
        self.class_methods: Dict[str, List[str]] = {}
        self.edges: Dict[str, Set[str]] = {}
        #: worker entry points: fq -> description of the seeding site.
        self.seeds: Dict[str, str] = {}
        #: worker-reachable fq -> predecessor fq (None for seeds).
        self._reached: Dict[str, Optional[str]] = {}
        self._module_name_cache: Dict[str, Optional[ModuleFlow]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, project: Project) -> "ProjectFlow":
        flow = cls()
        for module in project:
            mf = ModuleFlow.build(module)
            flow.modules[module.path] = mf
            for info in mf.functions.values():
                flow.functions[info.fq] = info
            for class_name, methods in mf.classes.items():
                class_fq = f"{mf.dotted}.{class_name}"
                flow.class_methods[class_fq] = [m.fq for m in methods]
                for info in methods:
                    flow.functions[info.fq] = info
                    flow.methods_by_name.setdefault(
                        info.name, []
                    ).append(info.fq)
        for mf in flow.modules.values():
            for info in list(mf.functions.values()) + [
                m for ms in mf.classes.values() for m in ms
            ]:
                flow._analyze_function(mf, info)
        flow._mark_workers()
        return flow

    def _resolve_chain(
        self, mf: ModuleFlow, imports: Dict[str, str], chain: str
    ) -> List[str]:
        """Function fqs a dotted reference resolves to (possibly empty).

        A chain resolving to a *class* yields every method of the class:
        a reference to the class constructs (or passes around) instances,
        which makes the whole behavior of the class reachable.
        """
        parts = chain.split(".")
        root = parts[0]
        candidates: List[str] = []
        if root in imports:
            candidates.append(".".join([imports[root]] + parts[1:]))
        if len(parts) == 1:
            if root in mf.functions:
                return [mf.functions[root].fq]
            if root in mf.classes:
                candidates.append(f"{mf.dotted}.{root}")
        elif parts[0] in mf.classes:
            candidates.append(f"{mf.dotted}.{chain}")
        resolved: List[str] = []
        for target in candidates:
            resolved.extend(self._resolve_candidate(target))
        return resolved

    def _module_named(self, dotted: str) -> Optional[ModuleFlow]:
        """The unique module whose dotted name is (or ends with) ``dotted``."""
        if dotted not in self._module_name_cache:
            matches = [
                mf
                for mf in self.modules.values()
                if mf.dotted == dotted
                or mf.dotted.endswith("." + dotted)
            ]
            self._module_name_cache[dotted] = (
                matches[0] if len(matches) == 1 else None
            )
        return self._module_name_cache[dotted]

    def _resolve_candidate(self, target: str) -> List[str]:
        """Function fqs for one dotted candidate.

        Exact lookup first; when display paths do not mirror the import
        layout (linting an ad-hoc directory, absolute paths), fall back
        to locating the *module* by dotted-name suffix and rebasing the
        remainder of the chain onto it.
        """
        if target in self.functions:
            return [target]
        if target in self.class_methods:
            return list(self.class_methods[target])
        parts = target.split(".")
        for split in range(len(parts) - 1, 0, -1):
            mf = self._module_named(".".join(parts[:split]))
            if mf is None:
                continue
            rebased = ".".join([mf.dotted] + parts[split:])
            if rebased == target:
                return []  # already tried exactly this
            if rebased in self.functions:
                return [rebased]
            if rebased in self.class_methods:
                return list(self.class_methods[rebased])
            return []  # the module matched; the attribute does not exist
        return []

    def _analyze_function(self, mf: ModuleFlow, info: FunctionInfo) -> None:
        func = info.node
        is_package = mf.module.path.rsplit("/", 1)[-1] == "__init__.py"
        imports = _scope_imports(
            mf.imports, func, mf.dotted, is_package
        )
        locals_ = _local_names(func)
        edges = self.edges.setdefault(info.fq, set())

        def resolve_expr(expr: ast.expr) -> List[str]:
            chain = dotted_name(expr)
            if chain is None:
                return []
            if chain.split(".")[0] in locals_:
                return []
            return self._resolve_chain(mf, imports, chain)

        class Visitor(ast.NodeVisitor):
            def visit_Name(visitor, node: ast.Name) -> None:  # noqa: N805
                if isinstance(node.ctx, ast.Load):
                    edges.update(resolve_expr(node))

            def visit_Attribute(
                visitor, node: ast.Attribute  # noqa: N805
            ) -> None:
                resolved = resolve_expr(node)
                if resolved:
                    edges.update(resolved)
                    return  # the whole chain matched; don't re-walk it
                visitor.generic_visit(node)

            def visit_Call(visitor, node: ast.Call) -> None:  # noqa: N805
                visitor._method_fallback(node)
                visitor._collect_seeds(node)
                visitor.generic_visit(node)

            def _method_fallback(visitor, node: ast.Call) -> None:  # noqa: N805
                """``obj.method(...)`` where obj is opaque: match by name."""
                func_expr = node.func
                if not isinstance(func_expr, ast.Attribute):
                    return
                if dotted_name(func_expr) is not None and resolve_expr(
                    func_expr
                ):
                    return  # already resolved exactly
                name = func_expr.attr
                if name.startswith("__") or name in METHOD_NAME_STOPLIST:
                    return
                candidates = self.methods_by_name.get(name, ())
                if 1 <= len(candidates) <= METHOD_CANDIDATE_LIMIT:
                    edges.update(candidates)

            def _collect_seeds(visitor, node: ast.Call) -> None:  # noqa: N805
                callee = dotted_name(node.func)
                last = callee.split(".")[-1] if callee else None
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SUBMIT_METHODS
                    and node.args
                ):
                    for fq in resolve_expr(node.args[0]):
                        self.seeds.setdefault(
                            fq,
                            f"{mf.module.path}:{node.lineno} "
                            f".{node.func.attr}(...)",
                        )
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ASYNC_OFFLOAD_CALLS
                ):
                    index = _ASYNC_OFFLOAD_CALLS[node.func.attr]
                    if len(node.args) > index:
                        for fq in resolve_expr(node.args[index]):
                            self.seeds.setdefault(
                                fq,
                                f"{mf.module.path}:{node.lineno} "
                                f".{node.func.attr}(...)",
                            )
                if last in _WORKER_KEYWORD_CALLEES:
                    for keyword in node.keywords:
                        if keyword.arg in _WORKER_KEYWORDS:
                            for fq in resolve_expr(keyword.value):
                                self.seeds.setdefault(
                                    fq,
                                    f"{mf.module.path}:{node.lineno} "
                                    f"{last}({keyword.arg}=...)",
                                )

        visitor = Visitor()
        for statement in func.body:  # type: ignore[attr-defined]
            visitor.visit(statement)

    def _mark_workers(self) -> None:
        queue: List[str] = []
        for fq in sorted(self.seeds):
            self._reached[fq] = None
            queue.append(fq)
        while queue:
            current = queue.pop()
            for callee in sorted(self.edges.get(current, ())):
                if callee not in self._reached:
                    self._reached[callee] = current
                    queue.append(callee)

    # -- queries --------------------------------------------------------

    def function_at(
        self, module: ModuleSource, node: ast.AST
    ) -> Optional[FunctionInfo]:
        """The FunctionInfo whose def node is ``node``, if indexed."""
        mf = self.modules.get(module.path)
        if mf is None:
            return None
        for info in mf.functions.values():
            if info.node is node:
                return info
        for methods in mf.classes.values():
            for info in methods:
                if info.node is node:
                    return info
        return None

    def is_worker_reachable(self, fq: str) -> bool:
        """Whether ``fq`` can execute inside a pool worker."""
        return fq in self._reached

    def worker_chain(self, fq: str) -> List[str]:
        """Seed-to-``fq`` path justifying reachability (empty if none)."""
        if fq not in self._reached:
            return []
        chain = [fq]
        seen = {fq}
        current: Optional[str] = fq
        while current is not None:
            current = self._reached.get(current)
            if current is None or current in seen:
                break
            seen.add(current)
            chain.append(current)
        return list(reversed(chain))

    def worker_seed_of(self, fq: str) -> Optional[str]:
        """The seed fq from which ``fq`` was reached, if any."""
        chain = self.worker_chain(fq)
        return chain[0] if chain else None

    def worker_functions(self) -> Iterable[Tuple[str, FunctionInfo]]:
        """All worker-reachable (fq, info) pairs, sorted by fq."""
        for fq in sorted(self._reached):
            info = self.functions.get(fq)
            if info is not None:
                yield fq, info


def get_flow(project: Project) -> ProjectFlow:
    """The memoized :class:`ProjectFlow` for a parsed project."""
    flow = project.analysis.get("flow")
    if not isinstance(flow, ProjectFlow):
        flow = ProjectFlow.build(project)
        project.analysis["flow"] = flow
    return flow
