"""SARIF 2.1.0 emission for QA findings.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest — GitHub's security tab renders it inline on pull requests.
The emitter here maps the :class:`~repro.qa.diagnostics.Finding`
vocabulary onto a single-run SARIF log:

* every registered lint rule (and any rule id that only appears in the
  findings, e.g. the contract checker's QA4xx) becomes a ``rules`` entry
  on the tool driver;
* each finding becomes a ``result`` with a physical location and the
  same line-number-free fingerprint the baseline uses, published under
  ``partialFingerprints`` so scanning UIs track findings across edits
  exactly as the baseline gate does;
* baseline-suppressed findings are still emitted, but carry a
  ``suppressions`` entry — SARIF viewers show them greyed out instead of
  silently dropping the history.

Pure JSON construction; no third-party SARIF library is involved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.qa.diagnostics import Baseline, Finding, Severity

__all__ = [
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "render_sarif",
    "write_sarif",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Key under which the baseline fingerprint is published.
_FINGERPRINT_KEY = "reproQa/v1"

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_metadata(findings: Sequence[Finding]) -> List[Dict[str, object]]:
    """SARIF ``rules`` entries for every rule that could appear."""
    from repro.qa.linter import SYNTAX_RULE_ID
    from repro.qa.rules import all_rules

    entries: Dict[str, Dict[str, object]] = {
        SYNTAX_RULE_ID: {
            "id": SYNTAX_RULE_ID,
            "shortDescription": {"text": "file fails to parse"},
            "defaultConfiguration": {"level": "error"},
        }
    }
    for rule in all_rules():
        entries[rule.rule_id] = {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.title},
            "defaultConfiguration": {"level": _LEVELS[rule.severity]},
        }
    for finding in findings:
        entries.setdefault(
            finding.rule,
            {
                "id": finding.rule,
                "shortDescription": {"text": finding.rule},
                "defaultConfiguration": {
                    "level": _LEVELS[finding.severity]
                },
            },
        )
    return [entries[rule_id] for rule_id in sorted(entries)]


def _result(
    finding: Finding, index: Dict[str, int], baseline: Baseline
) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "ruleIndex": index[finding.rule],
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.file},
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
        "partialFingerprints": {_FINGERPRINT_KEY: finding.fingerprint},
    }
    if baseline.is_suppressed(finding):
        result["suppressions"] = [
            {
                "kind": "external",
                "justification": "accepted in the committed QA baseline",
            }
        ]
    return result


def render_sarif(
    findings: Iterable[Finding],
    baseline: Optional[Baseline] = None,
) -> str:
    """The SARIF log (a JSON string) for one QA run."""
    findings = sorted(findings)
    baseline = baseline or Baseline()
    rules = _rule_metadata(findings)
    index = {
        str(entry["id"]): position for position, entry in enumerate(rules)
    }
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-qa",
                        "rules": rules,
                    }
                },
                "results": [
                    _result(finding, index, baseline)
                    for finding in findings
                ],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def write_sarif(
    path: Union[str, Path],
    findings: Iterable[Finding],
    baseline: Optional[Baseline] = None,
) -> None:
    """Write :func:`render_sarif` output to ``path``."""
    Path(path).write_text(render_sarif(findings, baseline) + "\n")
