"""Reproducibility rules: all randomness must flow through seeded Generators.

An experiment that consumes global PRNG state cannot be replayed, and a
scheme that draws unseeded randomness breaks the ``disk_of`` determinism
contract.  The library convention is explicit ``numpy.random.Generator``
objects built with ``numpy.random.default_rng(seed)``; these rules ban the
two ways code drifts away from that — the stdlib ``random`` module and
numpy's legacy global-state API — plus the subtle third (``default_rng()``
with no seed argument).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.qa.diagnostics import Finding, Severity
from repro.qa.rules import (
    LintRule,
    ModuleSource,
    Project,
    dotted_name,
    register_rule,
)

__all__ = [
    "LegacyNumpyRandomRule",
    "StdlibRandomRule",
    "UnseededDefaultRngRule",
]

#: numpy.random attributes that are part of the Generator-based API and
#: therefore allowed; everything else on ``np.random`` is legacy global state.
ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "SFC64",
    "MT19937",
}


@register_rule
class StdlibRandomRule(LintRule):
    """QA201: the stdlib ``random`` module is banned in library code."""

    rule_id = "QA201"
    title = "stdlib random module used"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.finding(
                            module.path,
                            node.lineno,
                            "stdlib `random` is unseedable per-callsite; "
                            "use numpy.random.default_rng(seed)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        module.path,
                        node.lineno,
                        "import from stdlib `random`; use "
                        "numpy.random.default_rng(seed)",
                    )


@register_rule
class LegacyNumpyRandomRule(LintRule):
    """QA202: legacy ``np.random.*`` global-state calls are banned."""

    rule_id = "QA202"
    title = "legacy numpy.random global-state API"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Call, ast.Attribute)):
                continue
            target = node.func if isinstance(node, ast.Call) else node
            dotted = dotted_name(target)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) < 3 or parts[-2] != "random":
                continue
            if parts[0] not in ("np", "numpy"):
                continue
            attr = parts[-1]
            if attr in ALLOWED_NP_RANDOM:
                continue
            # Only flag each site once, at the call when there is one.
            if isinstance(node, ast.Attribute):
                continue
            yield self.finding(
                module.path,
                node.lineno,
                f"numpy legacy global-state call `{dotted}`; draw from an "
                f"explicit numpy.random.Generator instead",
            )


@register_rule
class UnseededDefaultRngRule(LintRule):
    """QA203: ``default_rng()`` must receive an explicit seed/Generator."""

    rule_id = "QA203"
    title = "unseeded default_rng()"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if dotted.split(".")[-1] != "default_rng":
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    module.path,
                    node.lineno,
                    "default_rng() without a seed draws from OS entropy; "
                    "pass an explicit seed or Generator",
                )
