"""Correctness-style rules: float equality, mutable defaults, ``__all__``.

The float-equality rule exists because the response-time pipeline mixes
integer bucket counts with float means and deviations; an ``==`` against a
float is exact-representation roulette and has already produced subtly wrong
"fraction optimal" numbers in other reproductions.  Mutable default
arguments silently share state across calls — fatal for scheme factories the
registry is expected to return fresh.  ``__all__`` keeps the public surface
of each module explicit, which both reviewers and the API docs rely on.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.qa.diagnostics import Finding, Severity
from repro.qa.rules import (
    LintRule,
    ModuleSource,
    Project,
    dotted_name,
    register_rule,
)

__all__ = [
    "DunderAllDefinedRule",
    "FloatEqualityRule",
    "MissingDunderAllRule",
    "MutableDefaultRule",
]


def _is_floatish(node: ast.expr) -> bool:
    """Whether ``node`` is statically known to produce a float."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        return dotted is not None and dotted.split(".")[-1] == "float"
    return False


@register_rule
class FloatEqualityRule(LintRule):
    """QA301: no ``==``/``!=`` against float values."""

    rule_id = "QA301"
    title = "exact equality against a float"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_floatish(operand) for operand in operands):
                yield self.finding(
                    module.path,
                    node.lineno,
                    "exact ==/!= against a float; use math.isclose, "
                    "numpy.isclose, or an integer/ordering comparison",
                )


#: Calls producing a fresh mutable object each evaluation — equally wrong
#: as a default because the *one* evaluation is shared by every call.
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "defaultdict"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is not None:
            return dotted.split(".")[-1] in _MUTABLE_FACTORIES
    return False


@register_rule
class MutableDefaultRule(LintRule):
    """QA302: no mutable default arguments."""

    rule_id = "QA302"
    title = "mutable default argument"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module.path,
                        default.lineno,
                        f"mutable default argument in {label!r}; default to "
                        f"None and create the object inside the function",
                    )


def _top_level_definitions(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (defs, classes, assigns, imports)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for inner in ast.walk(target):
                    if isinstance(inner, ast.Name):
                        names.add(inner.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name.split(".")[0]
                names.add(bound)
        elif isinstance(node, (ast.If, ast.Try)):
            # One level of conditional definitions (TYPE_CHECKING blocks,
            # optional-dependency fallbacks) is enough for this codebase.
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                    names.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            names.add(
                                alias.asname or alias.name.split(".")[0]
                            )
    return names


def _dunder_all(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return node
    return None


def _has_public_definitions(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if not node.name.startswith("_"):
                return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and not target.id.startswith(
                    "_"
                ):
                    return True
    return False


@register_rule
class MissingDunderAllRule(LintRule):
    """QA303: public modules must declare ``__all__``."""

    rule_id = "QA303"
    title = "public module without __all__"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        if not module.is_public:
            return
        if module.path.rsplit("/", 1)[-1] == "conftest.py":
            return  # pytest collects fixtures by decorator, not __all__
        if not _has_public_definitions(module.tree):
            return
        if _dunder_all(module.tree) is None:
            yield self.finding(
                module.path,
                1,
                "public module defines names but no __all__; declare the "
                "intended public surface explicitly",
            )


@register_rule
class DunderAllDefinedRule(LintRule):
    """QA304: every ``__all__`` entry must exist at module top level."""

    rule_id = "QA304"
    title = "__all__ names an undefined attribute"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        assign = _dunder_all(module.tree)
        if assign is None:
            return
        value = assign.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return
        entries: List[ast.Constant] = [
            element
            for element in value.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ]
        defined = _top_level_definitions(module.tree)
        for entry in entries:
            if entry.value not in defined:
                yield self.finding(
                    module.path,
                    entry.lineno,
                    f"__all__ lists {entry.value!r} which is not defined "
                    f"or imported at module top level",
                )
