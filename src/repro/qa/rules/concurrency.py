"""Concurrency-safety rules (QA6xx): spawn workers, shm lifetimes, pools.

The parallel experiment runner fans work out over *spawn* process pools
(PR 2), shares allocation tables over ``/dev/shm`` (PR 4), and ships
observability payloads back from workers (PR 5).  Each of those PRs was
bitten by the same small family of bugs, which these rules now catch
statically:

* **QA601** — a worker-reachable function writes module-level state.
  Under the spawn start method every worker rebuilds module globals on
  import, so such writes silently diverge per process: the parent never
  sees them, ``--workers N`` and serial runs drift apart.  Uses the
  :mod:`repro.qa.flow` reference graph to follow the chain from
  ``pool.submit``/``initializer=`` seeds across modules.
* **QA602** — an shm resource (``share_allocation``/``attach_allocation``
  /``_open_segment``/``SharedMemory(create=True)``/arena ``try_create``)
  is acquired without *guaranteed* teardown: no context manager, no
  ``close``/``unlink`` in a ``finally``/``except``, and the handle never
  escapes the function (returned, stored on ``self`` or in a
  module-level ledger).  Exactly the leak class
  ``scripts/check_shm_leaks.py`` exists to catch at runtime — this rule
  catches it before the segment ever leaks.
* **QA603** — a lambda or nested function is submitted to a *process*
  pool (``ProcessPoolExecutor``/``multiprocessing.Pool``/``Process``).
  Spawn pickles the callable by qualified name; closures and lambdas
  fail at runtime, often only on the platform whose default start
  method differs from the developer's.
* **QA604** — fork-only assumptions: ``os.fork()`` or an explicit
  ``"fork"`` start method.  The runner is spawn-safe by construction
  (every worker re-imports the package); fork would resurrect exactly
  the implicit-inheritance globals QA601 bans.

All four accept the reason-mandatory waiver pragma, e.g.
``# qa601: allow — per-process segment ledger, results are returned``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.qa.diagnostics import Finding, Severity
from repro.qa.rules import (
    LintRule,
    ModuleSource,
    Project,
    dotted_name,
    register_rule,
)

__all__ = [
    "ForkAssumptionRule",
    "ShmTeardownRule",
    "UnpicklableSubmissionRule",
    "WorkerGlobalWriteRule",
]

#: Method calls that mutate a container in place.
_MUTATOR_METHODS = frozenset(
    {
        "add", "append", "clear", "discard", "extend", "insert",
        "pop", "popitem", "remove", "setdefault", "update",
    }
)

#: Callables that hand back an shm resource needing deterministic
#: teardown.  Matched on the last component of the dotted callee.
_SHM_ACQUIRERS = frozenset(
    {"share_allocation", "attach_allocation", "_open_segment",
     "try_create"}
)

#: Methods whose call on a handle counts as teardown.
_TEARDOWN_METHODS = frozenset(
    {"close", "unlink", "shutdown", "terminate", "release"}
)

#: Free functions whose call (with the handle as an argument) counts as
#: teardown or an ownership transfer to a ledger.
_TEARDOWN_FUNCTIONS = frozenset({"unlink_segment", "detach_all"})

#: Constructors whose ``target=``/``initializer=`` (and submitted
#: callables) must pickle under spawn.
_PROCESS_POOL_TYPES = frozenset(
    {"ProcessPoolExecutor", "Pool", "Process"}
)

_SUBMIT_METHODS = frozenset(
    {"submit", "map", "apply_async", "starmap", "imap", "imap_unordered"}
)


def _last(chain: Optional[str]) -> Optional[str]:
    return chain.split(".")[-1] if chain else None


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _walk_scope(root: ast.AST) -> Iterable[ast.AST]:
    """Descendants of ``root`` that belong to its own scope.

    Like :func:`ast.walk` but does not descend into nested function
    definitions or lambdas — those are separate scopes and get their own
    pass, so a call inside a nested def is never scanned twice.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class WorkerGlobalWriteRule(LintRule):
    """QA601: worker-reachable code writes module-level state."""

    rule_id = "QA601"
    title = "module global written by worker-reachable code"
    severity = Severity.ERROR
    scope = "project"
    uses_flow = True

    def check_project(self, project: Project) -> Iterable[Finding]:
        from repro.qa.flow import get_flow

        flow = get_flow(project)
        for fq, info in flow.worker_functions():
            mf = flow.modules.get(info.module.path)
            if mf is None:
                continue
            module = info.module
            globals_ = mf.globals
            declared: Set[str] = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Global):
                    declared.update(node.names)
            locals_: Set[str] = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    if node.id not in declared:
                        locals_.add(node.id)

            def is_global(name: str) -> bool:
                if name in declared:
                    return True
                return name in globals_ and name not in locals_

            seed = flow.worker_seed_of(fq) or fq
            seen_lines: Set[Tuple[str, int]] = set()

            def emit(
                name: str, lineno: int, how: str
            ) -> Iterable[Finding]:
                if (name, lineno) in seen_lines:
                    return
                seen_lines.add((name, lineno))
                suppressed, replacement = self.pragma_gate(module, lineno)
                if replacement is not None:
                    yield replacement
                    return
                if suppressed:
                    return
                var = globals_.get(name)
                kind = (
                    "mutable module global"
                    if var is not None and var.mutable
                    else "module global"
                )
                yield self.finding(
                    module.path,
                    lineno,
                    f"{kind} {name!r} is {how} by {info.display!r}, "
                    f"which is worker-reachable (from pool entry point "
                    f"{seed!r}); spawn workers rebuild module state, so "
                    f"this write silently diverges per process — return "
                    f"the result instead of mutating shared state",
                )

            for node in ast.walk(info.node):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Name) and (
                            target.id in declared
                        ):
                            yield from emit(
                                target.id, node.lineno, "rebound"
                            )
                        elif isinstance(
                            target, (ast.Subscript, ast.Attribute)
                        ):
                            base = target.value
                            while isinstance(
                                base, (ast.Subscript, ast.Attribute)
                            ):
                                base = base.value
                            if isinstance(base, ast.Name) and is_global(
                                base.id
                            ):
                                yield from emit(
                                    base.id, node.lineno, "mutated"
                                )
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        base = target
                        while isinstance(
                            base, (ast.Subscript, ast.Attribute)
                        ):
                            base = base.value
                        if isinstance(base, ast.Name) and is_global(
                            base.id
                        ):
                            yield from emit(base.id, node.lineno, "mutated")
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr not in _MUTATOR_METHODS:
                        continue
                    base = node.func.value
                    if isinstance(base, ast.Name) and is_global(base.id):
                        yield from emit(
                            base.id,
                            node.lineno,
                            f"mutated (.{node.func.attr}())",
                        )


def _is_shm_acquirer(node: ast.Call) -> bool:
    last = _last(dotted_name(node.func))
    if last is None:
        return False
    if last == "SharedMemory":
        for keyword in node.keywords:
            if keyword.arg == "create" and isinstance(
                keyword.value, ast.Constant
            ):
                return bool(keyword.value.value)
        return False
    return last in _SHM_ACQUIRERS


def _names_in(expr: ast.AST) -> Set[str]:
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name)
    }


@register_rule
class ShmTeardownRule(LintRule):
    """QA602: shm acquisition without guaranteed teardown."""

    rule_id = "QA602"
    title = "shared-memory resource without guaranteed teardown"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        # Each function is its own scope; module top-level statements
        # form one more (scripts acquire segments outside any def).
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            yield from self._check_scope(module, scope)

    def _check_scope(
        self, module: ModuleSource, func: ast.AST
    ) -> Iterable[Finding]:
        parents = _parent_map(func)
        # Names torn down inside a finally/except, and names that escape
        # the function (ownership transferred), collected up front.
        torn_down = self._teardown_names(func)
        escaping = self._escaping_names(func)
        module_globals = self._module_global_names(module)

        for node in _walk_scope(func):
            if not isinstance(node, ast.Call) or not _is_shm_acquirer(node):
                continue
            if self._is_protected(
                node, parents, torn_down, escaping, module_globals
            ):
                continue
            suppressed, replacement = self.pragma_gate(module, node.lineno)
            if replacement is not None:
                yield replacement
                continue
            if suppressed:
                continue
            callee = _last(dotted_name(node.func))
            yield self.finding(
                module.path,
                node.lineno,
                f"shm resource from {callee}() has no guaranteed "
                f"teardown: wrap the use in try/finally (or a context "
                f"manager) calling close()/unlink(), or transfer "
                f"ownership explicitly (return it / record it on a "
                f"module-level ledger)",
            )

    @staticmethod
    def _module_global_names(module: ModuleSource) -> Set[str]:
        names: Set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
        return names

    @staticmethod
    def _teardown_names(func: ast.AST) -> Set[str]:
        """Names ``v`` with ``v.close()``-style calls in finally/except."""
        names: Set[str] = set()
        for node in ast.walk(func):
            cleanup_bodies: List[List[ast.stmt]] = []
            if isinstance(node, ast.Try):
                if node.finalbody:
                    cleanup_bodies.append(node.finalbody)
                for handler in node.handlers:
                    cleanup_bodies.append(handler.body)
            for body in cleanup_bodies:
                for stmt in body:
                    for call in ast.walk(stmt):
                        if not isinstance(call, ast.Call):
                            continue
                        if isinstance(call.func, ast.Attribute):
                            if call.func.attr in _TEARDOWN_METHODS:
                                base = call.func.value
                                if isinstance(base, ast.Name):
                                    names.add(base.id)
                        last = _last(dotted_name(call.func))
                        if last in _TEARDOWN_FUNCTIONS:
                            for arg in call.args:
                                names.update(_names_in(arg))
        return names

    def _escaping_names(self, func: ast.AST) -> Set[str]:
        """Names whose value leaves the function's ownership.

        Only *top-level* names count: ``return handle`` transfers the
        handle, ``return handle.name`` returns a string and still leaks
        the mapping.
        """
        escaping: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None:
                    escaping.update(self._top_level_names(value))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        # Stored into a container/attribute that outlives
                        # the call frame (self.x, LEDGER[k], obj.attr).
                        escaping.update(
                            self._top_level_names(node.value)
                        )
        return escaping

    @classmethod
    def _top_level_names(cls, expr: ast.expr) -> Set[str]:
        """Names handed over whole by ``expr`` (not mere subexpressions)."""
        if isinstance(expr, ast.Name):
            return {expr.id}
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            names: Set[str] = set()
            for element in expr.elts:
                names.update(cls._top_level_names(element))
            return names
        if isinstance(expr, ast.Dict):
            names = set()
            for value in expr.values:
                if value is not None:
                    names.update(cls._top_level_names(value))
            return names
        if isinstance(expr, ast.IfExp):
            return cls._top_level_names(expr.body) | cls._top_level_names(
                expr.orelse
            )
        return set()

    def _is_protected(
        self,
        call: ast.Call,
        parents: Dict[ast.AST, ast.AST],
        torn_down: Set[str],
        escaping: Set[str],
        module_globals: Set[str],
    ) -> bool:
        # 1. Managed directly: the acquirer is a `with` context expression.
        node: ast.AST = call
        assigned: Optional[str] = None
        direct_escape = False
        while node in parents:
            parent = parents[node]
            if isinstance(parent, ast.withitem):
                if parent.context_expr is node:
                    return True  # the acquirer IS the context manager
            if isinstance(parent, ast.Try) and node in parent.body:
                if parent.finalbody:
                    return True  # acquired inside try-with-finally
            if isinstance(parent, ast.Assign) and parent.value is node:
                for target in parent.targets:
                    if isinstance(target, ast.Name):
                        assigned = target.id
                    elif isinstance(
                        target, (ast.Subscript, ast.Attribute)
                    ):
                        direct_escape = True
            if isinstance(
                parent, (ast.Return, ast.Yield, ast.YieldFrom)
            ):
                direct_escape = True
            if isinstance(parent, ast.Call) and parent is not call:
                # The handle feeds another call whose result is consumed
                # (e.g. ``return attach(share(...))``) — keep climbing;
                # protection is decided by what happens above.
                pass
            node = parent
        if direct_escape:
            return True
        if assigned is not None:
            if assigned in torn_down or assigned in escaping:
                return True
            if assigned in module_globals:
                return True  # rebinding a module-level ledger name
        return False


@register_rule
class UnpicklableSubmissionRule(LintRule):
    """QA603: lambdas/closures submitted to a process pool."""

    rule_id = "QA603"
    title = "unpicklable callable submitted to a process pool"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            yield from self._check_scope(module, scope)

    def _check_scope(
        self, module: ModuleSource, scope: ast.AST
    ) -> Iterable[Finding]:
        own = list(_walk_scope(scope))
        pool_names = self._pool_names(own)
        lambda_names = {
            target.id
            for node in own
            if isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Lambda)
            for target in node.targets
            if isinstance(target, ast.Name)
        }
        # A def nested anywhere inside a *function* scope pickles by a
        # qualified name spawn cannot import; module-level defs are fine.
        if isinstance(scope, ast.Module):
            nested_defs: Set[str] = set()
        else:
            nested_defs = {
                node.name
                for node in ast.walk(scope)
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                and node is not scope
            }
        for node in own:
            if not isinstance(node, ast.Call):
                continue
            submitted: List[ast.expr] = []
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pool_names
                and node.args
            ):
                submitted.append(node.args[0])
            if _last(dotted_name(node.func)) in _PROCESS_POOL_TYPES:
                for keyword in node.keywords:
                    if keyword.arg in ("target", "initializer"):
                        submitted.append(keyword.value)
            for expr in submitted:
                yield from self._check_callable(
                    module, expr, nested_defs, lambda_names
                )

    @staticmethod
    def _pool_names(own: Sequence[ast.AST]) -> Set[str]:
        """Scope-local names bound to process-pool objects."""
        names: Set[str] = set()
        for node in own:
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                if _last(
                    dotted_name(node.value.func)
                ) in _PROCESS_POOL_TYPES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Call)
                        and _last(dotted_name(expr.func))
                        in _PROCESS_POOL_TYPES
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        names.add(item.optional_vars.id)
        return names

    def _check_callable(
        self,
        module: ModuleSource,
        expr: ast.expr,
        nested_defs: Set[str],
        lambda_names: Set[str],
    ) -> Iterable[Finding]:
        problem: Optional[str] = None
        if isinstance(expr, ast.Lambda):
            problem = "a lambda"
        elif isinstance(expr, ast.Name):
            if expr.id in nested_defs:
                problem = f"nested function {expr.id!r}"
            elif expr.id in lambda_names:
                problem = f"lambda-valued name {expr.id!r}"
        elif isinstance(expr, ast.Call) and _last(
            dotted_name(expr.func)
        ) == "partial":
            if expr.args:
                yield from self._check_callable(
                    module, expr.args[0], nested_defs, lambda_names
                )
            return
        if problem is None:
            return
        suppressed, replacement = self.pragma_gate(module, expr.lineno)
        if replacement is not None:
            yield replacement
            return
        if suppressed:
            return
        yield self.finding(
            module.path,
            expr.lineno,
            f"{problem} is submitted to a process pool; spawn pickles "
            f"callables by qualified name, so closures and lambdas fail "
            f"at runtime — move the callable to module level",
        )


@register_rule
class ForkAssumptionRule(LintRule):
    """QA604: fork-only multiprocessing in a spawn-safe codebase."""

    rule_id = "QA604"
    title = "fork-only multiprocessing assumption"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._violation(node)
            if message is None:
                continue
            suppressed, replacement = self.pragma_gate(
                module, node.lineno
            )
            if replacement is not None:
                yield replacement
                continue
            if suppressed:
                continue
            yield self.finding(module.path, node.lineno, message)

    @staticmethod
    def _violation(node: ast.Call) -> Optional[str]:
        chain = dotted_name(node.func)
        last = _last(chain)
        if chain is not None and (
            chain == "os.fork" or chain.endswith(".os.fork")
        ):
            return (
                "os.fork() assumes forked children inherit module "
                "state; the runner is spawn-safe by construction — use "
                "a spawn-context pool and pass state explicitly"
            )
        if last in ("get_context", "set_start_method") and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and first.value == "fork":
                return (
                    f"{last}('fork') pins the fork start method; "
                    f"workers must stay spawn-safe (fork silently "
                    f"inherits globals that diverge from the parent) — "
                    f"use 'spawn'"
                )
        return None
