"""Vectorization/perf rules (QA7xx): keep the hot paths batch-shaped.

PR 4's batch engine made query evaluation ~7x faster (BENCH_batch.json)
by replacing per-record python loops with whole-array numpy kernels.
That win erodes silently: a scalar ``for`` loop or an untyped
``np.fromiter`` creeping into ``core/engine.py`` costs nothing at review
time and everything at benchmark time.  These rules guard the designated
**hot regions**:

* ``core/engine.py`` and ``core/cost.py`` — whole modules;
* ``core/backends/`` — the whole directory: every kernel backend is a
  hot path by definition;
* ``schemes/*.py`` functions whose name contains ``disk_array`` (the
  per-scheme allocation kernels the engine batches over);
* any function carrying a ``# qa7: hot`` marker comment (opt-in for new
  kernels before they earn a dedicated path here).

One carve-out: functions decorated with a JIT compiler (``@njit`` and
friends) are excluded from every hot region — their scalar loops are
compiled to native code, exactly what these rules push python code
toward, not a regression.

The rules:

* **QA701** — a python-level ``for`` loop iterates an ndarray (or a
  ``zip``/``enumerate`` over one) in a hot region.  Iterate in numpy,
  not in python.
* **QA702** — ``np.fromiter``/``np.array`` without an explicit
  ``dtype=`` (and ``fromiter`` without ``count=``) in a hot region:
  dtype inference walks the input twice and can land on ``object``.
* **QA703** — object-dtype array creation (``dtype=object``): an object
  array is a python list wearing an ndarray costume; every ufunc on it
  falls back to scalar dispatch.
* **QA704** — element-wise fancy indexing ``arr[i]`` inside a loop over
  ``i`` in a hot region, where a single batched gather (``arr[idx]``
  with an index array) does the same work in one kernel.

Array-ness is tracked by lightweight local **provenance**: names bound
from numpy-alias calls, array-returning methods (``reshape``/``astype``
/...), array arithmetic, sliced subscripts, and parameters annotated
``np.ndarray``/``NDArray``.  Approximate by design — false negatives
are acceptable (the benchmarks still gate), false positives get the
reason-bearing ``# qa70N: allow — <why>`` pragma.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.qa.diagnostics import Finding, Severity
from repro.qa.rules import (
    LintRule,
    ModuleSource,
    Project,
    dotted_name,
    register_rule,
)

__all__ = [
    "HotNdarrayLoopRule",
    "LoopElementGatherRule",
    "ObjectDtypeRule",
    "UntypedArrayConstructionRule",
]

#: Modules that are hot in their entirety.
_HOT_MODULE_SUFFIXES = ("repro/core/engine.py", "repro/core/cost.py")

#: Directories hot in their entirety — every kernel backend is a hot
#: path by definition, whatever its file name.
_HOT_DIR_FRAGMENTS = ("repro/core/backends/",)

#: Scheme allocation kernels: hot when the function name says so.
_SCHEMES_DIR = "repro/schemes/"
_HOT_SCHEME_TOKEN = "disk_array"

#: Opt-in marker for functions not covered by the path rules.
_HOT_MARKER = re.compile(r"#\s*qa7:\s*hot\b")

#: Decorator names that JIT-compile a function to native code.  Scalar
#: loops inside them are the *product*, not a missed vectorization — the
#: QA7xx rules exist to keep interpreted numpy code batch-shaped, so
#: jitted functions are carved out of every hot region.
_JIT_DECORATORS = frozenset({"njit", "jit", "vectorize", "guvectorize"})

#: Methods whose result on an array is still an array.
_ARRAY_METHODS = frozenset(
    {
        "astype", "clip", "compress", "copy", "cumprod", "cumsum",
        "flatten", "ravel", "repeat", "reshape", "round", "squeeze",
        "swapaxes", "take", "transpose", "view",
    }
)

#: numpy functions returning scalars (drop provenance through them).
_SCALAR_NUMPY_FUNCS = frozenset(
    {
        "all", "allclose", "any", "array_equal", "count_nonzero",
        "isscalar", "max", "mean", "median", "min", "ndim", "prod",
        "ptp", "size", "std", "sum", "var",
    }
)

#: Builtins that iterate their array arguments element-wise.
_ITER_WRAPPERS = frozenset({"enumerate", "reversed", "zip"})


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the numpy package (``np``, ``numpy``, ...)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith(
                    "numpy."
                ):
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def _is_ndarray_annotation(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return "ndarray" in node.value or "NDArray" in node.value
    if isinstance(node, ast.Subscript):
        return _is_ndarray_annotation(node.value)
    dotted = dotted_name(node)
    if dotted is None:
        return False
    last = dotted.split(".")[-1]
    return last in ("ndarray", "NDArray")


class HotRegions:
    """Which lines of a module the QA7xx rules apply to."""

    def __init__(self, module: ModuleSource) -> None:
        normalized = module.path.replace("\\", "/")
        self.module_hot = any(
            normalized.endswith(suffix)
            for suffix in _HOT_MODULE_SUFFIXES
        ) or any(
            fragment in normalized for fragment in _HOT_DIR_FRAGMENTS
        )
        self.spans: List[Tuple[int, int]] = []
        lines = module.source.splitlines()
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        function_lines: Set[int] = set()
        self.cold_spans: List[Tuple[int, int]] = []
        for func in functions:
            end = func.end_lineno or func.lineno
            function_lines.update(range(func.lineno, end + 1))
            if any(
                (dotted_name(d) or dotted_name(getattr(d, "func", d)) or "")
                .split(".")[-1]
                in _JIT_DECORATORS
                for d in func.decorator_list
            ):
                self.cold_spans.append((func.lineno, end))
        if not self.module_hot:
            # A marker outside every function makes the module hot.
            for index, line in enumerate(lines, start=1):
                if index not in function_lines and _HOT_MARKER.search(
                    line
                ):
                    self.module_hot = True
                    break
        in_schemes = (
            _SCHEMES_DIR in module.path
            or module.path.startswith(_SCHEMES_DIR.split("/", 1)[-1])
        )
        for func in functions:
            end = func.end_lineno or func.lineno
            hot = in_schemes and _HOT_SCHEME_TOKEN in func.name
            if not hot:
                hot = any(
                    _HOT_MARKER.search(lines[i - 1])
                    for i in range(func.lineno, min(end, len(lines)) + 1)
                )
            if hot:
                self.spans.append((func.lineno, end))

    def is_hot(self, lineno: int) -> bool:
        if any(
            start <= lineno <= end for start, end in self.cold_spans
        ):
            return False
        if self.module_hot:
            return True
        return any(start <= lineno <= end for start, end in self.spans)

    @property
    def any_hot(self) -> bool:
        return self.module_hot or bool(self.spans)


def get_hot_regions(module: ModuleSource, project: Project) -> HotRegions:
    cache = project.analysis.setdefault("hot_regions", {})
    assert isinstance(cache, dict)
    regions = cache.get(module.path)
    if not isinstance(regions, HotRegions):
        regions = HotRegions(module)
        cache[module.path] = regions
    return regions


class Provenance:
    """Array-valued local names of one scope, by fixpoint over assigns."""

    def __init__(
        self,
        statements: Sequence[ast.stmt],
        aliases: Set[str],
        func: Optional[ast.AST] = None,
    ) -> None:
        self.aliases = aliases
        self.names: Set[str] = set()
        if func is not None:
            args = func.args  # type: ignore[attr-defined]
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            ):
                if arg.annotation is not None and _is_ndarray_annotation(
                    arg.annotation
                ):
                    self.names.add(arg.arg)
        changed = True
        while changed:
            changed = False
            for stmt in statements:
                for node in ast.walk(stmt):
                    target: Optional[str] = None
                    value: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign):
                        value = node.value
                        for t in node.targets:
                            if isinstance(t, ast.Name):
                                target = t.id
                    elif isinstance(node, ast.AnnAssign) and isinstance(
                        node.target, ast.Name
                    ):
                        target = node.target.id
                        if _is_ndarray_annotation(node.annotation):
                            value = None
                            if target not in self.names:
                                self.names.add(target)
                                changed = True
                            continue
                        value = node.value
                    elif isinstance(node, ast.AugAssign) and isinstance(
                        node.target, ast.Name
                    ):
                        target = node.target.id
                        value = node.value
                    if (
                        target is not None
                        and value is not None
                        and target not in self.names
                        and self.is_array(value)
                    ):
                        self.names.add(target)
                        changed = True

    def is_array(self, expr: ast.expr) -> bool:
        """Whether ``expr`` plausibly evaluates to an ndarray."""
        if isinstance(expr, ast.Name):
            return expr.id in self.names
        if isinstance(expr, ast.Attribute):
            if expr.attr == "T":
                return self.is_array(expr.value)
            return False
        if isinstance(expr, ast.Subscript):
            # Sliced views stay arrays; a plain ``arr[i]`` may be scalar.
            if not self.is_array(expr.value):
                return False
            return self._slice_keeps_array(expr.slice)
        if isinstance(expr, ast.BinOp):
            return self.is_array(expr.left) or self.is_array(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self.is_array(expr.operand)
        if isinstance(expr, ast.IfExp):
            return self.is_array(expr.body) or self.is_array(expr.orelse)
        if isinstance(expr, ast.Call):
            chain = dotted_name(expr.func)
            if chain is not None:
                parts = chain.split(".")
                if parts[0] in self.aliases and len(parts) > 1:
                    return parts[-1] not in _SCALAR_NUMPY_FUNCS
            if isinstance(expr.func, ast.Attribute):
                if expr.func.attr in _ARRAY_METHODS:
                    return self.is_array(expr.func.value)
            return False
        return False

    @staticmethod
    def _slice_keeps_array(node: ast.expr) -> bool:
        if isinstance(node, ast.Slice):
            return True
        if isinstance(node, ast.Tuple):
            return any(
                isinstance(element, ast.Slice) for element in node.elts
            )
        return False


def _scopes(
    module: ModuleSource,
) -> Iterable[Tuple[Optional[ast.AST], List[ast.stmt]]]:
    """(function, statements) pairs: each def, plus module top level."""
    top = [
        stmt
        for stmt in module.tree.body
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    yield None, top
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            body = [
                stmt
                for stmt in node.body
                if not isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
            ]
            yield node, body


class _HotRuleBase(LintRule):
    """Shared scaffolding: skip modules with no hot region at all."""

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        regions = get_hot_regions(module, project)
        if not regions.any_hot:
            return
        aliases = _numpy_aliases(module.tree)
        if not aliases:
            return
        yield from self.check_hot(module, project, regions, aliases)

    def check_hot(
        self,
        module: ModuleSource,
        project: Project,
        regions: HotRegions,
        aliases: Set[str],
    ) -> Iterable[Finding]:
        return ()

    def gated(
        self, module: ModuleSource, lineno: int, message: str
    ) -> Iterable[Finding]:
        suppressed, replacement = self.pragma_gate(module, lineno)
        if replacement is not None:
            yield replacement
            return
        if suppressed:
            return
        yield self.finding(module.path, lineno, message)


@register_rule
class HotNdarrayLoopRule(_HotRuleBase):
    """QA701: python ``for`` loop iterating an ndarray on a hot path."""

    rule_id = "QA701"
    title = "python loop over an ndarray in a hot region"
    severity = Severity.ERROR

    def check_hot(
        self,
        module: ModuleSource,
        project: Project,
        regions: HotRegions,
        aliases: Set[str],
    ) -> Iterable[Finding]:
        for func, statements in _scopes(module):
            prov = Provenance(statements, aliases, func)
            for stmt in statements:
                for node in ast.walk(stmt):
                    if not isinstance(node, (ast.For, ast.AsyncFor)):
                        continue
                    if not regions.is_hot(node.lineno):
                        continue
                    described = self._describe_iteration(node.iter, prov)
                    if described is None:
                        continue
                    yield from self.gated(
                        module,
                        node.lineno,
                        f"python-level for loop iterates {described} in "
                        f"a hot region; each iteration pays scalar "
                        f"dispatch — replace with whole-array numpy ops "
                        f"(the batch engine's speedup depends on it)",
                    )

    @staticmethod
    def _describe_iteration(
        iter_expr: ast.expr, prov: Provenance
    ) -> Optional[str]:
        if prov.is_array(iter_expr):
            chain = dotted_name(iter_expr)
            return f"ndarray {chain!r}" if chain else "an ndarray"
        if isinstance(iter_expr, ast.Call):
            chain = dotted_name(iter_expr.func)
            last = chain.split(".")[-1] if chain else None
            if last in _ITER_WRAPPERS and any(
                prov.is_array(arg) for arg in iter_expr.args
            ):
                return f"an ndarray through {last}()"
        return None


@register_rule
class UntypedArrayConstructionRule(_HotRuleBase):
    """QA702: ``np.fromiter``/``np.array`` without dtype on a hot path."""

    rule_id = "QA702"
    title = "untyped array construction in a hot region"
    severity = Severity.ERROR

    def check_hot(
        self,
        module: ModuleSource,
        project: Project,
        regions: HotRegions,
        aliases: Set[str],
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not regions.is_hot(node.lineno):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            if parts[0] not in aliases or len(parts) < 2:
                continue
            name = parts[-1]
            if name not in ("array", "fromiter"):
                continue
            keywords = {kw.arg for kw in node.keywords if kw.arg}
            missing: List[str] = []
            if "dtype" not in keywords and len(node.args) < 2:
                missing.append("dtype=")
            if name == "fromiter":
                if "count" not in keywords and len(node.args) < 3:
                    missing.append("count=")
            if not missing:
                continue
            wanted = " and ".join(missing)
            detail = (
                "dtype inference materializes the iterable twice and can "
                "land on object dtype"
                if name == "fromiter"
                else "dtype inference can land on float64/object "
                "surprises"
            )
            yield from self.gated(
                module,
                node.lineno,
                f"{chain}() without {wanted} in a hot region; {detail} "
                f"— state the element type (and length) explicitly",
            )


@register_rule
class ObjectDtypeRule(LintRule):
    """QA703: object-dtype array creation (anywhere)."""

    rule_id = "QA703"
    title = "object-dtype ndarray creation"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        aliases = _numpy_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._creates_object_array(node, aliases):
                continue
            suppressed, replacement = self.pragma_gate(
                module, node.lineno
            )
            if replacement is not None:
                yield replacement
                continue
            if suppressed:
                continue
            yield self.finding(
                module.path,
                node.lineno,
                "object-dtype array creation: an object array is a "
                "python list in ndarray costume — every ufunc falls "
                "back to per-element dispatch; use a numeric dtype or "
                "a plain list",
            )

    @staticmethod
    def _is_object_dtype(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name) and expr.id == "object":
            return True
        if isinstance(expr, ast.Constant) and expr.value in (
            "object",
            "O",
        ):
            return True
        dotted = dotted_name(expr)
        return dotted is not None and dotted.split(".")[-1] in (
            "object_",
            "object",
        )

    def _creates_object_array(
        self, node: ast.Call, aliases: Set[str]
    ) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "dtype" and self._is_object_dtype(
                keyword.value
            ):
                return True
        chain = dotted_name(node.func)
        if chain is not None:
            parts = chain.split(".")
            if (
                parts[0] in aliases
                and len(parts) > 1
                and parts[-1] in ("array", "empty", "full", "zeros",
                                  "ones", "fromiter")
                and len(node.args) >= 2
                and self._is_object_dtype(node.args[1])
            ):
                return True
        return False


@register_rule
class LoopElementGatherRule(_HotRuleBase):
    """QA704: element-wise ``arr[i]`` in a loop where a gather batches."""

    rule_id = "QA704"
    title = "element-wise indexing inside a loop in a hot region"
    severity = Severity.ERROR

    def check_hot(
        self,
        module: ModuleSource,
        project: Project,
        regions: HotRegions,
        aliases: Set[str],
    ) -> Iterable[Finding]:
        for func, statements in _scopes(module):
            prov = Provenance(statements, aliases, func)
            for stmt in statements:
                for node in ast.walk(stmt):
                    if not isinstance(node, (ast.For, ast.AsyncFor)):
                        continue
                    if not isinstance(node.target, ast.Name):
                        continue
                    if not regions.is_hot(node.lineno):
                        continue
                    yield from self._check_loop(module, node, prov)

    def _check_loop(
        self, module: ModuleSource, loop: ast.For, prov: Provenance
    ) -> Iterable[Finding]:
        loop_var = loop.target.id  # type: ignore[union-attr]
        seen_lines: Set[int] = set()
        for node in ast.walk(loop):
            if node is loop:
                continue
            if isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                # The inner loop's own variable gets its own pass.
                continue
            if not isinstance(node, ast.Subscript):
                continue
            if not self._indexes_by(node, loop_var):
                continue
            if not prov.is_array(node.value):
                continue
            if node.lineno in seen_lines:
                continue
            seen_lines.add(node.lineno)
            base = dotted_name(node.value) or "the array"
            yield from self.gated(
                module,
                node.lineno,
                f"{base}[{loop_var}] gathers one element per loop "
                f"iteration in a hot region; index once with the whole "
                f"index array ({base}[indices]) or vectorize the loop "
                f"body",
            )

    @staticmethod
    def _indexes_by(node: ast.Subscript, loop_var: str) -> bool:
        index = node.slice
        if isinstance(index, ast.Name):
            return index.id == loop_var
        if isinstance(index, ast.Tuple) and index.elts:
            first = index.elts[0]
            return isinstance(first, ast.Name) and first.id == loop_var
        return False
