"""Robustness rules: no silent failure swallowing.

With the fault-injection subsystem in place (:mod:`repro.faults`), error
handling is itself load-bearing correctness logic: a swallowed exception
in the runner's retry loop, the degraded planner, or a checkpoint write
turns a recoverable fault into a silently wrong report.  Two rules ban
the patterns that make failures invisible:

* **QA501** — a bare ``except:`` catches ``KeyboardInterrupt`` and
  ``SystemExit`` along with everything else; the handler cannot even name
  what it intercepted.
* **QA502** — ``except Exception:`` (or ``BaseException``) whose body is
  only ``pass``/``...`` discards the failure without recording, retrying,
  or re-raising.  Broad catches are fine — the self-healing runner relies
  on them — but only when the handler *does* something with the failure.

QA502 supports an **explicit whitelist pragma** for the rare handler
whose swallowing is deliberate and audited (e.g. the shared-memory
broker's publish fallback, which logs and counts through
:mod:`repro.obs`): a comment on the ``except`` line of the form ::

    except Exception as exc:  # qa502: allow — <reason>

suppresses the finding, but only when a non-empty reason follows the
``allow``.  A bare ``# qa502: allow`` is itself reported — the whole
point is that the waiver documents *why*.  The same mechanism (shared
via :func:`repro.qa.rules.pragma_status`) backs the QA6xx/QA7xx flow
rules.

* **QA503** — loading a cache-controlled artifact (``np.load``,
  ``open_memmap``, ``ctypes.CDLL``) anywhere outside the
  integrity-verified helpers (:mod:`repro.core.integrity`).  A mapped
  ``.npy`` or a ``CDLL``-loaded ``.so`` that skipped verification is
  exactly the silent-wrong-answers path the integrity layer exists to
  close; the few legitimate call sites (the verified open itself, a
  build writing its own staged partial) carry a reasoned
  ``# qa503: allow — <why>`` waiver on the call's first or last line.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.qa.diagnostics import Finding, Severity
from repro.qa.rules import (
    LintRule,
    ModuleSource,
    Project,
    dotted_name,
    register_rule,
)

__all__ = [
    "BareExceptRule",
    "SilentBroadExceptRule",
    "UnverifiedArtifactLoadRule",
]

#: Exception names whose silent swallowing is always a hazard.
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _names_broad_exception(node: ast.expr) -> bool:
    """Whether an ``except`` type expression includes Exception/BaseException."""
    if isinstance(node, ast.Tuple):
        return any(_names_broad_exception(element) for element in node.elts)
    dotted = dotted_name(node)
    return (
        dotted is not None
        and dotted.split(".")[-1] in _BROAD_EXCEPTIONS
    )


def _body_is_silent(body: Iterable[ast.stmt]) -> bool:
    """Whether a handler body does nothing: only ``pass``, ``...``, docstrings."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # bare string/Ellipsis expression
        return False
    return True


@register_rule
class BareExceptRule(LintRule):
    """QA501: no bare ``except:`` clauses."""

    rule_id = "QA501"
    title = "bare except clause"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module.path,
                    node.lineno,
                    "bare except catches everything including "
                    "KeyboardInterrupt/SystemExit; name the exception "
                    "type(s) being handled",
                )


@register_rule
class SilentBroadExceptRule(LintRule):
    """QA502: no ``except Exception: pass`` silent swallowing."""

    rule_id = "QA502"
    title = "broad exception silently swallowed"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                continue  # QA501's finding; don't double-report
            if not _names_broad_exception(node.type):
                continue
            suppressed, replacement = self.pragma_gate(
                module, node.lineno
            )
            if replacement is not None:
                yield replacement
                continue
            if suppressed:
                continue  # explicitly whitelisted, with a reason
            if _body_is_silent(node.body):
                yield self.finding(
                    module.path,
                    node.lineno,
                    "except Exception with an empty body swallows every "
                    "failure silently; record, retry, re-raise, or narrow "
                    "the exception type",
                )


#: Dotted call names that load cache-controlled artifacts.  Exact
#: matches only — a generic ``.load`` suffix would flag ``json.load``
#: and friends, which carry no integrity contract here.
_ARTIFACT_LOADERS = {
    "np.load",
    "numpy.load",
    "CDLL",
    "ctypes.CDLL",
    "open_memmap",
    "np.lib.format.open_memmap",
    "numpy.lib.format.open_memmap",
}

#: The module allowed to perform raw artifact reads: it IS the verifier.
_INTEGRITY_MODULE = "repro/core/integrity.py"


@register_rule
class UnverifiedArtifactLoadRule(LintRule):
    """QA503: no raw artifact loads outside the integrity layer."""

    rule_id = "QA503"
    title = "artifact loaded without integrity verification"
    severity = Severity.ERROR

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        if module.path.endswith(_INTEGRITY_MODULE):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted not in _ARTIFACT_LOADERS:
                continue
            # The waiver may sit on the call's first or last physical
            # line — multi-line calls put the closing paren (and the
            # room for a comment) on a different line than the name.
            suppressed, replacement = self.pragma_gate(
                module, node.lineno
            )
            if not suppressed and replacement is None:
                end = getattr(node, "end_lineno", None)
                if end is not None and end != node.lineno:
                    suppressed, replacement = self.pragma_gate(
                        module, end
                    )
            if replacement is not None:
                yield replacement
                continue
            if suppressed:
                continue
            yield self.finding(
                module.path,
                node.lineno,
                f"{dotted} on a cache-controlled artifact bypasses "
                f"integrity verification; go through "
                f"repro.core.integrity / SummedAreaTable.open_mmap, or "
                f"waive with '# qa503: allow — <why this is safe>'",
            )
