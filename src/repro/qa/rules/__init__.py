"""Lint-rule infrastructure and the built-in rule registry.

A rule is a small class with a stable ``rule_id``, a severity, and either a
per-module or a project-wide ``check``.  Project-wide rules see every parsed
module at once — that is what lets repo-specific invariants ("every concrete
scheme class is registered", "registry names and ``PAPER_LABELS`` agree") be
checked statically instead of at import time.

Rules register themselves with :func:`register_rule`; :func:`all_rules`
returns one fresh instance of each, sorted by id.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Type

from repro.qa.diagnostics import Finding, Severity

__all__ = [
    "LintRule",
    "ModuleSource",
    "Project",
    "all_rules",
    "dotted_name",
    "register_rule",
]


@dataclass
class ModuleSource:
    """One parsed source file presented to the rules."""

    path: str
    source: str
    tree: ast.Module

    @property
    def is_public(self) -> bool:
        """Public modules (no leading-underscore basename) need ``__all__``."""
        basename = self.path.rsplit("/", 1)[-1]
        return not basename.startswith("_")


@dataclass
class Project:
    """All modules under analysis, keyed by display path."""

    modules: Dict[str, ModuleSource] = field(default_factory=dict)

    def find(self, suffix: str) -> Optional[ModuleSource]:
        """The unique module whose path ends with ``suffix``, if any."""
        matches = [
            module
            for path, module in self.modules.items()
            if path == suffix or path.endswith("/" + suffix)
        ]
        return matches[0] if len(matches) == 1 else None

    def __iter__(self) -> Iterator[ModuleSource]:
        return iter(self.modules.values())


class LintRule:
    """Base class for all lint rules.

    Subclasses set ``rule_id``/``title``/``severity`` and override either
    :meth:`check_module` (``scope = "module"``) or :meth:`check_project`
    (``scope = "project"``).
    """

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    scope: str = "module"

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        """Findings for one module (module-scope rules)."""
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        """Findings over the whole project (project-scope rules)."""
        return ()

    def finding(
        self, module_path: str, line: int, message: str
    ) -> Finding:
        """Construct a finding attributed to this rule."""
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            file=module_path,
            line=line,
            message=message,
        )


_RULE_CLASSES: List[Type[LintRule]] = []


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding ``cls`` to the built-in rule registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if any(existing.rule_id == cls.rule_id for existing in _RULE_CLASSES):
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _RULE_CLASSES.append(cls)
    return cls


def all_rules() -> List[LintRule]:
    """Fresh instances of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [cls() for cls in sorted(_RULE_CLASSES, key=lambda c: c.rule_id)]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _load_builtin_rules() -> None:
    # Imported lazily so `import repro.qa.rules` has no side-effect cost;
    # each module registers its rules on first import.
    from repro.qa.rules import (  # noqa: F401
        determinism,
        robustness,
        schemes,
        style,
    )
