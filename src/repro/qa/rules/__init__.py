"""Lint-rule infrastructure and the built-in rule registry.

A rule is a small class with a stable ``rule_id``, a severity, and either a
per-module or a project-wide ``check``.  Project-wide rules see every parsed
module at once — that is what lets repo-specific invariants ("every concrete
scheme class is registered", "registry names and ``PAPER_LABELS`` agree") be
checked statically instead of at import time.

Rules register themselves with :func:`register_rule`; :func:`all_rules`
returns one fresh instance of each, sorted by id.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Type

from repro.qa.diagnostics import Finding, Severity

__all__ = [
    "LintRule",
    "ModuleSource",
    "PragmaStatus",
    "Project",
    "all_rules",
    "dotted_name",
    "pragma_status",
    "register_rule",
]


@dataclass
class ModuleSource:
    """One parsed source file presented to the rules."""

    path: str
    source: str
    tree: ast.Module

    @property
    def is_public(self) -> bool:
        """Public modules (no leading-underscore basename) need ``__all__``."""
        basename = self.path.rsplit("/", 1)[-1]
        return not basename.startswith("_")


@dataclass
class Project:
    """All modules under analysis, keyed by display path."""

    modules: Dict[str, ModuleSource] = field(default_factory=dict)
    #: Scratch space for cross-rule analyses (the flow graph lives here,
    #: built once per project by :func:`repro.qa.flow.get_flow`).
    analysis: Dict[str, object] = field(default_factory=dict)

    def find(self, suffix: str) -> Optional[ModuleSource]:
        """The unique module whose path ends with ``suffix``, if any."""
        matches = [
            module
            for path, module in self.modules.items()
            if path == suffix or path.endswith("/" + suffix)
        ]
        return matches[0] if len(matches) == 1 else None

    def __iter__(self) -> Iterator[ModuleSource]:
        return iter(self.modules.values())


class PragmaStatus(enum.Enum):
    """How a source line relates to a rule's ``allow`` pragma."""

    NONE = "none"  #: no pragma on the line
    ALLOWED = "allowed"  #: pragma with a non-empty reason — suppressed
    REASONLESS = "reasonless"  #: pragma with no reason — itself a finding


_PRAGMA_CACHE: Dict[str, "re.Pattern[str]"] = {}


def _pragma_pattern(rule_id: str) -> "re.Pattern[str]":
    pattern = _PRAGMA_CACHE.get(rule_id)
    if pattern is None:
        pattern = re.compile(
            rf"#\s*{re.escape(rule_id.lower())}:\s*allow"
            r"(?:\s*[—–-]+\s*(?P<reason>\S.*))?",
            re.IGNORECASE,
        )
        _PRAGMA_CACHE[rule_id] = pattern
    return pattern


def pragma_status(
    module: ModuleSource, lineno: int, rule_id: str
) -> PragmaStatus:
    """Inspect line ``lineno`` for ``# qaNNN: allow — <reason>``.

    The waiver convention introduced for QA502 generalizes to every rule
    that opts in: a pragma comment on the flagged line suppresses the
    finding, but only when a non-empty reason follows the ``allow`` —
    the whole point is that the waiver documents *why*.  A reasonless
    pragma is reported by the rule itself.
    """
    lines = module.source.splitlines()
    if not 1 <= lineno <= len(lines):
        return PragmaStatus.NONE
    match = _pragma_pattern(rule_id).search(lines[lineno - 1])
    if match is None:
        return PragmaStatus.NONE
    reason = match.group("reason")
    if reason and reason.strip():
        return PragmaStatus.ALLOWED
    return PragmaStatus.REASONLESS


class LintRule:
    """Base class for all lint rules.

    Subclasses set ``rule_id``/``title``/``severity`` and override either
    :meth:`check_module` (``scope = "module"``) or :meth:`check_project`
    (``scope = "project"``).  Rules that consume the whole-project flow
    graph set ``uses_flow = True`` so the driver can exclude the family
    (``--no-flow``) without a hard-coded id list.
    """

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    scope: str = "module"
    uses_flow: bool = False

    def check_module(
        self, module: ModuleSource, project: Project
    ) -> Iterable[Finding]:
        """Findings for one module (module-scope rules)."""
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        """Findings over the whole project (project-scope rules)."""
        return ()

    def finding(
        self, module_path: str, line: int, message: str
    ) -> Finding:
        """Construct a finding attributed to this rule."""
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            file=module_path,
            line=line,
            message=message,
        )

    def pragma_gate(
        self, module: ModuleSource, lineno: int
    ) -> "tuple[bool, Optional[Finding]]":
        """``(suppressed, replacement)`` for this rule's pragma on a line.

        ``suppressed`` is True when a pragma is present (with or without
        a reason); ``replacement`` is the reasonless-pragma finding to
        emit instead of the original when the reason is missing.
        """
        status = pragma_status(module, lineno, self.rule_id)
        if status is PragmaStatus.ALLOWED:
            return True, None
        if status is PragmaStatus.REASONLESS:
            rid = self.rule_id.lower()
            return True, self.finding(
                module.path,
                lineno,
                f"{rid} allow pragma without a reason; write "
                f"'# {rid}: allow — <why this is safe>'",
            )
        return False, None


_RULE_CLASSES: List[Type[LintRule]] = []


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding ``cls`` to the built-in rule registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if any(existing.rule_id == cls.rule_id for existing in _RULE_CLASSES):
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _RULE_CLASSES.append(cls)
    return cls


def all_rules() -> List[LintRule]:
    """Fresh instances of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [cls() for cls in sorted(_RULE_CLASSES, key=lambda c: c.rule_id)]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _load_builtin_rules() -> None:
    # Imported lazily so `import repro.qa.rules` has no side-effect cost;
    # each module registers its rules on first import.
    from repro.qa.rules import (  # noqa: F401
        concurrency,
        determinism,
        robustness,
        schemes,
        style,
        vectorization,
    )
