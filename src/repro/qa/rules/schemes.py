"""Scheme- and registry-hygiene rules.

These encode the invariants the experiments rely on: every concrete
:class:`~repro.schemes.base.DeclusteringScheme` subclass carries a non-empty
``name``, is reachable from the registry, and the registry's literal names
stay in sync with the ``PAPER_LABELS`` legend used by every report and plot.
All three are checked statically from the AST — no imports, so a broken
scheme module cannot crash the linter that is meant to flag it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.qa.diagnostics import Finding
from repro.qa.rules import (
    LintRule,
    ModuleSource,
    Project,
    dotted_name,
    register_rule,
)

__all__ = [
    "RegistryLabelSyncRule",
    "SchemeNameRule",
    "SchemeRegisteredRule",
]

#: The root of the scheme class hierarchy, matched by bare class name.
SCHEME_BASE = "DeclusteringScheme"

#: Module suffix that defines the registry (and the label table).
REGISTRY_MODULE = "core/registry.py"


@dataclass
class SchemeClass:
    """One class statically identified as a scheme subclass."""

    module: ModuleSource
    node: ast.ClassDef

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_private(self) -> bool:
        return self.node.name.startswith("_")

    @property
    def is_abstract(self) -> bool:
        """Whether the class body declares any abstract method."""
        for item in self.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in item.decorator_list:
                    dotted = dotted_name(decorator)
                    if dotted and dotted.split(".")[-1] == "abstractmethod":
                        return True
        return False


def _class_index(project: Project) -> Dict[str, Tuple[ModuleSource, ast.ClassDef]]:
    index: Dict[str, Tuple[ModuleSource, ast.ClassDef]] = {}
    for module in project:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                index.setdefault(node.name, (module, node))
    return index


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        dotted = dotted_name(base)
        if dotted:
            names.append(dotted.split(".")[-1])
    return names


def scheme_classes(project: Project) -> List[SchemeClass]:
    """All classes transitively derived from ``DeclusteringScheme``.

    Resolution is by bare class name across the project, which is exact for
    this repository's layout (one class hierarchy, no name collisions).
    """
    index = _class_index(project)
    scheme_names: Set[str] = {SCHEME_BASE}
    changed = True
    while changed:
        changed = False
        for name, (_, node) in index.items():
            if name in scheme_names:
                continue
            if any(base in scheme_names for base in _base_names(node)):
                scheme_names.add(name)
                changed = True
    return [
        SchemeClass(module, node)
        for name, (module, node) in sorted(index.items())
        if name in scheme_names and name != SCHEME_BASE
    ]


def _literal_name_attribute(node: ast.ClassDef) -> Optional[ast.expr]:
    """The value assigned to a class-level ``name`` attribute, if any."""
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "name":
                    return item.value
        elif isinstance(item, ast.AnnAssign):
            target = item.target
            if (
                isinstance(target, ast.Name)
                and target.id == "name"
                and item.value is not None
            ):
                return item.value
    return None


def _inherited_name(
    cls: SchemeClass,
    index: Dict[str, Tuple[ModuleSource, ast.ClassDef]],
    seen: Optional[Set[str]] = None,
) -> Optional[str]:
    """The nearest statically-resolvable ``name`` literal up the hierarchy."""
    seen = seen or set()
    if cls.name in seen:
        return None
    seen.add(cls.name)
    value = _literal_name_attribute(cls.node)
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value
    for base in _base_names(cls.node):
        if base == SCHEME_BASE or base not in index:
            continue
        module, node = index[base]
        result = _inherited_name(SchemeClass(module, node), index, seen)
        if result is not None:
            return result
    return None


@register_rule
class SchemeNameRule(LintRule):
    """QA101: concrete scheme subclasses must set a non-empty ``name``."""

    rule_id = "QA101"
    title = "scheme subclass missing non-empty name"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        index = _class_index(project)
        for cls in scheme_classes(project):
            if cls.is_private or cls.is_abstract:
                continue
            name = _inherited_name(cls, index)
            if not name:
                yield self.finding(
                    cls.module.path,
                    cls.node.lineno,
                    f"scheme class {cls.name!r} does not set a non-empty "
                    f"string `name` (directly or via a base class)",
                )


def registered_class_names(module: ModuleSource) -> Set[str]:
    """Class identifiers referenced inside ``register_scheme(...)`` calls."""
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if not callee or callee.split(".")[-1] != "register_scheme":
            continue
        for arg in node.args[1:] + [kw.value for kw in node.keywords]:
            for inner in ast.walk(arg):
                if isinstance(inner, ast.Name):
                    names.add(inner.id)
    return names


def registered_scheme_names(module: ModuleSource) -> Dict[str, int]:
    """Literal registry names from ``register_scheme("<name>", ...)`` calls."""
    names: Dict[str, int] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if not callee or callee.split(".")[-1] != "register_scheme":
            continue
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                names.setdefault(value, node.lineno)
    return names


@register_rule
class SchemeRegisteredRule(LintRule):
    """QA102: every concrete public scheme class is reachable from the registry."""

    rule_id = "QA102"
    title = "scheme subclass not registered"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        registry = project.find(REGISTRY_MODULE)
        if registry is None:
            # Snippet-level lint runs have no registry module; nothing to
            # compare against.
            return
        registered = registered_class_names(registry)
        for cls in scheme_classes(project):
            if cls.is_private or cls.is_abstract:
                continue
            if cls.name not in registered:
                yield self.finding(
                    cls.module.path,
                    cls.node.lineno,
                    f"scheme class {cls.name!r} is never referenced by a "
                    f"register_scheme(...) call in {registry.path}",
                )


def _paper_labels(module: ModuleSource) -> Tuple[Dict[str, int], int]:
    """``PAPER_LABELS`` literal keys (name -> line) and the assign line."""
    for node in module.tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "PAPER_LABELS":
                keys: Dict[str, int] = {}
                if isinstance(value, ast.Dict):
                    for key in value.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            keys.setdefault(key.value, key.lineno)
                return keys, node.lineno
    return {}, 0


@register_rule
class RegistryLabelSyncRule(LintRule):
    """QA103: registry names and ``PAPER_LABELS`` must cover each other."""

    rule_id = "QA103"
    title = "registry / PAPER_LABELS out of sync"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        registry = project.find(REGISTRY_MODULE)
        if registry is None:
            return
        names = registered_scheme_names(registry)
        labels, labels_line = _paper_labels(registry)
        for name, line in sorted(names.items()):
            if name not in labels:
                yield self.finding(
                    registry.path,
                    line,
                    f"registered scheme {name!r} has no PAPER_LABELS entry",
                )
        for label, line in sorted(labels.items()):
            if label not in names:
                yield self.finding(
                    registry.path,
                    line or labels_line,
                    f"PAPER_LABELS entry {label!r} does not match any "
                    f"register_scheme(...) call",
                )
