"""Runtime contract checker for registered declustering schemes.

The paper's comparisons — and every experiment in this repository — assume
each scheme's ``disk_of`` rule is a *function*: defined on every bucket,
deterministic, returning an integer in ``[0, M)``, and agreeing bucket-for-
bucket with any vectorized ``allocate`` override.  Third-party schemes added
through :func:`~repro.core.registry.register_scheme` get no such guarantee
from the type system, so this module verifies it empirically over small
grids and emits the same :class:`~repro.qa.diagnostics.Finding` records as
the linter.

Schemes that declare ``disk_of_is_expensive`` (the annealed workload-aware
scheme, whose per-bucket rule re-runs the optimizer) are checked on a
deterministic sample of buckets and a bounded number of grid/disk combos
instead of exhaustively; the findings note when sampling was used.

A second pass (:func:`check_engine`, QA42x) certifies the integral-image
response-time engine: on seeded-random allocations over the same small
grids, :class:`~repro.core.engine.ResponseTimeEngine` must agree
bucket-for-bucket with the scalar ``sliding_response_times`` kernel and
with brute-force per-placement ``response_time`` for every fitting shape,
and its batched path (QA422) with the scalar per-query functions on
mixed in-grid/clipped/outside batches.

The scheme pass also certifies the vectorized allocation kernels
(QA430/QA431): every scheme's ``disk_array`` must be callable on each
applicable combo and agree with the scalar ``disk_of`` rule on the same
(possibly sampled) buckets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.exceptions import DeclusteringError
from repro.core.grid import Grid
from repro.qa.diagnostics import Finding, Severity
from repro.schemes.base import DeclusteringScheme

__all__ = [
    "ContractConfig",
    "check_backends",
    "check_engine",
    "check_registry",
    "check_scheme",
]

#: Fixed seed for the engine-contract pass (QA2xx: all randomness seeded).
ENGINE_CONTRACT_SEED = 19940206


@dataclass(frozen=True)
class ContractConfig:
    """Knobs for the contract checker.

    ``grids``/``disks`` span the combo matrix; every applicable combo is
    checked.  ``repeats`` is the number of times each call is replayed for
    the determinism checks.  Expensive schemes are limited to
    ``expensive_combo_limit`` applicable combos and ``expensive_sample``
    sampled buckets per combo.
    """

    grids: Tuple[Tuple[int, ...], ...] = ((4, 4), (3, 5), (2, 2, 2))
    disks: Tuple[int, ...] = (2, 3, 4, 5)
    repeats: int = 2
    expensive_sample: int = 2
    expensive_combo_limit: int = 4

    def scaled_down(self) -> "ContractConfig":
        """A cheaper variant used by ``--quick`` runs."""
        return ContractConfig(
            grids=self.grids[:2],
            disks=self.disks[:2],
            repeats=self.repeats,
            expensive_sample=1,
            expensive_combo_limit=2,
        )


def _finding(
    name: str, rule: str, message: str, severity: Severity = Severity.ERROR
) -> Finding:
    return Finding(
        rule=rule,
        severity=severity,
        file=f"registry:{name}",
        line=0,
        message=message,
    )


def _sample_coords(grid: Grid, limit: Optional[int]) -> List[Tuple[int, ...]]:
    """All bucket coords, or ``limit`` of them evenly spaced in linear order."""
    total = grid.num_buckets
    if limit is None or limit >= total:
        return list(grid.iter_buckets())
    limit = max(1, limit)
    step = total / limit
    indices = sorted({int(i * step) for i in range(limit)})
    return [grid.coords_of(index) for index in indices]


def _is_disk_id(value: object) -> bool:
    return isinstance(value, (int, np.integer)) and not isinstance(
        value, bool
    )


def check_scheme(
    name: str,
    scheme_or_factory: Union[
        DeclusteringScheme, Callable[[], DeclusteringScheme]
    ],
    config: Optional[ContractConfig] = None,
) -> List[Finding]:
    """Verify one scheme's ``disk_of``/``allocate`` contract.

    ``scheme_or_factory`` may be a scheme instance or a zero-argument
    factory (the registry's currency).  Returns findings; an empty list
    means the scheme honored the contract on every applicable combo.
    """
    config = config or ContractConfig()
    findings: List[Finding] = []

    if isinstance(scheme_or_factory, DeclusteringScheme):
        scheme = scheme_or_factory
    else:
        try:
            scheme = scheme_or_factory()
        except Exception as exc:
            return [
                _finding(
                    name,
                    "QA401",
                    f"factory raised {type(exc).__name__}: {exc}",
                )
            ]
        if not isinstance(scheme, DeclusteringScheme):
            return [
                _finding(
                    name,
                    "QA401",
                    f"factory returned {type(scheme).__name__}, not a "
                    f"DeclusteringScheme",
                )
            ]

    if not isinstance(getattr(scheme, "name", None), str) or not scheme.name:
        findings.append(
            _finding(
                name,
                "QA402",
                f"scheme {type(scheme).__name__} has empty or non-string "
                f"`name`",
            )
        )

    expensive = bool(getattr(scheme, "disk_of_is_expensive", False))
    sample_limit = config.expensive_sample if expensive else None
    combos_checked = 0
    applicable_any = False

    for dims in config.grids:
        grid = Grid(dims)
        for num_disks in config.disks:
            if expensive and combos_checked >= config.expensive_combo_limit:
                break
            try:
                scheme.check_applicable(grid, num_disks)
            except DeclusteringError:
                # Declining a configuration is the documented, contractual
                # way to say "not applicable" — not a violation.
                continue
            except Exception as exc:
                findings.append(
                    _finding(
                        name,
                        "QA403",
                        f"check_applicable(grid={dims}, M={num_disks}) "
                        f"crashed with {type(exc).__name__}: {exc} — raise "
                        f"SchemeNotApplicableError instead",
                    )
                )
                continue
            applicable_any = True
            combos_checked += 1
            findings.extend(
                _check_combo(name, scheme, grid, num_disks, config,
                             sample_limit)
            )

    if not applicable_any and not findings:
        findings.append(
            _finding(
                name,
                "QA410",
                f"scheme was applicable to none of the checked combos "
                f"(grids {list(config.grids)}, disks {list(config.disks)})",
                severity=Severity.WARNING,
            )
        )
    return findings


def _check_combo(
    name: str,
    scheme: DeclusteringScheme,
    grid: Grid,
    num_disks: int,
    config: ContractConfig,
    sample_limit: Optional[int],
) -> List[Finding]:
    findings: List[Finding] = []
    where = f"grid={grid.dims}, M={num_disks}"

    tables = []
    for _ in range(max(2, config.repeats)):
        try:
            tables.append(scheme.allocate(grid, num_disks).table)
        except Exception as exc:
            findings.append(
                _finding(
                    name,
                    "QA404",
                    f"allocate({where}) raised {type(exc).__name__} after "
                    f"check_applicable accepted the configuration: {exc}",
                )
            )
            return findings
    base_table = tables[0]
    if any(not np.array_equal(base_table, other) for other in tables[1:]):
        findings.append(
            _finding(
                name,
                "QA405",
                f"allocate({where}) is nondeterministic: repeated calls "
                f"returned different tables",
            )
        )
        return findings

    coords_list = _sample_coords(grid, sample_limit)
    sampled = len(coords_list) < grid.num_buckets
    suffix = (
        f" (sampled {len(coords_list)}/{grid.num_buckets} buckets)"
        if sampled
        else ""
    )

    scalar_values = {}
    for coords in coords_list:
        values = []
        for _ in range(max(2, config.repeats)):
            try:
                values.append(scheme.disk_of(coords, grid, num_disks))
            except Exception as exc:
                findings.append(
                    _finding(
                        name,
                        "QA408",
                        f"disk_of({coords}, {where}) raised "
                        f"{type(exc).__name__}: {exc} — the rule must be "
                        f"total on the grid{suffix}",
                    )
                )
                return findings
        value = values[0]
        if not _is_disk_id(value) or not 0 <= int(value) < num_disks:
            findings.append(
                _finding(
                    name,
                    "QA406",
                    f"disk_of({coords}, {where}) returned {value!r}, not "
                    f"an integer in [0, {num_disks}){suffix}",
                )
            )
            return findings
        if any(int(v) != int(value) for v in values[1:]):
            findings.append(
                _finding(
                    name,
                    "QA407",
                    f"disk_of({coords}, {where}) is nondeterministic: "
                    f"repeated calls returned {sorted(set(map(int, values)))}"
                    f"{suffix}",
                )
            )
            return findings
        if int(base_table[tuple(coords)]) != int(value):
            findings.append(
                _finding(
                    name,
                    "QA409",
                    f"allocate({where}) assigns bucket {coords} to disk "
                    f"{int(base_table[tuple(coords)])} but disk_of returns "
                    f"{int(value)} — vectorized override disagrees with "
                    f"the per-bucket rule{suffix}",
                )
            )
            return findings
        scalar_values[tuple(coords)] = int(value)
    # The scalar rule held everywhere sampled; now certify the
    # vectorized kernel against it (QA430: callable and well-shaped,
    # QA431: bucket-for-bucket agreement on the same sample).  An
    # expensive scheme without a vectorized override has nothing to
    # certify — the base fallback *is* the scalar loop, and running it
    # would defeat the sampling cap.
    if (
        sample_limit is not None
        and type(scheme).disk_array is DeclusteringScheme.disk_array
    ):
        return findings
    try:
        disk_array = scheme.disk_array(grid, num_disks)
    except Exception as exc:
        findings.append(
            _finding(
                name,
                "QA430",
                f"disk_array({where}) raised {type(exc).__name__} after "
                f"check_applicable accepted the configuration: {exc}",
            )
        )
        return findings
    if tuple(disk_array.shape) != grid.dims:
        findings.append(
            _finding(
                name,
                "QA430",
                f"disk_array({where}) returned shape "
                f"{tuple(disk_array.shape)}, expected {grid.dims}",
            )
        )
        return findings
    for coords in coords_list:
        expected = scalar_values[tuple(coords)]
        if int(disk_array[tuple(coords)]) != expected:
            findings.append(
                _finding(
                    name,
                    "QA431",
                    f"disk_array({where}) assigns bucket {coords} to disk "
                    f"{int(disk_array[tuple(coords)])} but disk_of returns "
                    f"{expected} — the vectorized kernel disagrees with "
                    f"the scalar per-bucket rule{suffix}",
                )
            )
            return findings
    return findings


def check_engine(config: Optional[ContractConfig] = None) -> List[Finding]:
    """Certify the integral-image engine against its reference oracles.

    For every grid/disk combo in ``config`` a seeded-random allocation is
    drawn and every fitting query shape is checked two ways:

    * **QA420** — engine ``sliding_response_times`` differs from the
      scalar :func:`repro.core.cost.sliding_response_times` kernel;
    * **QA421** — engine result differs from brute-force
      :func:`repro.core.cost.response_time` evaluated placement by
      placement (the definitional oracle);
    * **QA422** — the batched path (``batch_response_times`` /
      ``batch_deviations``) differs from the scalar per-query functions
      on a mixed batch of in-grid, boundary-clipped, and fully-outside
      queries.

    The combos are small (a few hundred placements each), so the check is
    exhaustive over shapes rather than sampled.
    """
    from repro.core.allocation import DiskAllocation
    from repro.core.cost import (
        relative_deviation,
        response_time,
        sliding_response_times,
    )
    from repro.core.engine import ResponseTimeEngine
    from repro.core.query import RangeQuery, all_placements

    config = config or ContractConfig()
    findings: List[Finding] = []
    rng = np.random.default_rng(ENGINE_CONTRACT_SEED)
    for dims in config.grids:
        grid = Grid(dims)
        for num_disks in config.disks:
            table = rng.integers(0, num_disks, size=dims)
            allocation = DiskAllocation(grid, num_disks, table)
            engine = ResponseTimeEngine(allocation)
            where = f"grid={dims}, M={num_disks}"
            for shape in itertools.product(
                *(range(1, d + 1) for d in dims)
            ):
                reference = sliding_response_times(allocation, shape)
                computed = engine.sliding_response_times(shape)
                if not np.array_equal(reference, computed):
                    findings.append(
                        _finding(
                            "response-time-engine",
                            "QA420",
                            f"engine disagrees with the scalar sliding "
                            f"kernel for shape {shape} on a random "
                            f"allocation ({where}, seed "
                            f"{ENGINE_CONTRACT_SEED})",
                        )
                    )
                    break
                brute_ok = all(
                    computed[tuple(query.lower)]
                    == response_time(allocation, query)
                    for query in all_placements(grid, shape)
                )
                if not brute_ok:
                    findings.append(
                        _finding(
                            "response-time-engine",
                            "QA421",
                            f"engine disagrees with brute-force "
                            f"response_time for shape {shape} on a random "
                            f"allocation ({where}, seed "
                            f"{ENGINE_CONTRACT_SEED})",
                        )
                    )
                    break
            findings.extend(
                _check_batch_engine(engine, allocation, grid, where)
            )
    return findings


def _mixed_queries(grid: Grid):
    """The standard mixed batch: in-grid, boundary-clipped, and outside.

    All placements of three shapes, plus rectangles that clip at the
    boundary, clip partially, and clip to nothing — the full range of
    zero-bucket semantics the batched paths must preserve.
    """
    from repro.core.query import RangeQuery, all_placements

    dims = grid.dims
    ndim = grid.ndim
    queries = []
    shapes = {
        (1,) * ndim,
        tuple(max(1, d // 2) for d in dims),
        dims,
    }
    for shape in sorted(shapes):
        queries.extend(all_placements(grid, shape))
    # Boundary-clipped and fully-outside rectangles exercise the
    # zero-bucket clipping semantics (_effective_optimal).
    queries.append(
        RangeQuery((0,) * ndim, tuple(2 * d for d in dims))
    )
    queries.append(
        RangeQuery(
            tuple(d // 2 for d in dims), tuple(d + 2 for d in dims)
        )
    )
    queries.append(
        RangeQuery(tuple(dims), tuple(d + 1 for d in dims))
    )
    return queries


def _check_batch_engine(engine, allocation, grid: Grid, where: str):
    """QA422: the batched engine path vs the scalar per-query oracles."""
    from repro.core.cost import relative_deviation, response_time

    queries = _mixed_queries(grid)
    batch_rts = engine.batch_response_times(queries)
    batch_devs = engine.batch_deviations(queries)
    for index, query in enumerate(queries):
        scalar_rt = response_time(allocation, query)
        scalar_dev = relative_deviation(allocation, query)
        # Bit-identity is the contract, so the deviations are compared
        # by their float64 byte patterns, not approximately.
        if (
            int(batch_rts[index]) != int(scalar_rt)
            or np.float64(batch_devs[index]).tobytes()
            != np.float64(scalar_dev).tobytes()
        ):
            return [
                _finding(
                    "response-time-engine",
                    "QA422",
                    f"batched engine path disagrees with the scalar "
                    f"per-query oracle on {query!r} ({where}, seed "
                    f"{ENGINE_CONTRACT_SEED}): batch RT/dev "
                    f"{int(batch_rts[index])}/{float(batch_devs[index])!r}"
                    f" vs scalar {int(scalar_rt)}/{float(scalar_dev)!r}",
                )
            ]
    return []


def check_backends(
    config: Optional[ContractConfig] = None,
) -> List[Finding]:
    """QA423: certify every available kernel backend against numpy.

    The numpy backend is the bit-identical reference; for each *other*
    available backend (``cnative``, ``numba``) and every grid/disk combo
    in ``config``, a seeded-random allocation is drawn and the backend
    must reproduce the reference **exactly** on:

    * the batched rectangle paths (``batch_disk_counts`` /
      ``batch_response_times``) over the standard mixed batch —
      in-grid, boundary-clipped, and zero-bucket (fully outside)
      queries included;
    * the sliding-window sweep (``window_response_times``) for every
      fitting shape;
    * the whole-grid allocation-table kernels (``linear_mod_table``
      with negative coefficients included, ``xor_mod_table``).

    The chunked/memory-mapped SAT layout is certified the same way: its
    streamed ``corner_counts`` must match the in-RAM gather bucket for
    bucket.  Unavailable backends are skipped, not failed — availability
    is a property of the machine, not of the code.
    """
    from repro.core import backends as backend_registry
    from repro.core.allocation import DiskAllocation
    from repro.core.query import QueryBatch
    from repro.core.sat import SummedAreaTable

    config = config or ContractConfig()
    findings: List[Finding] = []
    reference = backend_registry.get_backend("numpy")
    others = [
        backend
        for backend in backend_registry.available_backends()
        if backend.name != reference.name
    ]
    rng = np.random.default_rng(ENGINE_CONTRACT_SEED)
    for dims in config.grids:
        grid = Grid(dims)
        for num_disks in config.disks:
            where = f"grid={dims}, M={num_disks}"
            table = rng.integers(0, num_disks, size=dims)
            allocation = DiskAllocation(grid, num_disks, table)
            sat = SummedAreaTable.build(allocation)
            batch = QueryBatch.from_queries(_mixed_queries(grid), grid)
            want_counts = reference.batch_disk_counts(
                sat, batch.lo, batch.hi
            )
            want_rts = reference.batch_response_times(
                sat, batch.lo, batch.hi
            )
            fitting_shapes = list(
                itertools.product(*(range(1, d + 1) for d in dims))
            )
            want_windows = {
                shape: reference.window_response_times(sat, shape)
                for shape in fitting_shapes
            }
            coefficient_sets = [
                (1,) * grid.ndim,
                tuple(
                    (-1) ** axis * (axis + 2)
                    for axis in range(grid.ndim)
                ),
            ]
            want_tables = [
                reference.linear_mod_table(dims, coeffs, num_disks)
                for coeffs in coefficient_sets
            ]
            want_xor = reference.xor_mod_table(dims, num_disks)
            for backend in others:
                if not np.array_equal(
                    want_counts,
                    backend.batch_disk_counts(sat, batch.lo, batch.hi),
                ) or not np.array_equal(
                    want_rts,
                    backend.batch_response_times(
                        sat, batch.lo, batch.hi
                    ),
                ):
                    findings.append(
                        _finding(
                            f"backend:{backend.name}",
                            "QA423",
                            f"batched query kernel disagrees with the "
                            f"numpy reference on the mixed batch "
                            f"(clipped and zero-bucket queries "
                            f"included, {where}, seed "
                            f"{ENGINE_CONTRACT_SEED})",
                        )
                    )
                    continue
                bad_shape = next(
                    (
                        shape
                        for shape in fitting_shapes
                        if not np.array_equal(
                            want_windows[shape],
                            backend.window_response_times(sat, shape),
                        )
                    ),
                    None,
                )
                if bad_shape is not None:
                    findings.append(
                        _finding(
                            f"backend:{backend.name}",
                            "QA423",
                            f"sliding-window kernel disagrees with the "
                            f"numpy reference for shape {bad_shape} "
                            f"({where}, seed {ENGINE_CONTRACT_SEED})",
                        )
                    )
                    continue
                tables_ok = all(
                    np.array_equal(
                        want,
                        backend.linear_mod_table(
                            dims, coeffs, num_disks
                        ),
                    )
                    for want, coeffs in zip(
                        want_tables, coefficient_sets
                    )
                ) and np.array_equal(
                    want_xor, backend.xor_mod_table(dims, num_disks)
                )
                if not tables_ok:
                    findings.append(
                        _finding(
                            f"backend:{backend.name}",
                            "QA423",
                            f"allocation-table kernel disagrees with "
                            f"the numpy reference ({where}, negative "
                            f"coefficients included)",
                        )
                    )
    findings.extend(_check_mmap_layout(config))
    return findings


def _check_mmap_layout(config: ContractConfig) -> List[Finding]:
    """QA423 for the chunked/memory-mapped SAT: streamed == in-RAM.

    Certifies three things over one multi-tile chunked table built by
    a parallel (2-worker) sweep: the streamed ``corner_counts`` gather
    matches the in-RAM table bucket for bucket, and **every** available
    backend's batch kernels over the mapped table — the ``cnative``
    streaming kernel included — are bit-identical to the in-RAM
    reference on the mixed batch (clipped and zero-bucket queries
    included).
    """
    import os
    import tempfile

    from repro.core import backends as backend_registry
    from repro.core.allocation import DiskAllocation
    from repro.core.query import QueryBatch
    from repro.core.registry import get_scheme
    from repro.core.sat import SummedAreaTable

    findings: List[Finding] = []
    scheme = get_scheme("dm")
    dims = max(config.grids, key=len)
    grid = Grid(dims)
    num_disks = config.disks[-1]
    with tempfile.TemporaryDirectory(prefix="repro-qa423-") as tmp:
        chunked = SummedAreaTable.build_chunked(
            scheme,
            grid,
            num_disks,
            byte_budget=1024,  # forces several tiles even on tiny grids
            path=os.path.join(tmp, "sat.npy"),
            workers=2,  # phase-1 fan-out must stay byte-identical too
        )
        try:
            allocation = DiskAllocation(
                grid, num_disks, scheme.disk_array(grid, num_disks)
            )
            reference = SummedAreaTable.build(allocation)
            batch = QueryBatch.from_queries(_mixed_queries(grid), grid)
            if not np.array_equal(
                reference.corner_counts(batch.lo, batch.hi),
                chunked.corner_counts(batch.lo, batch.hi),
            ):
                findings.append(
                    _finding(
                        "backend:mmap-sat",
                        "QA423",
                        f"chunked/memory-mapped SAT corner_counts "
                        f"disagrees with the in-RAM table "
                        f"(grid={dims}, M={num_disks}, scheme=dm)",
                    )
                )
            numpy_backend = backend_registry.get_backend("numpy")
            want_counts = numpy_backend.batch_disk_counts(
                reference, batch.lo, batch.hi
            )
            want_rts = numpy_backend.batch_response_times(
                reference, batch.lo, batch.hi
            )
            for backend in backend_registry.available_backends():
                if not np.array_equal(
                    want_counts,
                    backend.batch_disk_counts(
                        chunked, batch.lo, batch.hi
                    ),
                ) or not np.array_equal(
                    want_rts,
                    backend.batch_response_times(
                        chunked, batch.lo, batch.hi
                    ),
                ):
                    findings.append(
                        _finding(
                            f"backend:{backend.name}",
                            "QA423",
                            f"streamed batch kernel over the "
                            f"memory-mapped SAT disagrees with the "
                            f"in-RAM reference on the mixed batch "
                            f"(clipped and zero-bucket queries "
                            f"included, grid={dims}, M={num_disks}, "
                            f"scheme=dm)",
                        )
                    )
        finally:
            chunked.close()
    return findings


def check_registry(
    config: Optional[ContractConfig] = None,
    names: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run :func:`check_scheme` for every (or the named) registered scheme."""
    from repro.core.exceptions import UnknownSchemeError
    from repro.core.registry import available_schemes, scheme_factory

    config = config or ContractConfig()
    findings: List[Finding] = []
    for name in names if names is not None else available_schemes():
        try:
            factory = scheme_factory(name)
        except UnknownSchemeError:
            findings.append(
                _finding(name, "QA401", "scheme name is not registered")
            )
            continue
        findings.extend(check_scheme(name, factory, config))
    return sorted(findings)
