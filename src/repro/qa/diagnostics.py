"""Shared diagnostics vocabulary: findings, reporters, and the baseline.

Every QA pass — linter rules and the scheme-contract checker alike — emits
:class:`Finding` records.  A finding is identified by a stable *fingerprint*
(rule id + file + message, independent of line numbers) so a committed
baseline file keeps suppressing a pre-existing finding even as unrelated
edits shift it around the file.  New findings are everything the baseline
does not already cover; the CLI exits nonzero exactly when there are any.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

__all__ = [
    "Baseline",
    "Finding",
    "Severity",
    "parse_json_report",
    "render_json_report",
    "render_text_report",
]

#: Schema version stamped into JSON reports and baseline files.
REPORT_VERSION = 1


class Severity(enum.Enum):
    """How bad a finding is; errors gate the build, warnings inform."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a QA pass.

    Attributes
    ----------
    rule:
        Stable rule identifier, e.g. ``"QA201"``.
    severity:
        :class:`Severity` of the finding.
    file:
        Path (repository-relative where possible) or pseudo-path such as
        ``"registry:dm"`` for contract findings with no source location.
    line:
        1-based line number, or 0 when no source line applies.
    message:
        Human-readable description of the violation.
    """

    rule: str
    severity: Severity
    file: str
    line: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline suppression (line-number free)."""
        digest = hashlib.sha256(
            f"{self.rule}|{self.file}|{self.message}".encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            rule=str(data["rule"]),
            severity=Severity(str(data["severity"])),
            file=str(data["file"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            message=str(data["message"]),
        )

    def render(self) -> str:
        """One-line ``file:line: severity RULE message`` rendering."""
        location = self.file if self.line <= 0 else f"{self.file}:{self.line}"
        return f"{location}: {self.severity.value} {self.rule} {self.message}"


def render_text_report(
    findings: Sequence[Finding], suppressed: int = 0
) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines = [finding.render() for finding in sorted(findings)]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    summary = (
        f"{len(findings)} finding(s): {errors} error(s), "
        f"{warnings} warning(s)"
    )
    if suppressed:
        summary += f" ({suppressed} baseline-suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json_report(
    findings: Sequence[Finding], suppressed: int = 0
) -> str:
    """Machine-readable report; round-trips through :func:`parse_json_report`."""
    payload = {
        "version": REPORT_VERSION,
        "suppressed": suppressed,
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def parse_json_report(text: str) -> List[Finding]:
    """Parse :func:`render_json_report` output back into findings."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != REPORT_VERSION:
        raise ValueError(
            f"unsupported QA report version {version!r}; "
            f"expected {REPORT_VERSION}"
        )
    return [Finding.from_dict(entry) for entry in payload["findings"]]


@dataclass
class Baseline:
    """A set of suppressed finding fingerprints.

    The workflow: run ``repro-decluster qa --write-baseline`` once to accept
    the current findings, commit the file, then burn the entries down over
    time.  Only findings *not* in the baseline ("new" findings) fail the
    gate.
    """

    fingerprints: Set[str] = field(default_factory=set)

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether this finding is covered by the baseline."""
        return finding.fingerprint in self.fingerprints

    def split(
        self, findings: Iterable[Finding]
    ) -> "tuple[List[Finding], List[Finding]]":
        """Partition findings into ``(new, suppressed)`` lists."""
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            (suppressed if self.is_suppressed(finding) else new).append(
                finding
            )
        return new, suppressed

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Baseline accepting exactly the given findings."""
        return cls({finding.fingerprint for finding in findings})

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text())
        version = payload.get("version")
        if version != REPORT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}; "
                f"expected {REPORT_VERSION}"
            )
        return cls(set(payload.get("suppress", [])))

    def save(
        self,
        path: Union[str, Path],
        findings: Optional[Sequence[Finding]] = None,
    ) -> None:
        """Write the baseline; ``findings`` adds context comments per entry."""
        notes: Dict[str, str] = {}
        for finding in findings or ():
            notes[finding.fingerprint] = finding.render()
        payload = {
            "version": REPORT_VERSION,
            "suppress": sorted(self.fingerprints),
            "notes": {
                fp: notes[fp] for fp in sorted(notes) if fp in self.fingerprints
            },
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")
