"""Allocation diagnostics and the workload-driven declustering advisor."""

from repro.analysis.advisor import (
    DEFAULT_CANDIDATES,
    Recommendation,
    advise,
    render_recommendations,
)
from repro.analysis.profile import (
    ShapeProfile,
    disk_heat,
    heat_imbalance,
    same_disk_distance,
    shape_profile,
    suboptimality_map,
)
from repro.analysis.compare import (
    DominanceMatrix,
    dominance_matrix,
    render_dominance,
)
from repro.analysis.render import (
    render_allocation_profile,
    render_disk_loads,
    render_heatmap,
    render_shape_profiles,
)

__all__ = [
    "ShapeProfile",
    "shape_profile",
    "suboptimality_map",
    "disk_heat",
    "heat_imbalance",
    "same_disk_distance",
    "Recommendation",
    "advise",
    "render_recommendations",
    "DEFAULT_CANDIDATES",
    "render_heatmap",
    "render_disk_loads",
    "render_shape_profiles",
    "render_allocation_profile",
    "DominanceMatrix",
    "dominance_matrix",
    "render_dominance",
]
