"""Declustering advisor: pick a method for a relation from its workload.

The paper's final conclusion — "since there is no clear winner, parallel
database systems must support a number of declustering methods", and the
choice should use "information about common queries on a relation" — as a
library feature: describe the workload, get a ranked recommendation.

The advisor evaluates every candidate scheme that is *applicable* to the
configuration (ECC silently drops out of non-power-of-two setups, exactly
as a real system would skip it), optionally including the annealed
workload-aware allocation, and ranks by mean response time on the supplied
queries with ties broken by worst case, then by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.allocation import DiskAllocation
from repro.core.evaluator import evaluate_allocation_on_queries
from repro.core.exceptions import (
    SchemeNotApplicableError,
    WorkloadError,
)
from repro.core.grid import Grid
from repro.core.query import RangeQuery
from repro.core.registry import get_scheme, scheme_label

__all__ = [
    "DEFAULT_CANDIDATES",
    "Recommendation",
    "advise",
    "render_recommendations",
]

#: Candidates offered by default: the paper's four methods plus the
#: strongest post-paper fixed schemes (2-d cyclic/EXH; k-d lattice,
#: which covers grids where the cyclic scheme is not applicable).
DEFAULT_CANDIDATES = (
    "dm", "fx-auto", "ecc", "hcam", "cyclic-exh", "lattice",
)


@dataclass(frozen=True)
class Recommendation:
    """One ranked row of the advisor's output."""

    scheme: str
    mean_response_time: float
    mean_optimal: float
    worst_response_time: int
    fraction_optimal: float
    allocation: DiskAllocation

    @property
    def label(self) -> str:
        """Display label of the recommended scheme."""
        return scheme_label(self.scheme)

    @property
    def mean_relative_deviation(self) -> float:
        """``(mean RT - mean OPT) / mean OPT``."""
        if self.mean_optimal == 0:
            return 0.0
        return (
            self.mean_response_time - self.mean_optimal
        ) / self.mean_optimal


def advise(
    grid: Grid,
    num_disks: int,
    queries: Sequence[RangeQuery],
    candidates: Optional[Sequence[str]] = None,
    include_workload_aware: bool = False,
) -> List[Recommendation]:
    """Rank applicable schemes for a workload, best first.

    Parameters
    ----------
    grid / num_disks:
        The configuration to decluster.
    queries:
        The workload sample driving the ranking (and, when enabled, the
        annealing).
    candidates:
        Scheme names to consider; default :data:`DEFAULT_CANDIDATES`.
    include_workload_aware:
        Also anneal a workload-specific allocation (slower; usually wins).
    """
    queries = list(queries)
    if not queries:
        raise WorkloadError("the advisor needs a non-empty workload")
    names = list(candidates or DEFAULT_CANDIDATES)
    if include_workload_aware and "workload-aware" not in names:
        names.append("workload-aware")

    recommendations: List[Recommendation] = []
    for name in names:
        if name == "workload-aware":
            from repro.schemes.workload_aware import WorkloadAwareScheme

            scheme = WorkloadAwareScheme(queries=queries)
        else:
            scheme = get_scheme(name)
        try:
            allocation = scheme.allocate(grid, num_disks)
        except SchemeNotApplicableError:
            continue  # e.g. ECC on a non-power-of-two configuration
        result = evaluate_allocation_on_queries(
            allocation, queries, scheme_name=name
        )
        recommendations.append(
            Recommendation(
                scheme=name,
                mean_response_time=result.mean_response_time,
                mean_optimal=result.mean_optimal,
                worst_response_time=result.worst_response_time,
                fraction_optimal=result.fraction_optimal,
                allocation=allocation,
            )
        )
    if not recommendations:
        raise WorkloadError(
            "no candidate scheme is applicable to "
            f"grid {grid.dims} with {num_disks} disks"
        )
    recommendations.sort(
        key=lambda r: (
            r.mean_response_time,
            r.worst_response_time,
            r.scheme,
        )
    )
    return recommendations


def render_recommendations(
    recommendations: Sequence[Recommendation],
) -> str:
    """ASCII table of the advisor's ranking."""
    lines = [
        f"{'rank':>4s} {'scheme':14s} {'mean RT':>9s} {'opt':>7s} "
        f"{'dev':>8s} {'worst':>6s} {'frac opt':>9s}"
    ]
    for rank, rec in enumerate(recommendations, start=1):
        lines.append(
            f"{rank:4d} {rec.label:14s} {rec.mean_response_time:9.4f} "
            f"{rec.mean_optimal:7.4f} "
            f"{rec.mean_relative_deviation:+8.4f} "
            f"{rec.worst_response_time:6d} "
            f"{rec.fraction_optimal:9.4f}"
        )
    return "\n".join(lines)
