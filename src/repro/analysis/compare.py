"""Pairwise scheme comparison: who beats whom, query by query.

Means can hide structure: a scheme can lose on average yet win a class
of queries outright (DM on rows).  The dominance matrix makes that
visible — for every ordered scheme pair, the fraction of workload
queries where the row scheme answers strictly faster than the column
scheme.  A row of high values is a broadly dominant scheme; asymmetric
cells mark the specialist relationships the paper's "no clear winner"
conclusion is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost import response_times
from repro.core.exceptions import (
    SchemeNotApplicableError,
    WorkloadError,
)
from repro.core.grid import Grid
from repro.core.query import RangeQuery
from repro.core.registry import get_scheme, scheme_label

__all__ = [
    "DominanceMatrix",
    "dominance_matrix",
    "render_dominance",
]


@dataclass(frozen=True)
class DominanceMatrix:
    """Win fractions per ordered scheme pair on one workload.

    ``wins[a][b]`` = fraction of queries where scheme ``a`` is strictly
    faster than scheme ``b`` (ties excluded, so
    ``wins[a][b] + wins[b][a] <= 1``).
    """

    schemes: Tuple[str, ...]
    wins: Dict[str, Dict[str, float]]
    num_queries: int

    def win_fraction(self, row: str, column: str) -> float:
        """Fraction of queries where ``row`` strictly beats ``column``."""
        return self.wins[row][column]

    def dominates(self, row: str, column: str) -> bool:
        """Whether ``row`` never loses to ``column`` on this workload."""
        # Win fractions are count / num_queries, so "never loses" is a
        # fraction that cannot be positive (exact float == is banned here).
        return not self.wins[column][row] > 0.0

    def best_overall(self) -> str:
        """Scheme with the highest mean win fraction against the field."""
        def mean_wins(name: str) -> float:
            others = [s for s in self.schemes if s != name]
            if not others:
                return 0.0
            return sum(self.wins[name][o] for o in others) / len(others)

        return max(self.schemes, key=lambda s: (mean_wins(s), s))


def dominance_matrix(
    grid: Grid,
    num_disks: int,
    queries: Sequence[RangeQuery],
    schemes: Optional[Sequence[str]] = None,
) -> DominanceMatrix:
    """Compute per-query win fractions for every scheme pair.

    Schemes whose preconditions fail on the configuration are dropped
    (as in the advisor).
    """
    from repro.core.registry import PAPER_SCHEMES

    queries = list(queries)
    if not queries:
        raise WorkloadError("workload contains no queries")
    names: List[str] = []
    times: Dict[str, np.ndarray] = {}
    for name in schemes or PAPER_SCHEMES:
        try:
            allocation = get_scheme(name).allocate(grid, num_disks)
        except SchemeNotApplicableError:
            continue
        names.append(name)
        times[name] = response_times(allocation, queries)
    if len(names) < 2:
        raise WorkloadError(
            "need at least two applicable schemes to compare, got "
            f"{names}"
        )
    wins: Dict[str, Dict[str, float]] = {
        a: {} for a in names
    }
    for a in names:
        for b in names:
            if a == b:
                wins[a][b] = 0.0
            else:
                wins[a][b] = float(
                    (times[a] < times[b]).mean()
                )
    return DominanceMatrix(
        schemes=tuple(names), wins=wins, num_queries=len(queries)
    )


def render_dominance(matrix: DominanceMatrix) -> str:
    """ASCII rendering: rows beat columns by the shown fraction."""
    labels = [scheme_label(name) for name in matrix.schemes]
    width = max(len(label) for label in labels) + 1
    header = " " * width + " ".join(
        f"{label:>{width}s}" for label in labels
    )
    lines = [
        f"dominance matrix over {matrix.num_queries} queries "
        "(row strictly beats column)",
        header,
    ]
    for name, label in zip(matrix.schemes, labels):
        cells = " ".join(
            f"{matrix.wins[name][other]:>{width}.2f}"
            if other != name
            else " " * (width - 1) + "-"
            for other in matrix.schemes
        )
        lines.append(f"{label:>{width}s}{cells}")
    return "\n".join(lines)
