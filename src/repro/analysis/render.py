"""Text rendering of allocation diagnostics (for the CLI and reports)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.profile import (
    same_disk_distance,
    shape_profile,
    suboptimality_map,
)
from repro.core.allocation import DiskAllocation
from repro.core.exceptions import QueryError

__all__ = [
    "render_allocation_profile",
    "render_disk_loads",
    "render_heatmap",
    "render_shape_profiles",
]


def render_heatmap(values: np.ndarray, zero_char: str = ".") -> str:
    """A 2-d integer array as a character map.

    Zero renders as ``zero_char``; 1-9 as digits; anything above as
    ``#``.  Used for sub-optimality maps, where zeros (optimal
    placements) should recede visually.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise QueryError(
            f"heatmap rendering is 2-d only, got shape {values.shape}"
        )

    def cell(v: int) -> str:
        if v == 0:
            return zero_char
        if 1 <= v <= 9:
            return str(int(v))
        return "#"

    return "\n".join(
        " ".join(cell(int(v)) for v in row) for row in values
    )


def render_disk_loads(loads: np.ndarray, width: int = 40) -> str:
    """Horizontal bar chart of per-disk loads."""
    loads = np.asarray(loads)
    if loads.size == 0:
        raise QueryError("no disk loads to render")
    peak = max(int(loads.max()), 1)
    lines = []
    for disk, load in enumerate(loads):
        bar = "#" * max(round(int(load) / peak * width), 0)
        lines.append(f"disk {disk:>3d} | {bar} {int(load)}")
    return "\n".join(lines)


def render_shape_profiles(
    allocation: DiskAllocation,
    shapes: Sequence[Sequence[int]],
) -> str:
    """One profile row per query shape."""
    header = (
        f"{'shape':>10s} {'OPT':>4s} {'mean':>7s} {'p50':>6s} "
        f"{'p90':>6s} {'p99':>6s} {'worst':>6s} {'frac opt':>9s}"
    )
    lines = [header]
    for shape in shapes:
        profile = shape_profile(allocation, shape)
        lines.append(
            f"{str(tuple(profile.shape)):>10s} {profile.optimal:>4d} "
            f"{profile.mean:7.3f} {profile.p50:6.1f} "
            f"{profile.p90:6.1f} {profile.p99:6.1f} "
            f"{profile.worst:>6d} {profile.fraction_optimal:9.4f}"
        )
    return "\n".join(lines)


def render_allocation_profile(
    allocation: DiskAllocation,
    shape: Sequence[int],
) -> str:
    """Full diagnostic block: profile, distance stats, heat map.

    The heat map is only included for 2-d grids (it is a picture of the
    placement plane).
    """
    sections = [render_shape_profiles(allocation, [shape])]
    distance = same_disk_distance(allocation)
    sections.append(
        f"same-disk distance: min {distance['min']:.0f}, "
        f"mean-nearest {distance['mean_nearest']:.2f}"
    )
    sections.append("storage loads:")
    sections.append(render_disk_loads(allocation.disk_loads()))
    if allocation.grid.ndim == 2:
        gap = suboptimality_map(allocation, shape)
        sections.append(
            f"sub-optimality map for shape {tuple(shape)} "
            "(RT - OPT per placement; '.' = optimal):"
        )
        sections.append(render_heatmap(gap))
    return "\n\n".join(sections)
