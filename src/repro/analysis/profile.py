"""Allocation diagnostics: where and why an allocation is sub-optimal.

Tools for inspecting a materialized allocation beyond a single mean:

* :func:`shape_profile` — full response-time distribution of one query
  shape over all placements (mean / percentiles / worst, fraction optimal).
* :func:`disk_heat` — per-disk access totals under a workload: which disks
  a workload actually hammers.
* :func:`same_disk_distance` — minimum and mean Manhattan distance between
  buckets sharing a disk: the geometric "spread" that ECC achieves through
  code distance and HCAM through curve locality.
* :func:`suboptimality_map` — per-placement map of RT - OPT for a shape,
  for locating the bad regions of an allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.cost import (
    buckets_per_disk,
    optimal_response_time,
    sliding_response_times,
)
from repro.core.exceptions import QueryError
from repro.core.query import RangeQuery

__all__ = [
    "ShapeProfile",
    "disk_heat",
    "heat_imbalance",
    "same_disk_distance",
    "shape_profile",
    "suboptimality_map",
]


@dataclass(frozen=True)
class ShapeProfile:
    """Distribution of a shape's response time over all placements."""

    shape: Tuple[int, ...]
    optimal: int
    mean: float
    p50: float
    p90: float
    p99: float
    worst: int
    fraction_optimal: float
    num_placements: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "shape": self.shape,
            "optimal": self.optimal,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "worst": self.worst,
            "fraction_optimal": self.fraction_optimal,
            "num_placements": self.num_placements,
        }


def shape_profile(
    allocation: DiskAllocation, shape: Sequence[int]
) -> ShapeProfile:
    """Response-time distribution of ``shape`` over every placement."""
    shape = tuple(int(s) for s in shape)
    times = sliding_response_times(allocation, shape)
    if times.size == 0:
        raise QueryError(
            f"shape {shape} does not fit in grid {allocation.grid.dims}"
        )
    area = int(np.prod(shape))
    optimum = optimal_response_time(area, allocation.num_disks)
    flat = times.ravel()
    return ShapeProfile(
        shape=shape,
        optimal=optimum,
        mean=float(flat.mean()),
        p50=float(np.percentile(flat, 50)),
        p90=float(np.percentile(flat, 90)),
        p99=float(np.percentile(flat, 99)),
        worst=int(flat.max()),
        fraction_optimal=float((flat == optimum).mean()),
        num_placements=int(flat.size),
    )


def suboptimality_map(
    allocation: DiskAllocation, shape: Sequence[int]
) -> np.ndarray:
    """Per-placement ``RT - OPT`` array for one shape.

    Zero entries are placements answered optimally; the nonzero pattern
    shows where the allocation's structure fails the shape.
    """
    shape = tuple(int(s) for s in shape)
    times = sliding_response_times(allocation, shape)
    if times.size == 0:
        raise QueryError(
            f"shape {shape} does not fit in grid {allocation.grid.dims}"
        )
    area = int(np.prod(shape))
    optimum = optimal_response_time(area, allocation.num_disks)
    return times - optimum


def disk_heat(
    allocation: DiskAllocation, queries: Sequence[RangeQuery]
) -> np.ndarray:
    """Total bucket reads per disk across a workload, ``shape (M,)``.

    A perfectly balanced workload-allocation pair gives equal entries;
    skew here means some disks bottleneck the whole workload.
    """
    queries = list(queries)
    if not queries:
        raise QueryError("workload contains no queries")
    heat = np.zeros(allocation.num_disks, dtype=np.int64)
    for query in queries:
        heat += buckets_per_disk(allocation, query)
    return heat


def heat_imbalance(heat: np.ndarray) -> float:
    """Max/mean ratio of a heat vector (1.0 = perfectly even)."""
    heat = np.asarray(heat, dtype=np.float64)
    if heat.size == 0 or heat.sum() == 0:
        raise QueryError("heat vector is empty or all-zero")
    return float(heat.max() / heat.mean())


def same_disk_distance(allocation: DiskAllocation) -> Dict[str, float]:
    """Manhattan-distance statistics between same-disk bucket pairs.

    Returns ``{"min": ..., "mean_nearest": ...}`` where ``min`` is the
    global minimum distance between any two buckets on one disk and
    ``mean_nearest`` averages, over buckets, the distance to the nearest
    same-disk neighbour.  Larger is better: a query must be at least
    ``min`` wide in some direction before any disk repeats.
    """
    grid = allocation.grid
    coords_by_disk: Dict[int, list] = {}
    for coords in grid.iter_buckets():
        coords_by_disk.setdefault(
            int(allocation.table[coords]), []
        ).append(coords)
    global_min = None
    nearest_sum = 0.0
    nearest_count = 0
    for bucket_list in coords_by_disk.values():
        if len(bucket_list) < 2:
            continue
        points = np.array(bucket_list, dtype=np.int64)
        # Pairwise Manhattan distances within the disk (small lists).
        diffs = np.abs(
            points[:, None, :] - points[None, :, :]
        ).sum(axis=2)
        np.fill_diagonal(diffs, np.iinfo(np.int64).max)
        nearest = diffs.min(axis=1)
        local_min = int(nearest.min())
        if global_min is None or local_min < global_min:
            global_min = local_min
        nearest_sum += float(nearest.sum())
        nearest_count += len(bucket_list)
    if nearest_count == 0:
        raise QueryError(
            "no disk holds two buckets; distance undefined"
        )
    return {
        "min": float(global_min),
        "mean_nearest": nearest_sum / nearest_count,
    }
