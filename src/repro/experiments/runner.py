"""Run the full experiment suite (all paper figures/tables) in one call.

``run_all`` executes E1-E5, EPM, X1, X3-X5 and the THM existence search
with the default (paper-scale) parameters and returns every result keyed
by experiment id; ``render_all`` turns that into the textual report
EXPERIMENTS.md is built from.  ``quick=True`` shrinks the sweeps for
smoke tests and CI.  (X6, the growth experiment, returns a different
result type and runs separately via ``repro.experiments.exp_growth`` —
``scripts/generate_report.py`` appends it to the full report.)
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments import (
    exp_beyond_paper,
    exp_curve_ablation,
    exp_db_size,
    exp_load_sweep,
    exp_num_attributes,
    exp_num_disks,
    exp_partial_match,
    exp_query_shape,
    exp_query_size,
    exp_replication,
)
from repro.experiments.exp_num_attributes import deviation_table
from repro.experiments.reporting import render_table
from repro.theory.conditions import render_table as render_conditions
from repro.theory.search import SearchResult, impossibility_frontier

__all__ = [
    "render_all",
    "render_thm",
    "run_all",
]


def run_all(quick: bool = False) -> Dict[str, object]:
    """Execute the whole suite; keys match DESIGN.md's experiment index."""
    results: Dict[str, object] = {}
    if quick:
        results["E1"] = exp_query_size.run(
            grid_dims=(16, 16), num_disks=8, areas=(1, 4, 16, 64, 256)
        )
        results["E2"] = exp_query_shape.run(
            grid_dims=(16, 16), num_disks=8, area=16
        )
        results["E3"] = exp_num_attributes.run(
            num_disks=8,
            grid_2d=(16, 16),
            grid_3d=(8, 8, 8),
            sides_2d=(2, 4, 8, 16),
            sides_3d=(2, 4, 8),
        )
        results["E4a"], results["E4b"] = exp_num_disks.run(
            grid_dims=(16, 16),
            disk_counts=(2, 4, 8, 16),
            large_shape=(8, 8),
        )
        results["E5"] = exp_db_size.run(
            num_disks=8, grid_sides=(8, 16, 32), shape=(2, 2)
        )
        results["X1"] = exp_curve_ablation.run(
            grid_dims=(16, 16), disk_counts=(5, 7, 8)
        )
        results["EPM"] = exp_partial_match.run(
            grid_dims=(8, 8, 8), num_disks=8
        )
        results["X3"] = exp_beyond_paper.run(
            grid_dims=(16, 16), disk_counts=(4, 8)
        )
        results["X4"] = exp_replication.run(
            grid_dims=(8, 8),
            num_disks=4,
            sides=(2, 3),
            max_placements=16,
        )
        results["X5"] = exp_load_sweep.run(
            grid_dims=(16, 16),
            num_disks=4,
            num_queries=100,
            rates_per_second=(10.0, 80.0),
        )
        results["THM"] = impossibility_frontier(max_disks=6)
    else:
        results["E1"] = exp_query_size.run()
        results["E2"] = exp_query_shape.run()
        results["E3"] = exp_num_attributes.run()
        results["E4a"], results["E4b"] = exp_num_disks.run()
        results["E5"] = exp_db_size.run()
        results["X1"] = exp_curve_ablation.run()
        results["EPM"] = exp_partial_match.run()
        results["X3"] = exp_beyond_paper.run()
        results["X4"] = exp_replication.run()
        results["X5"] = exp_load_sweep.run()
        results["THM"] = impossibility_frontier(max_disks=7)
    return results


def render_thm(results: List[SearchResult]) -> str:
    """Textual rendering of the impossibility-frontier search."""
    lines = [
        "[THM] strictly optimal range-query declusterings (exhaustive search)",
        " M | grid | exists | nodes explored",
        "---+------+--------+---------------",
    ]
    for m, result in enumerate(results, start=1):
        side = max(m, 2)
        verdict = "yes" if result.exists else "no"
        lines.append(
            f"{m:>2} | {side}x{side:<3} | {verdict:<6} | "
            f"{result.nodes_explored}"
        )
    return "\n".join(lines)


def render_all(results: Dict[str, object]) -> str:
    """The whole suite as one text report."""
    sections = []
    for key in ("E1", "E2"):
        sections.append(render_table(results[key]))
    comparison = results["E3"]
    sections.append(render_table(comparison.result_2d))
    sections.append(render_table(comparison.result_3d))
    lines = [
        "[E3] mean relative deviation from optimal, "
        "2-d vs 3-d (matched sides >= 4)"
    ]
    min_side = 4 if any(
        s >= 4 for s in comparison.common_sides()
    ) else 1
    for scheme, (dev2, dev3) in deviation_table(
        comparison, min_side=min_side
    ).items():
        lines.append(f"  {scheme:8s} 2-d: {dev2:.4f}   3-d: {dev3:.4f}")
    sections.append("\n".join(lines))
    for key in ("E4a", "E4b", "E5", "X1", "EPM", "X3", "X4", "X5"):
        sections.append(render_table(results[key]))
    sections.append(render_thm(results["THM"]))
    sections.append("[T1] " + render_conditions())
    return "\n\n".join(sections)
