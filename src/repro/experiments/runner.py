"""Run the full experiment suite (all paper figures/tables) in one call.

``run_all`` executes E1-E5, EPM, X1, X3-X5, X7 and the THM existence
search with the default (paper-scale) parameters and returns every result
keyed by experiment id; ``render_all`` turns that into the textual report
EXPERIMENTS.md is built from.  ``quick=True`` shrinks the sweeps for
smoke tests and CI.  (X6, the growth experiment, returns a different
result type and runs separately via ``repro.experiments.exp_growth`` —
``scripts/generate_report.py`` appends it to the full report.)

``run_all(workers=N)`` fans the independent experiment configurations out
over a spawn-context process pool.  Each worker imports the package
fresh (so the allocation cache is rebuilt per process — spawn-safe by
construction) and every experiment is deterministic, so the parallel run
returns results identical to the serial one, assembled in the same
canonical key order regardless of completion order.  Workers do not
rebuild allocations redundantly: the pool initializer installs a
:class:`~repro.core.shm.SharedAllocationBroker` into each worker's
global allocation cache, so the first worker to materialize a
``(scheme, grid, M)`` table publishes it to a
``multiprocessing.shared_memory`` segment and every other worker
attaches it zero-copy instead of re-deriving (or re-pickling) it.  The
parent owns teardown: every segment is unlinked when the run finishes,
succeeds, fails, or is retried — workers crashing mid-publish included.

The runner is also **self-healing**: a worker that crashes, dies without
a traceback, or hangs past ``timeout`` is retried (``retries`` attempts
per experiment, exponential ``backoff`` between rounds, a fresh pool each
round), and with a checkpoint every completed result is persisted
immediately so ``run_all(..., resume=True)`` — CLI:
``experiment all --resume`` — skips finished experiments after a crash or
kill.  Serial, parallel, and resumed runs all produce byte-identical
reports.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.exceptions import RunnerError
from repro.experiments.checkpoint import RunCheckpoint
from repro.experiments.exp_num_attributes import deviation_table
from repro.experiments.reporting import render_table
from repro.faults.injection import maybe_inject_runner_fault
from repro.obs.log import get_logger
from repro.obs.metrics import global_registry
from repro.obs.trace import global_tracer, trace, trace_event
from repro.theory.conditions import render_table as render_conditions
from repro.theory.search import SearchResult

_LOG = get_logger("repro.experiments.runner")

__all__ = [
    "DEFAULT_BACKOFF",
    "DEFAULT_RETRIES",
    "EXPERIMENT_KEYS",
    "render_all",
    "render_thm",
    "run_all",
    "run_experiment",
]

#: Independent experiment jobs, in the canonical execution/report order.
#: ``E4`` and ``X7`` each expand to a result pair (``E4a``/``E4b``,
#: ``X7a``/``X7b``).
EXPERIMENT_KEYS = (
    "E1", "E2", "E3", "E4", "E5", "X1", "EPM", "X3", "X4", "X5", "X7",
    "THM",
)

#: Jobs whose result is a pair, and the report keys the pair expands to.
_PAIR_KEYS: Dict[str, Tuple[str, str]] = {
    "E4": ("E4a", "E4b"),
    "X7": ("X7a", "X7b"),
}

#: How many times a failing experiment is retried before the run aborts.
DEFAULT_RETRIES = 2

#: Base delay (seconds) between retry rounds; doubles per round.
DEFAULT_BACKOFF = 0.5

#: Quick-mode keyword arguments per experiment (paper-scale runs pass none).
_QUICK_KWARGS: Dict[str, Dict[str, object]] = {
    "E1": {
        "grid_dims": (16, 16),
        "num_disks": 8,
        "areas": (1, 4, 16, 64, 256),
    },
    "E2": {"grid_dims": (16, 16), "num_disks": 8, "area": 16},
    "E3": {
        "num_disks": 8,
        "grid_2d": (16, 16),
        "grid_3d": (8, 8, 8),
        "sides_2d": (2, 4, 8, 16),
        "sides_3d": (2, 4, 8),
    },
    "E4": {
        "grid_dims": (16, 16),
        "disk_counts": (2, 4, 8, 16),
        "large_shape": (8, 8),
    },
    "E5": {"num_disks": 8, "grid_sides": (8, 16, 32), "shape": (2, 2)},
    "X1": {"grid_dims": (16, 16), "disk_counts": (5, 7, 8)},
    "EPM": {"grid_dims": (8, 8, 8), "num_disks": 8},
    "X3": {"grid_dims": (16, 16), "disk_counts": (4, 8)},
    "X4": {
        "grid_dims": (8, 8),
        "num_disks": 4,
        "sides": (2, 3),
        "max_placements": 16,
    },
    "X5": {
        "grid_dims": (16, 16),
        "num_disks": 4,
        "num_queries": 100,
        "rates_per_second": (10.0, 80.0),
    },
    "X7": {
        "grid_dims": (8, 8),
        "num_disks": 4,
        "side": 2,
        "failure_counts": (0, 1, 2),
        "num_scenarios": 2,
        "max_placements": 12,
    },
    "THM": {"max_disks": 6},
}

_FULL_KWARGS: Dict[str, Dict[str, object]] = {
    "THM": {"max_disks": 7},
}


def _job_callable(key: str):
    # Imports stay inside the worker: under the spawn start method each
    # process resolves the experiment module fresh at execution time.
    from repro.experiments import (
        exp_beyond_paper,
        exp_curve_ablation,
        exp_db_size,
        exp_degraded,
        exp_load_sweep,
        exp_num_attributes,
        exp_num_disks,
        exp_partial_match,
        exp_query_shape,
        exp_query_size,
        exp_replication,
    )
    from repro.theory.search import impossibility_frontier

    jobs = {
        "E1": exp_query_size.run,
        "E2": exp_query_shape.run,
        "E3": exp_num_attributes.run,
        "E4": exp_num_disks.run,
        "E5": exp_db_size.run,
        "X1": exp_curve_ablation.run,
        "EPM": exp_partial_match.run,
        "X3": exp_beyond_paper.run,
        "X4": exp_replication.run,
        "X5": exp_load_sweep.run,
        "X7": exp_degraded.run,
        "THM": impossibility_frontier,
    }
    return jobs[key]


def run_experiment(key: str, quick: bool = False) -> object:
    """Run one experiment job by key (pair jobs return their result pair).

    This is the unit of work the parallel runner ships to worker
    processes; it must stay a module-level function so it pickles under
    the spawn start method.  Before doing real work it consults the
    ``REPRO_RUNNER_FAULTS`` chaos plan (see
    :mod:`repro.faults.injection`) so the self-healing paths can be
    exercised end to end.
    """
    if key not in EXPERIMENT_KEYS:
        raise KeyError(
            f"unknown experiment key {key!r}; known: {EXPERIMENT_KEYS}"
        )
    maybe_inject_runner_fault(key)
    kwargs = (_QUICK_KWARGS if quick else _FULL_KWARGS).get(key, {})
    with trace("runner.experiment", key=key, quick=quick):
        start = time.perf_counter()
        result = _job_callable(key)(**kwargs)
        global_registry().observe(
            f"experiment.{key}.seconds", time.perf_counter() - start
        )
        return result


def _assemble(raw: Dict[str, object]) -> Dict[str, object]:
    """Flatten job outputs into the canonical result dict (fixed order)."""
    results: Dict[str, object] = {}
    for key in EXPERIMENT_KEYS:
        if key in _PAIR_KEYS:
            first, second = _PAIR_KEYS[key]
            results[first], results[second] = raw[key]  # type: ignore[misc]
        else:
            results[key] = raw[key]
    return results


def _retry_round_delay(backoff: float, round_index: int) -> float:
    """Exponential backoff: ``backoff * 2**round`` seconds, round >= 0."""
    return backoff * (2.0 ** round_index)


def _run_serial(
    pending: List[str],
    quick: bool,
    retries: int,
    backoff: float,
    checkpoint: Optional[RunCheckpoint],
) -> Dict[str, object]:
    """In-process execution with bounded per-experiment retries."""
    raw: Dict[str, object] = {}
    for key in pending:
        attempt = 0
        while True:
            try:
                result = run_experiment(key, quick)
            except Exception as exc:  # qa502: allow — every failure is retried, then re-raised as RunnerError
                attempt += 1
                if attempt > retries:
                    raise RunnerError(
                        f"experiment {key} failed after {attempt} "
                        f"attempt(s): {exc!r}"
                    ) from exc
                delay = _retry_round_delay(backoff, attempt - 1)
                _record_retry(key, attempt, exc, delay)
                time.sleep(delay)
            else:
                raw[key] = result
                if checkpoint is not None:
                    checkpoint.record(key, result)
                break
    return raw


def _record_retry(
    key: str, attempt: int, exc: BaseException, delay: float
) -> None:
    """Make one retry visible: log line, counter, trace event."""
    _LOG.warning(
        "experiment %s attempt %d failed (%r); retrying in %.2fs",
        key, attempt, exc, delay,
    )
    global_registry().inc("runner.retries")
    trace_event(
        "runner.retry",
        key=key, attempt=attempt, delay_s=delay, error=repr(exc),
    )


def _record_timeout(key: str, timeout: Optional[float]) -> None:
    """Make one hung-worker timeout visible alongside the retry."""
    _LOG.warning(
        "experiment %s exceeded its %.1fs timeout; worker counted as hung",
        key, timeout or 0.0,
    )
    global_registry().inc("runner.timeouts")
    trace_event("runner.timeout", key=key, timeout_s=timeout)


def _run_experiment_job(
    key: str, quick: bool, collect_spans: bool
) -> Tuple[object, Dict[str, object]]:
    """Pool unit of work: run one experiment and ship its obs payload.

    Runs in a spawn worker, so it reads the *worker's* global tracer,
    metrics registry, and allocation cache.  The payload carries the
    worker's spans (when the parent asked for them) plus a cumulative
    metrics snapshot including the worker's cache counters — the channel
    through which parallel runs report aggregate observability numbers
    instead of parent-only ones.  Results stay untouched: the parent
    strips the payload before assembling/checkpointing, so parallel runs
    remain byte-identical to serial ones.
    """
    import os

    from repro.core.backends import active_backend_name
    from repro.core.cache import global_cache

    tracer = global_tracer()
    if collect_spans:
        tracer.enable()
    result = run_experiment(key, quick)
    registry = global_registry()
    global_cache().publish_metrics(registry)
    return result, {
        "pid": os.getpid(),
        # The kernel backend this worker actually resolved — the parent
        # asserts it matches its own (see the runner tests): a worker
        # silently falling back to a different backend would make
        # "ran with --backend X" a lie.
        "backend": active_backend_name(),
        "spans": tracer.drain() if collect_spans else [],
        "metrics": registry.payload(),
    }


def _ingest_job_payload(payload: Dict[str, object]) -> None:
    """Merge one worker payload into the parent's tracer and registry."""
    from repro.core.backends import active_backend_name

    worker_backend = payload.get("backend")
    if (
        worker_backend is not None
        and worker_backend != active_backend_name()
    ):
        # Should be unreachable — the initializer validates the backend
        # at worker startup — but a divergent worker must not pass
        # silently: its numbers would be attributed to the wrong kernel.
        global_registry().inc("runner.backend_mismatches")
        trace_event(
            "runner.backend_mismatch",
            worker=str(worker_backend),
            parent=active_backend_name(),
        )
    tracer = global_tracer()
    if tracer.enabled:
        for span in payload.get("spans", []):  # type: ignore[union-attr]
            tracer.record(span)
    global_registry().ingest(payload["metrics"])  # type: ignore[arg-type]


def _init_worker_broker(
    broker,
    backend: Optional[str] = None,
    sat_budget: Optional[int] = None,
    verify: Optional[str] = None,
) -> None:
    """Pool initializer: broker, backend, SAT budget, verify level.

    Runs in the worker before any experiment; module-level so it pickles
    under spawn.  Workers hold the pristine default scheme registry, so
    the broker's name-keyed registry is unambiguous here.

    ``backend`` is the parent's resolved kernel-backend name: it is
    written to ``REPRO_BACKEND`` *and* validated eagerly via
    :func:`repro.core.backends.set_backend`, so a worker that cannot run
    the requested backend (no compiler, no numba) fails at pool startup
    instead of silently computing on a different implementation than the
    parent.  ``sat_budget`` propagates the chunked-SAT working-memory
    budget the same way, and ``verify`` the parent's resolved
    artifact-verification depth (``REPRO_VERIFY``) — workers must check
    spilled tables and cached kernels exactly as strictly as the parent
    would.
    """
    import os

    from repro.core.cache import global_cache

    if broker is not None:
        global_cache().set_broker(broker)
    if backend is not None:
        from repro.core.backends import BACKEND_ENV, set_backend

        os.environ[BACKEND_ENV] = backend
        set_backend(backend)
    if sat_budget is not None:
        from repro.core.sat import BYTE_BUDGET_ENV

        os.environ[BYTE_BUDGET_ENV] = str(int(sat_budget))
    if verify is not None:
        from repro.core.integrity import VERIFY_ENV

        os.environ[VERIFY_ENV] = verify
    # Experiment workers never nest a build pool inside the experiment
    # pool: N experiment workers × M build workers would oversubscribe
    # every core and multiply the transient tile footprint.  Any chunked
    # build a worker performs runs serially; parallel builds belong to
    # the parent (or a dedicated build invocation).
    from repro.core.sat import BUILD_WORKERS_ENV

    os.environ[BUILD_WORKERS_ENV] = "1"


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when workers are hung or already dead.

    ``shutdown`` alone would join a hung worker forever, so any surviving
    worker processes are killed first; the private ``_processes`` mapping
    is the only handle the executor exposes, hence the defensive
    ``getattr``.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        if process.is_alive():
            process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _run_parallel(
    pending: List[str],
    quick: bool,
    workers: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    checkpoint: Optional[RunCheckpoint],
) -> Dict[str, object]:
    """Pool execution surviving worker crashes, hard exits, and hangs.

    Each round runs every pending experiment in a fresh spawn pool; keys
    whose future raises (worker exception), breaks the pool (hard exit),
    or exceeds ``timeout`` are collected and retried next round after an
    exponential backoff, up to ``retries`` extra attempts per key.
    """
    from repro.core.shm import SharedAllocationArena

    raw: Dict[str, object] = {}
    attempts: Dict[str, int] = {key: 0 for key in pending}
    failures: Dict[str, BaseException] = {}
    round_index = 0
    # One arena for the whole run (all retry rounds): allocations built
    # in a crashed round stay attachable in the next, and the single
    # ``finally`` below guarantees every segment is unlinked exactly once.
    arena = SharedAllocationArena.try_create()
    # The initializer always runs — even without an arena the workers
    # must inherit the parent's backend choice and SAT byte budget.
    from repro.core.backends import active_backend_name
    from repro.core.integrity import verify_level
    from repro.core.sat import sat_byte_budget

    initargs = {
        "initializer": _init_worker_broker,
        "initargs": (
            arena.broker if arena is not None else None,
            active_backend_name(),
            sat_byte_budget(),
            verify_level(),
        ),
    }
    try:
        while pending:
            context = multiprocessing.get_context("spawn")
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=context, **initargs
            )
            failed: List[str] = []
            collect_spans = global_tracer().enabled
            try:
                futures = {
                    key: pool.submit(
                        _run_experiment_job, key, quick, collect_spans
                    )
                    for key in pending
                }
                for key in pending:
                    try:
                        result, payload = futures[key].result(
                            timeout=timeout
                        )
                    except FutureTimeoutError as exc:
                        _record_timeout(key, timeout)
                        failures[key] = exc
                        failed.append(key)
                    except Exception as exc:  # qa502: allow — recorded and retried; exhausted keys raise below
                        # Worker exception or BrokenProcessPool after a
                        # hard worker death; both are retryable.
                        failures[key] = exc
                        failed.append(key)
                    else:
                        _ingest_job_payload(payload)
                        raw[key] = result
                        if checkpoint is not None:
                            checkpoint.record(key, result)
            finally:
                _terminate_pool(pool)
            for key in failed:
                attempts[key] += 1
            exhausted = [key for key in failed if attempts[key] > retries]
            if exhausted:
                details = "; ".join(
                    f"{key}: {failures[key]!r}" for key in exhausted
                )
                raise RunnerError(
                    f"experiment(s) failed after {retries + 1} "
                    f"attempt(s) — {details}"
                )
            pending = failed
            if pending:
                delay = _retry_round_delay(backoff, round_index)
                for key in pending:
                    _record_retry(key, attempts[key], failures[key], delay)
                time.sleep(delay)
                round_index += 1
    finally:
        if arena is not None:
            arena.close()
    return raw


def run_all(
    quick: bool = False,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> Dict[str, object]:
    """Execute the whole suite; keys match DESIGN.md's experiment index.

    ``workers`` > 1 distributes the independent experiments over a
    spawn-context process pool; results (and their dict ordering) are
    identical to a serial run.

    Self-healing knobs:

    * ``timeout`` — seconds each experiment may run before its worker is
      declared hung and retried (pool execution only; the serial path has
      no one to watch the clock).
    * ``retries`` / ``backoff`` — extra attempts per failing experiment
      and the base exponential delay between retry rounds.  When an
      experiment still fails after its last retry the run raises
      :class:`~repro.core.exceptions.RunnerError`.
    * ``checkpoint`` / ``resume`` — persist every completed result to the
      given file; with ``resume=True`` previously completed experiments
      are loaded instead of re-run.  The file is deleted after a fully
      successful run, so a later ``resume`` starts fresh rather than
      serving stale results.
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be a positive integer: {workers}")
    if retries < 0:
        raise ValueError(f"retries must be non-negative: {retries}")
    if backoff < 0:
        raise ValueError(f"backoff must be non-negative: {backoff}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive: {timeout}")
    if resume and checkpoint is None:
        raise ValueError("resume=True needs a checkpoint path")

    store: Optional[RunCheckpoint] = None
    raw: Dict[str, object] = {}
    if checkpoint is not None:
        store = RunCheckpoint(checkpoint, quick=quick)
        if resume:
            raw.update(store.load())
    pending = [key for key in EXPERIMENT_KEYS if key not in raw]

    if workers is None or workers == 1:
        raw.update(
            _run_serial(pending, quick, retries, backoff, store)
        )
    else:
        raw.update(
            _run_parallel(
                pending, quick, workers, timeout, retries, backoff, store
            )
        )
    results = _assemble(raw)
    if store is not None:
        store.clear()
    return results


def render_thm(results: List[SearchResult]) -> str:
    """Textual rendering of the impossibility-frontier search."""
    lines = [
        "[THM] strictly optimal range-query declusterings (exhaustive search)",
        " M | grid | exists | nodes explored",
        "---+------+--------+---------------",
    ]
    for m, result in enumerate(results, start=1):
        side = max(m, 2)
        verdict = "yes" if result.exists else "no"
        lines.append(
            f"{m:>2} | {side}x{side:<3} | {verdict:<6} | "
            f"{result.nodes_explored}"
        )
    return "\n".join(lines)


def render_all(results: Dict[str, object]) -> str:
    """The whole suite as one text report."""
    sections = []
    for key in ("E1", "E2"):
        sections.append(render_table(results[key]))
    comparison = results["E3"]
    sections.append(render_table(comparison.result_2d))
    sections.append(render_table(comparison.result_3d))
    lines = [
        "[E3] mean relative deviation from optimal, "
        "2-d vs 3-d (matched sides >= 4)"
    ]
    min_side = 4 if any(
        s >= 4 for s in comparison.common_sides()
    ) else 1
    for scheme, (dev2, dev3) in deviation_table(
        comparison, min_side=min_side
    ).items():
        lines.append(f"  {scheme:8s} 2-d: {dev2:.4f}   3-d: {dev3:.4f}")
    sections.append("\n".join(lines))
    for key in ("E4a", "E4b", "E5", "X1", "EPM", "X3", "X4", "X5",
                "X7a", "X7b"):
        sections.append(render_table(results[key]))
    sections.append(render_thm(results["THM"]))
    sections.append("[T1] " + render_conditions())
    return "\n\n".join(sections)
