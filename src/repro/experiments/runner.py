"""Run the full experiment suite (all paper figures/tables) in one call.

``run_all`` executes E1-E5, EPM, X1, X3-X5 and the THM existence search
with the default (paper-scale) parameters and returns every result keyed
by experiment id; ``render_all`` turns that into the textual report
EXPERIMENTS.md is built from.  ``quick=True`` shrinks the sweeps for
smoke tests and CI.  (X6, the growth experiment, returns a different
result type and runs separately via ``repro.experiments.exp_growth`` —
``scripts/generate_report.py`` appends it to the full report.)

``run_all(workers=N)`` fans the independent experiment configurations out
over a spawn-context process pool.  Each worker imports the package
fresh (so the allocation cache is rebuilt per process — spawn-safe by
construction) and every experiment is deterministic, so the parallel run
returns results identical to the serial one, assembled in the same
canonical key order regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional

from repro.experiments.exp_num_attributes import deviation_table
from repro.experiments.reporting import render_table
from repro.theory.conditions import render_table as render_conditions
from repro.theory.search import SearchResult

__all__ = [
    "EXPERIMENT_KEYS",
    "render_all",
    "render_thm",
    "run_all",
    "run_experiment",
]

#: Independent experiment jobs, in the canonical execution/report order.
#: ``E4`` expands to the ``E4a``/``E4b`` result pair.
EXPERIMENT_KEYS = (
    "E1", "E2", "E3", "E4", "E5", "X1", "EPM", "X3", "X4", "X5", "THM",
)

#: Quick-mode keyword arguments per experiment (paper-scale runs pass none).
_QUICK_KWARGS: Dict[str, Dict[str, object]] = {
    "E1": {
        "grid_dims": (16, 16),
        "num_disks": 8,
        "areas": (1, 4, 16, 64, 256),
    },
    "E2": {"grid_dims": (16, 16), "num_disks": 8, "area": 16},
    "E3": {
        "num_disks": 8,
        "grid_2d": (16, 16),
        "grid_3d": (8, 8, 8),
        "sides_2d": (2, 4, 8, 16),
        "sides_3d": (2, 4, 8),
    },
    "E4": {
        "grid_dims": (16, 16),
        "disk_counts": (2, 4, 8, 16),
        "large_shape": (8, 8),
    },
    "E5": {"num_disks": 8, "grid_sides": (8, 16, 32), "shape": (2, 2)},
    "X1": {"grid_dims": (16, 16), "disk_counts": (5, 7, 8)},
    "EPM": {"grid_dims": (8, 8, 8), "num_disks": 8},
    "X3": {"grid_dims": (16, 16), "disk_counts": (4, 8)},
    "X4": {
        "grid_dims": (8, 8),
        "num_disks": 4,
        "sides": (2, 3),
        "max_placements": 16,
    },
    "X5": {
        "grid_dims": (16, 16),
        "num_disks": 4,
        "num_queries": 100,
        "rates_per_second": (10.0, 80.0),
    },
    "THM": {"max_disks": 6},
}

_FULL_KWARGS: Dict[str, Dict[str, object]] = {
    "THM": {"max_disks": 7},
}


def _job_callable(key: str):
    # Imports stay inside the worker: under the spawn start method each
    # process resolves the experiment module fresh at execution time.
    from repro.experiments import (
        exp_beyond_paper,
        exp_curve_ablation,
        exp_db_size,
        exp_load_sweep,
        exp_num_attributes,
        exp_num_disks,
        exp_partial_match,
        exp_query_shape,
        exp_query_size,
        exp_replication,
    )
    from repro.theory.search import impossibility_frontier

    jobs = {
        "E1": exp_query_size.run,
        "E2": exp_query_shape.run,
        "E3": exp_num_attributes.run,
        "E4": exp_num_disks.run,
        "E5": exp_db_size.run,
        "X1": exp_curve_ablation.run,
        "EPM": exp_partial_match.run,
        "X3": exp_beyond_paper.run,
        "X4": exp_replication.run,
        "X5": exp_load_sweep.run,
        "THM": impossibility_frontier,
    }
    return jobs[key]


def run_experiment(key: str, quick: bool = False) -> object:
    """Run one experiment job by key (``E4`` returns its result pair).

    This is the unit of work the parallel runner ships to worker
    processes; it must stay a module-level function so it pickles under
    the spawn start method.
    """
    if key not in EXPERIMENT_KEYS:
        raise KeyError(
            f"unknown experiment key {key!r}; known: {EXPERIMENT_KEYS}"
        )
    kwargs = (_QUICK_KWARGS if quick else _FULL_KWARGS).get(key, {})
    return _job_callable(key)(**kwargs)


def _assemble(raw: Dict[str, object]) -> Dict[str, object]:
    """Flatten job outputs into the canonical result dict (fixed order)."""
    results: Dict[str, object] = {}
    for key in EXPERIMENT_KEYS:
        if key == "E4":
            results["E4a"], results["E4b"] = raw[key]  # type: ignore[misc]
        else:
            results[key] = raw[key]
    return results


def run_all(
    quick: bool = False, workers: Optional[int] = None
) -> Dict[str, object]:
    """Execute the whole suite; keys match DESIGN.md's experiment index.

    ``workers`` > 1 distributes the independent experiments over a
    spawn-context process pool; results (and their dict ordering) are
    identical to a serial run.
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be a positive integer: {workers}")
    if workers is None or workers == 1:
        raw = {key: run_experiment(key, quick) for key in EXPERIMENT_KEYS}
        return _assemble(raw)
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=context
    ) as pool:
        futures = {
            key: pool.submit(run_experiment, key, quick)
            for key in EXPERIMENT_KEYS
        }
        raw = {key: future.result() for key, future in futures.items()}
    return _assemble(raw)


def render_thm(results: List[SearchResult]) -> str:
    """Textual rendering of the impossibility-frontier search."""
    lines = [
        "[THM] strictly optimal range-query declusterings (exhaustive search)",
        " M | grid | exists | nodes explored",
        "---+------+--------+---------------",
    ]
    for m, result in enumerate(results, start=1):
        side = max(m, 2)
        verdict = "yes" if result.exists else "no"
        lines.append(
            f"{m:>2} | {side}x{side:<3} | {verdict:<6} | "
            f"{result.nodes_explored}"
        )
    return "\n".join(lines)


def render_all(results: Dict[str, object]) -> str:
    """The whole suite as one text report."""
    sections = []
    for key in ("E1", "E2"):
        sections.append(render_table(results[key]))
    comparison = results["E3"]
    sections.append(render_table(comparison.result_2d))
    sections.append(render_table(comparison.result_3d))
    lines = [
        "[E3] mean relative deviation from optimal, "
        "2-d vs 3-d (matched sides >= 4)"
    ]
    min_side = 4 if any(
        s >= 4 for s in comparison.common_sides()
    ) else 1
    for scheme, (dev2, dev3) in deviation_table(
        comparison, min_side=min_side
    ).items():
        lines.append(f"  {scheme:8s} 2-d: {dev2:.4f}   3-d: {dev3:.4f}")
    sections.append("\n".join(lines))
    for key in ("E4a", "E4b", "E5", "X1", "EPM", "X3", "X4", "X5"):
        sections.append(render_table(results[key]))
    sections.append(render_thm(results["THM"]))
    sections.append("[T1] " + render_conditions())
    return "\n\n".join(sections)
