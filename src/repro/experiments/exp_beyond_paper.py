"""X3 (extension) — the 1994 field vs its successors.

The paper closes by calling for workload-informed declustering and notes
there is no clear winner among DM/CMD, FX, ECC, HCAM.  This experiment
adds the two families that answered that call:

* **cyclic allocation** (RPHM / GFIB / EXH skip selection) — fixed
  schemes, one modular multiplication per bucket, that dominate the 1994
  methods on small range queries;
* **workload-aware annealing** — optimize the allocation for the actual
  query distribution.

The sweep replays the paper's small-query disk-count experiment (E4a) with
the extended scheme set, answering: how much was left on the table in
1994?
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.evaluator import SchemeEvaluator
from repro.core.grid import Grid
from repro.experiments.common import ExperimentResult

__all__ = [
    "DEFAULT_DISK_COUNTS",
    "EXTENDED_SCHEMES",
    "run",
]

EXTENDED_SCHEMES = (
    "dm", "fx-auto", "ecc", "hcam", "cyclic", "cyclic-gfib", "cyclic-exh",
)

DEFAULT_DISK_COUNTS = (4, 8, 16, 32)


def run(
    grid_dims: Sequence[int] = (32, 32),
    disk_counts: Sequence[int] = DEFAULT_DISK_COUNTS,
    shape: Sequence[int] = (3, 3),
    schemes: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Small-query disk sweep over the extended scheme set."""
    schemes = list(schemes or EXTENDED_SCHEMES)
    grid = Grid(grid_dims)
    shape = tuple(int(s) for s in shape)
    x_values = []
    series = {name: [] for name in schemes}
    optimal = []
    for num_disks in disk_counts:
        evaluator = SchemeEvaluator(grid, num_disks, schemes)
        results = evaluator.evaluate_shapes([shape])
        x_values.append(num_disks)
        optimal.append(results[0].mean_optimal)
        for result in results:
            series[result.scheme].append(result.mean_response_time)
    return ExperimentResult(
        experiment_id="X3",
        title=f"1994 methods vs cyclic successors, query {shape}",
        x_label="number of disks (M)",
        x_values=x_values,
        series=series,
        optimal=optimal,
        config={
            "grid": grid.dims,
            "shape": shape,
            "disk_counts": tuple(disk_counts),
        },
    )
