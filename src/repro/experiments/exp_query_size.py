"""Experiment 1 — effect of query size (paper: area swept 1 to 1024).

Fixed: two attributes, 32 x 32 grid (1024 buckets), 16 disks.  For each
query area, *every* shape realizing that area is evaluated at *every*
placement, and the mean response time per scheme is reported next to the
``ceil(area / M)`` optimum.

Paper findings this reproduces:

* small areas — ECC and HCAM best, FX next, DM/CMD clearly worst;
* from medium sizes on, FX becomes the best scheme and stays so;
* all methods converge towards optimal as the area grows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.grid import Grid
from repro.core.query import shapes_with_area
from repro.experiments.common import ExperimentResult, sweep_shapes

__all__ = [
    "DEFAULT_AREAS",
    "LARGE_AREAS",
    "SMALL_AREAS",
    "run",
]

#: Log-ish spaced areas between the paper's extremes of 1 and 1024; every
#: entry has at least one realizable shape on the 32 x 32 grid.
DEFAULT_AREAS = (
    1, 2, 3, 4, 6, 8, 9, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96, 128,
    160, 192, 256, 320, 384, 512, 640, 768, 1024,
)

#: The paper's "small query" region (differences are large here).
SMALL_AREAS = (1, 2, 3, 4, 6, 8, 9, 12, 16, 20, 24, 32)

#: The paper's "large query" region (methods converge here).
LARGE_AREAS = (64, 128, 256, 512, 1024)


def run(
    grid_dims: Sequence[int] = (32, 32),
    num_disks: int = 16,
    areas: Optional[Sequence[int]] = None,
    schemes: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Run the query-size sweep and return the series."""
    grid = Grid(grid_dims)
    chosen = list(areas if areas is not None else DEFAULT_AREAS)
    points = []
    for area in chosen:
        shapes = list(shapes_with_area(grid, area))
        if not shapes:
            raise ValueError(
                f"area {area} has no realizable shape on grid {grid.dims}"
            )
        points.append((area, shapes))
    return sweep_shapes(
        experiment_id="E1",
        title="Effect of query size (mean RT over all shapes and placements)",
        grid=grid,
        num_disks=num_disks,
        x_label="query area (buckets)",
        points=points,
        schemes=schemes,
        config={"areas": tuple(chosen)},
    )
