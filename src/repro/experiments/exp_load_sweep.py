"""X5 (extension) — does declustering quality survive under load?

The paper's metric is single-query response time on idle disks.  This
experiment replays a small-query stream through the open-system simulator
(Poisson arrivals, 1993-era disks) across a range of arrival rates, from
nearly idle to saturation, and reports mean latency in milliseconds.

Expected shape: at light load the latency ordering equals the paper's
response-time ordering and the gap is the full ~2x (DM reads its 2x2
queries from 2 disks, HCAM/cyclic from 4); as the system saturates, every
scheme's latency is dominated by queueing on equal total work and the
*relative* gap shrinks to a few percent — the paper's metric is a
light-load metric, and that is exactly the regime where declustering
choice matters.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.cache import global_cache
from repro.core.cost import optimal_response_time
from repro.core.grid import Grid
from repro.experiments.common import ExperimentResult
from repro.simulation.disk import DiskModel
from repro.simulation.open_system import saturation_sweep
from repro.workloads.queries import random_queries_of_shape

__all__ = [
    "DEFAULT_RATES",
    "DEFAULT_SCHEMES",
    "run",
]

DEFAULT_SCHEMES = ("dm", "hcam", "cyclic-exh")
DEFAULT_RATES = (10.0, 40.0, 60.0, 80.0, 100.0, 140.0, 200.0)


def run(
    grid_dims: Sequence[int] = (32, 32),
    num_disks: int = 8,
    shape: Sequence[int] = (2, 2),
    num_queries: int = 400,
    rates_per_second: Sequence[float] = DEFAULT_RATES,
    schemes: Optional[Sequence[str]] = None,
    disk: DiskModel = DiskModel(),
    seed: int = 3,
) -> ExperimentResult:
    """Mean query latency (ms) vs Poisson arrival rate, per scheme."""
    grid = Grid(grid_dims)
    schemes = list(schemes or DEFAULT_SCHEMES)
    shape = tuple(int(s) for s in shape)
    queries = random_queries_of_shape(
        grid, shape, num_queries, seed=seed
    )
    area = 1
    for side in shape:
        area *= side
    # Zero-load floor: a perfectly spread query's service time.
    floor_ms = disk.service_time_ms(
        optimal_response_time(area, num_disks)
    )
    series = {}
    for name in schemes:
        allocation = global_cache().allocation(name, grid, num_disks)
        reports = saturation_sweep(
            allocation, queries, rates_per_second, disk=disk, seed=seed
        )
        series[name] = [r.mean_latency_ms for r in reports]
    return ExperimentResult(
        experiment_id="X5",
        title=(
            f"Mean latency (ms) vs arrival rate, {shape} queries on "
            f"{num_disks} disks"
        ),
        x_label="arrival rate (queries/s)",
        x_values=list(rates_per_second),
        series=series,
        optimal=[floor_ms] * len(rates_per_second),
        config={
            "grid": grid.dims,
            "num_disks": num_disks,
            "shape": shape,
            "num_queries": num_queries,
            "seed": seed,
        },
    )
