"""The paper's experiment suite (E1-E5) plus ablations (X1) and the runner."""

from repro.experiments import (
    exp_beyond_paper,
    exp_curve_ablation,
    exp_db_size,
    exp_num_attributes,
    exp_num_disks,
    exp_growth,
    exp_load_sweep,
    exp_partial_match,
    exp_query_shape,
    exp_query_size,
    exp_replication,
)
from repro.experiments.common import (
    ExperimentResult,
    default_area_sweep,
    mean_rt_for_shapes,
    sweep_shapes,
)
from repro.experiments.reporting import (
    ascii_plot,
    render_deviation_table,
    render_table,
    to_csv,
)

__all__ = [
    "ExperimentResult",
    "sweep_shapes",
    "mean_rt_for_shapes",
    "default_area_sweep",
    "render_table",
    "render_deviation_table",
    "to_csv",
    "ascii_plot",
    "exp_query_size",
    "exp_query_shape",
    "exp_num_attributes",
    "exp_num_disks",
    "exp_db_size",
    "exp_curve_ablation",
    "exp_partial_match",
    "exp_beyond_paper",
    "exp_replication",
    "exp_load_sweep",
    "exp_growth",
]
