"""Experiment 3 — effect of the number of attributes (2-d vs 3-d).

The paper's intuition: "as the number of dimensions is increased, the
fraction of a query on which a declustering method is sub-optimal becomes
almost negligibly small."  The mechanism is geometric: sub-optimality lives
on a query's *boundary* (the partial diagonals / partial tiles), which is
one dimension lower than the query itself, so a cube query of side ``s`` on
``k`` attributes has deviation ~ ``s^{k-1}`` against an optimum ~ ``s^k/M``
— at matched side length, more attributes means relatively less boundary.

The experiment therefore sweeps cube queries of the same side lengths on a
two-attribute and a three-attribute grid and compares relative deviation
from optimal *at matched sides* (matched per-attribute selectivity, which
is how a query optimizer would see it).  Defaults: 32 x 32 and
16 x 16 x 16 grids, 16 disks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.grid import Grid
from repro.experiments.common import ExperimentResult, sweep_shapes

__all__ = [
    "AttributesComparison",
    "deviation_table",
    "run",
]


@dataclass
class AttributesComparison:
    """Paired 2-d / 3-d sweeps aligned by cube-query side length."""

    result_2d: ExperimentResult
    result_3d: ExperimentResult

    def common_sides(self) -> List[int]:
        """Side lengths present in both sweeps."""
        sides_3d = set(self.result_3d.x_values)
        return [s for s in self.result_2d.x_values if s in sides_3d]

    def deviation_at_side(self, ndim: int, scheme: str, side: int) -> float:
        """Relative deviation of one scheme for the side-``side`` cube."""
        result = self.result_2d if ndim == 2 else self.result_3d
        index = result.x_values.index(side)
        return result.deviation_series(scheme)[index]

    def mean_deviation(
        self, ndim: int, scheme: str, min_side: int = 1
    ) -> float:
        """Mean relative deviation over matched sides >= ``min_side``."""
        sides = [s for s in self.common_sides() if s >= min_side]
        if not sides:
            raise ValueError(
                f"no matched sides >= {min_side} in "
                f"{self.common_sides()}"
            )
        return sum(
            self.deviation_at_side(ndim, scheme, side) for side in sides
        ) / len(sides)

    def deviation_shrinks(self, scheme: str, min_side: int = 4) -> bool:
        """The paper's claim: at matched side >= ``min_side``, the 3-d
        deviation is no larger than the 2-d one on average.

        ``min_side`` excludes the tiniest cubes: a side-2 or side-3 query's
        deviation is pure boundary (it scales like ``k / s``), which *grows*
        with the attribute count; the paper's convergence claim is about
        queries of non-trivial per-attribute selectivity, where the extra
        attribute multiplies the query volume and the optimum dominates.
        """
        return self.mean_deviation(
            3, scheme, min_side
        ) <= self.mean_deviation(2, scheme, min_side) + 1e-12


def _cube_sweep(
    experiment_id: str,
    grid: Grid,
    num_disks: int,
    sides: Sequence[int],
    schemes: Optional[Sequence[str]],
) -> ExperimentResult:
    points = [(side, [(side,) * grid.ndim]) for side in sides]
    return sweep_shapes(
        experiment_id=experiment_id,
        title=f"Cube-query sweep on {grid.ndim}-attribute grid {grid.dims}",
        grid=grid,
        num_disks=num_disks,
        x_label="query side (partitions per attribute)",
        points=points,
        schemes=schemes,
        config={"sides": tuple(sides)},
    )


def run(
    num_disks: int = 16,
    grid_2d: Sequence[int] = (32, 32),
    grid_3d: Sequence[int] = (16, 16, 16),
    sides_2d: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
    sides_3d: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
    schemes: Optional[Sequence[str]] = None,
) -> AttributesComparison:
    """Run the 2-attribute and 3-attribute sweeps and pair them."""
    result_2d = _cube_sweep(
        "E3-2d", Grid(grid_2d), num_disks, sides_2d, schemes
    )
    result_3d = _cube_sweep(
        "E3-3d", Grid(grid_3d), num_disks, sides_3d, schemes
    )
    return AttributesComparison(result_2d=result_2d, result_3d=result_3d)


def deviation_table(
    comparison: AttributesComparison, min_side: int = 1
) -> Dict[str, List[float]]:
    """Per-scheme [2-d mean deviation, 3-d mean deviation] at matched
    sides >= ``min_side``."""
    table = {}
    for scheme in comparison.result_2d.scheme_names:
        table[scheme] = [
            comparison.mean_deviation(2, scheme, min_side),
            comparison.mean_deviation(3, scheme, min_side),
        ]
    return table
