"""Rendering experiment results: ASCII tables, CSV, and quick text plots.

The benchmarks print these tables so that every paper figure has a textual
regeneration; :func:`ascii_plot` adds a rough visual of the series shape.
"""

from __future__ import annotations

import io
from typing import Optional, Sequence

from repro.core.registry import scheme_label
from repro.experiments.common import ExperimentResult

__all__ = [
    "ascii_plot",
    "format_value",
    "render_deviation_table",
    "render_table",
    "to_csv",
]


def format_value(value, precision: int = 3) -> str:
    """Numbers with fixed precision, everything else via ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(result: ExperimentResult, precision: int = 3) -> str:
    """One row per x-value, columns = x, OPT, each scheme."""
    header = result.header()
    body = [
        [format_value(cell, precision) for cell in row]
        for row in result.rows()
    ]
    widths = [
        max(len(header[col]), *(len(row[col]) for row in body))
        if body
        else len(header[col])
        for col in range(len(header))
    ]
    lines = [
        f"[{result.experiment_id}] {result.title}",
        f"config: {result.config}",
        " | ".join(h.rjust(w) for h, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in body:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_deviation_table(
    result: ExperimentResult, precision: int = 3
) -> str:
    """Same layout but cells show relative deviation from optimal."""
    header = [result.x_label] + [
        scheme_label(name) for name in result.series
    ]
    rows = []
    for i, x in enumerate(result.x_values):
        row = [format_value(x, precision)]
        for name in result.series:
            deviation = result.deviation_series(name)[i]
            row.append(f"{deviation:+.{precision}f}")
        rows.append(row)
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows))
        if rows
        else len(header[col])
        for col in range(len(header))
    ]
    lines = [
        f"[{result.experiment_id}] relative deviation from optimal",
        " | ".join(h.rjust(w) for h, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def to_csv(result: ExperimentResult) -> str:
    """The result as CSV text (header row + one row per x-value)."""
    buffer = io.StringIO()
    buffer.write(",".join(result.header()) + "\n")
    for row in result.rows():
        buffer.write(",".join(format_value(cell, 6) for cell in row) + "\n")
    return buffer.getvalue()


def ascii_plot(
    result: ExperimentResult,
    scheme: Optional[str] = None,
    width: int = 60,
    height: int = 12,
) -> str:
    """A rough character plot of one scheme's series (or the optimal).

    Good enough to eyeball the shape of a figure in a terminal; the tables
    carry the exact numbers.
    """
    values = (
        result.optimal if scheme is None else result.series[scheme]
    )
    label = "OPT" if scheme is None else scheme_label(scheme)
    if not values:
        return f"{label}: (empty series)"
    lo = min(values)
    hi = max(values)
    span = hi - lo or 1.0
    columns = _resample(values, width)
    rows = []
    for level in range(height - 1, -1, -1):
        # Level 0 sits exactly at the minimum so the bottom band is always
        # fully marked for a positive series.
        threshold = lo + span * level / height
        row = "".join("*" if v >= threshold else " " for v in columns)
        rows.append(row)
    axis = "-" * width
    return "\n".join(
        [f"{label}  [{format_value(lo)} .. {format_value(hi)}]"]
        + rows
        + [axis]
    )


def _resample(values: Sequence[float], width: int) -> list:
    if len(values) >= width:
        step = len(values) / width
        return [
            values[min(int(i * step), len(values) - 1)]
            for i in range(width)
        ]
    out = []
    for i in range(width):
        position = i * (len(values) - 1) / max(width - 1, 1)
        out.append(values[round(position)])
    return out
