"""Experiment X1 (ablation, ours) — does HCAM need the Hilbert curve?

HCAM = linearize the grid with a space-filling curve, deal disks
round-robin.  Swapping the Hilbert curve for Z-order or Gray-code order
keeps the whole scheme except the curve, isolating how much of HCAM's
small-query advantage is specifically the Hilbert curve's locality.

Interpretation note for power-of-two configurations: Z-order mod a
power-of-two M degenerates into a *perfect tiling* (the low interleaved
bits enumerate an aligned tile), which makes it look unbeatable on aligned
small squares but brittle — rotate the query shape off the tile or make M
non-power-of-two and it collapses.  The sweep therefore includes
non-power-of-two disk counts, where Hilbert's genuine locality shows.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.evaluator import SchemeEvaluator
from repro.core.grid import Grid
from repro.experiments.common import ExperimentResult

__all__ = [
    "ABLATION_SCHEMES",
    "DEFAULT_DISK_COUNTS",
    "run",
]

ABLATION_SCHEMES = ("hcam", "zorder", "gray", "roundrobin")

DEFAULT_DISK_COUNTS = (5, 7, 11, 13, 16, 19, 23)


def run(
    grid_dims: Sequence[int] = (32, 32),
    disk_counts: Sequence[int] = DEFAULT_DISK_COUNTS,
    shape: Sequence[int] = (3, 3),
    schemes: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Sweep disk count for the curve-swap ablation at one query shape."""
    schemes = list(schemes or ABLATION_SCHEMES)
    grid = Grid(grid_dims)
    shape = tuple(int(s) for s in shape)
    x_values: List[int] = []
    series = {name: [] for name in schemes}
    optimal = []
    for num_disks in disk_counts:
        evaluator = SchemeEvaluator(grid, num_disks, schemes)
        results = evaluator.evaluate_shapes([shape])
        x_values.append(num_disks)
        optimal.append(results[0].mean_optimal)
        for result in results:
            series[result.scheme].append(result.mean_response_time)
    return ExperimentResult(
        experiment_id="X1",
        title=f"Curve ablation for HCAM, query {shape}",
        x_label="number of disks (M)",
        x_values=x_values,
        series=series,
        optimal=optimal,
        config={
            "grid": grid.dims,
            "shape": shape,
            "disk_counts": tuple(disk_counts),
        },
    )
