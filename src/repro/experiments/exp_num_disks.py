"""Experiment 4 — effect of the number of disks (paper Figure 5 (a)/(b)).

Fixed: 32 x 32 grid, two attributes.  The disk count is swept over powers
of two (ECC requires it; the other methods accept any M) and the mean
response time of (a) a small query and (b) a large query is reported
against the optimal at each M.

Paper findings this reproduces:

* (a) small queries — HCAM is the best scheme over nearly the whole range
  and DM/CMD is uniformly the worst;
* (b) large queries — FX is consistently the best, DM/CMD and FX
  out-perform HCAM, and ECC overtakes HCAM as M grows.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.evaluator import SchemeEvaluator
from repro.core.grid import Grid
from repro.core.registry import PAPER_SCHEMES
from repro.experiments.common import ExperimentResult

__all__ = [
    "DEFAULT_DISK_COUNTS",
    "LARGE_SHAPE",
    "SMALL_SHAPE",
    "run",
]

DEFAULT_DISK_COUNTS = (2, 4, 8, 16, 32, 64)

#: Paper's regions: a small square and a large square query.
SMALL_SHAPE = (2, 2)
LARGE_SHAPE = (16, 16)


def _disk_sweep(
    experiment_id: str,
    title: str,
    grid: Grid,
    disk_counts: Sequence[int],
    shape: Sequence[int],
    schemes: Optional[Sequence[str]],
) -> ExperimentResult:
    schemes = list(schemes or PAPER_SCHEMES)
    shape = tuple(int(s) for s in shape)
    x_values = []
    series = {name: [] for name in schemes}
    optimal = []
    for num_disks in disk_counts:
        evaluator = SchemeEvaluator(grid, num_disks, schemes)
        results = evaluator.evaluate_shapes([shape])
        x_values.append(num_disks)
        optimal.append(results[0].mean_optimal)
        for result in results:
            series[result.scheme].append(result.mean_response_time)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="number of disks (M)",
        x_values=x_values,
        series=series,
        optimal=optimal,
        config={
            "grid": grid.dims,
            "shape": shape,
            "disk_counts": tuple(disk_counts),
        },
    )


def run(
    grid_dims: Sequence[int] = (32, 32),
    disk_counts: Sequence[int] = DEFAULT_DISK_COUNTS,
    small_shape: Sequence[int] = SMALL_SHAPE,
    large_shape: Sequence[int] = LARGE_SHAPE,
    schemes: Optional[Sequence[str]] = None,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Run both panels of Figure 5; returns (small-query, large-query)."""
    grid = Grid(grid_dims)
    small = _disk_sweep(
        "E4a",
        f"Effect of number of disks, small query {tuple(small_shape)} "
        "(Figure 5a)",
        grid,
        disk_counts,
        small_shape,
        schemes,
    )
    large = _disk_sweep(
        "E4b",
        f"Effect of number of disks, large query {tuple(large_shape)} "
        "(Figure 5b)",
        grid,
        disk_counts,
        large_shape,
        schemes,
    )
    return small, large
