"""X4 (extension) — what two-copy replication buys at query time.

The paper excludes replication; this experiment quantifies what that
exclusion leaves out.  For square queries of growing side it compares:

* **DM** and **HCAM**, primary copy only (the paper's world);
* **DM + chained copy**, with exact replica-choice planning;
* **DM primary + HCAM backup** ("orthogonal"), exact planning.

Expected shape: one extra copy with free replica choice erases most of
the gap to optimal — DM's 2x small-square penalty disappears entirely
(the planner always finds a perfect split), which is the power-of-two-
choices effect the later replication literature formalized.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.cache import global_cache
from repro.core.cost import optimal_response_time
from repro.core.grid import Grid
from repro.core.query import all_placements
from repro.experiments.common import ExperimentResult
from repro.replication.allocation import (
    chained_replication,
    orthogonal_replication,
)
from repro.replication.planner import replicated_response_time

__all__ = [
    "DEFAULT_SIDES",
    "run",
]

DEFAULT_SIDES = (2, 3, 4, 6, 8)


def run(
    grid_dims: Sequence[int] = (16, 16),
    num_disks: int = 8,
    sides: Sequence[int] = DEFAULT_SIDES,
    method: str = "flow",
    max_placements: Optional[int] = 64,
) -> ExperimentResult:
    """Square-query sweep comparing single-copy and replicated layouts.

    ``max_placements`` caps the (deterministically strided) placements
    evaluated per side to bound the exact planner's work.
    """
    grid = Grid(grid_dims)
    dm = global_cache().allocation("dm", grid, num_disks)
    chained = chained_replication(dm)
    # Single-copy series run on the batch engine: one vectorized pass
    # per side instead of a Python loop over placements.
    dm_engine = global_cache().engine("dm", grid, num_disks)
    hcam_engine = global_cache().engine("hcam", grid, num_disks)
    orthogonal = orthogonal_replication(grid, num_disks, "dm", "hcam")

    series = {
        "dm": [],
        "hcam": [],
        "dm+chain": [],
        "dm+hcam": [],
    }
    x_values = []
    optimal = []
    for side in sides:
        shape = (side,) * grid.ndim
        placements = list(all_placements(grid, shape))
        if max_placements is not None and len(placements) > max_placements:
            stride = len(placements) // max_placements
            placements = placements[:: max(stride, 1)][:max_placements]
        if not placements:
            raise ValueError(
                f"side {side} does not fit in grid {grid.dims}"
            )
        x_values.append(side * side)
        optimal.append(
            optimal_response_time(side * side, num_disks)
        )
        # int64 sums are exact, so int(times.sum()) / len(...) equals
        # the old sum-of-ints division bit for bit.
        series["dm"].append(
            int(dm_engine.batch_response_times(placements).sum())
            / len(placements)
        )
        series["hcam"].append(
            int(hcam_engine.batch_response_times(placements).sum())
            / len(placements)
        )
        series["dm+chain"].append(
            sum(
                replicated_response_time(chained, q, method)
                for q in placements
            )
            / len(placements)
        )
        series["dm+hcam"].append(
            sum(
                replicated_response_time(orthogonal, q, method)
                for q in placements
            )
            / len(placements)
        )
    return ExperimentResult(
        experiment_id="X4",
        title="Replication at query time: single copy vs two copies",
        x_label="query area (buckets)",
        x_values=x_values,
        series=series,
        optimal=[float(o) for o in optimal],
        config={
            "grid": grid.dims,
            "num_disks": num_disks,
            "method": method,
            "sides": tuple(sides),
        },
    )
