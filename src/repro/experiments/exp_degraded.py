"""X7 (extension) — graceful degradation: performance and availability
under disk failures.

The paper's evaluation assumes ``M`` healthy disks; this experiment kills
some.  For a growing number of fail-stopped disks (scenarios sampled by a
seeded :class:`~repro.faults.models.FaultInjector`) it measures, per
scheme:

* **X7a — degraded response time**: mean completion time over the
  surviving disks for square queries at every (strided) placement.  For
  unreplicated layouts the buckets on failed disks are simply gone (the
  partial answer's cost); the ``dm+chain`` series plans around failures
  with the exact replica planner, so it keeps serving every bucket.
* **X7b — availability**: the fraction of (scenario, placement) pairs
  answered *in full*.  Unreplicated layouts lose every query that touches
  a failed disk; chained replication stays at 1.0 under any single
  failure and only starts losing queries when both copies of some bucket
  die (adjacent failures, for offset-1 chaining).

The optimal line of X7a is the failure-aware yardstick
``ceil(|Q| / (M - f))`` — even a perfect layout pays for shrinking
parallelism; X7b's optimal line is 1.0 (what full replication achieves
under single failures).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.cache import global_cache
from repro.core.exceptions import WorkloadError
from repro.core.grid import Grid
from repro.core.query import all_placements
from repro.core.registry import PAPER_SCHEMES
from repro.experiments.common import ExperimentResult
from repro.faults.degraded import (
    batch_degraded_response_times,
    batch_query_availability,
    degraded_optimal_response_time,
    replicated_query_is_available,
)
from repro.faults.models import FaultInjector, FaultScenario
from repro.replication.allocation import chained_replication
from repro.replication.planner import plan_query

__all__ = [
    "DEFAULT_FAILURE_COUNTS",
    "REPLICATED_SERIES",
    "run",
]

DEFAULT_FAILURE_COUNTS = (0, 1, 2, 3)

#: Name of the replicated series (DM primaries + chained backups).
REPLICATED_SERIES = "dm+chain"


def _sampled_scenarios(
    injector: FaultInjector,
    num_disks: int,
    num_failures: int,
    count: int,
) -> List[FaultScenario]:
    if num_failures == 0:
        return [FaultScenario.healthy(num_disks)]
    return injector.scenarios(num_disks, num_failures, count)


def run(
    grid_dims: Sequence[int] = (16, 16),
    num_disks: int = 8,
    side: int = 4,
    failure_counts: Sequence[int] = DEFAULT_FAILURE_COUNTS,
    num_scenarios: int = 4,
    seed: int = 11,
    method: str = "flow",
    max_placements: Optional[int] = 48,
    schemes: Optional[Sequence[str]] = None,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Sweep the number of failed disks; returns ``(X7a, X7b)``.

    ``X7a`` carries mean degraded response times, ``X7b`` the measured
    availability per series.  Failure scenarios are sampled
    deterministically from ``seed``; ``max_placements`` caps the
    (strided) query placements per scenario to bound the exact planner's
    work, exactly as X4 does.
    """
    grid = Grid(grid_dims)
    schemes = list(schemes or PAPER_SCHEMES)
    failure_counts = tuple(int(f) for f in failure_counts)
    if any(f < 0 or f >= num_disks for f in failure_counts):
        raise WorkloadError(
            f"failure counts must lie in [0, {num_disks}): "
            f"{failure_counts}"
        )
    allocations = {
        name: global_cache().allocation(name, grid, num_disks)
        for name in schemes
    }
    replicated = chained_replication(allocations[schemes[0]])

    shape = (side,) * grid.ndim
    placements = list(all_placements(grid, shape))
    if not placements:
        raise WorkloadError(
            f"query side {side} does not fit in grid {grid.dims}"
        )
    if max_placements is not None and len(placements) > max_placements:
        stride = len(placements) // max_placements
        placements = placements[:: max(stride, 1)][:max_placements]
    area = side ** grid.ndim

    # The (N, M) disk-count matrix is scenario-independent, so the batch
    # engine evaluates each scheme's whole placement set exactly once;
    # every failure scenario then reduces the same matrix.
    counts_by_scheme = {
        name: global_cache()
        .engine(name, grid, num_disks)
        .batch_disk_counts(placements)
        for name in schemes
    }

    injector = FaultInjector(seed)
    series_names = schemes + [REPLICATED_SERIES]
    rt_series = {name: [] for name in series_names}
    avail_series = {name: [] for name in series_names}
    rt_optimal: List[float] = []
    x_values: List[int] = []
    for num_failures in failure_counts:
        scenarios = _sampled_scenarios(
            injector, num_disks, num_failures, num_scenarios
        )
        evaluations = len(scenarios) * len(placements)
        x_values.append(num_failures)
        rt_optimal.append(
            sum(
                degraded_optimal_response_time(area, scenario)
                for scenario in scenarios
            )
            / len(scenarios)
        )
        for name in schemes:
            counts = counts_by_scheme[name]
            total_rt = 0.0
            answered = 0
            for scenario in scenarios:
                # Accumulate in the scalar path's scenario-major,
                # query-minor order: Python-float addition is not
                # associative, and the report must stay byte-identical.
                for value in batch_degraded_response_times(
                    counts, scenario
                ):
                    total_rt += float(value)
                answered += int(
                    batch_query_availability(counts, scenario).sum()
                )
            rt_series[name].append(total_rt / evaluations)
            avail_series[name].append(answered / evaluations)
        total_rt = 0.0
        answered = 0
        for scenario in scenarios:
            for query in placements:
                plan = plan_query(
                    replicated, query, method=method, scenario=scenario
                )
                total_rt += plan.completion_time
                if replicated_query_is_available(
                    replicated, query, scenario
                ):
                    answered += 1
        rt_series[REPLICATED_SERIES].append(total_rt / evaluations)
        avail_series[REPLICATED_SERIES].append(answered / evaluations)

    config = {
        "grid": grid.dims,
        "num_disks": num_disks,
        "side": side,
        "num_scenarios": num_scenarios,
        "seed": seed,
        "method": method,
        "replicated": f"{schemes[0]}+chain",
    }
    rt_result = ExperimentResult(
        experiment_id="X7a",
        title=(
            "Degraded mode: mean response time vs failed disks "
            "(surviving buckets)"
        ),
        x_label="failed disks",
        x_values=list(x_values),
        series=rt_series,
        optimal=rt_optimal,
        config=dict(config),
    )
    avail_result = ExperimentResult(
        experiment_id="X7b",
        title=(
            "Degraded mode: availability vs failed disks "
            "(fraction of queries answered in full)"
        ),
        x_label="failed disks",
        x_values=list(x_values),
        series=avail_series,
        optimal=[1.0] * len(x_values),
        config=dict(config),
    )
    return rt_result, avail_result
