"""Experiment 2 — effect of query shape (aspect ratio square -> line).

Fixed: 32 x 32 grid, 16 disks, fixed query area.  The paper varies the
aspect ratio "from 1:1 to 1:M" at constant area; here every ``a x b``
factorization of the area that fits the grid forms one x-point, labelled by
its elongation ``max(a,b) / min(a,b)``, with both orientations of a shape
averaged together (the grid and all schemes under test are
orientation-symmetric in distribution).

Paper findings this reproduces:

* DM/CMD is strongly shape-sensitive: worst on squares, optimal on
  ``1 x j`` row/column queries (those are partial-match-like);
* HCAM is the least shape-sensitive but degrades on extreme lines;
* square queries are where methods differ most at small areas.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.grid import Grid
from repro.experiments.common import ExperimentResult, sweep_shapes
from repro.workloads.queries import aspect_ratio_shapes

__all__ = ["run"]


def _grouped_by_ratio(
    grid: Grid, area: int
) -> List[Tuple[float, List[Tuple[int, ...]]]]:
    """Shapes of ``area`` grouped by elongation ratio, square first."""
    groups: Dict[float, List[Tuple[int, ...]]] = {}
    for shape in aspect_ratio_shapes(grid, area):
        ratio = max(shape) / min(shape)
        groups.setdefault(ratio, []).append(shape)
    return sorted(groups.items())


def run(
    grid_dims: Sequence[int] = (32, 32),
    num_disks: int = 16,
    area: int = 64,
    schemes: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Run the aspect-ratio sweep at fixed query area."""
    grid = Grid(grid_dims)
    points = [
        (ratio, shapes) for ratio, shapes in _grouped_by_ratio(grid, area)
    ]
    if not points:
        raise ValueError(
            f"area {area} has no realizable shape on grid {grid.dims}"
        )
    return sweep_shapes(
        experiment_id="E2",
        title=f"Effect of query shape at fixed area {area}",
        grid=grid,
        num_disks=num_disks,
        x_label="aspect ratio (long/short side)",
        points=points,
        schemes=schemes,
        config={"area": area},
    )
