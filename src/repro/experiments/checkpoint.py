"""Crash-safe checkpointing for the experiment runner.

``run_all`` records every completed experiment into a
:class:`RunCheckpoint` as soon as its result arrives; after a crash (or a
kill -9) a ``--resume`` run loads the file and only executes what is
missing.  Because every experiment is deterministic, a resumed run's
report is byte-identical to an uninterrupted one — the checkpoint stores
*results*, not partial state.

The file is a single pickle written atomically (temp file + ``os.replace``)
so a crash mid-write can never leave a truncated checkpoint behind; a
header records the pickle schema version and the ``quick`` flag so results
from a different configuration are rejected instead of silently mixed into
the wrong report.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Dict, Union

from repro.core.exceptions import RunnerError

__all__ = [
    "RunCheckpoint",
]

#: Bumped whenever the stored layout changes incompatibly.
CHECKPOINT_VERSION = 1


class RunCheckpoint:
    """Accumulates per-experiment results in an atomically-updated file."""

    def __init__(self, path: Union[str, Path], quick: bool):
        self._path = Path(path)
        self._quick = bool(quick)
        self._completed: Dict[str, object] = {}

    @property
    def path(self) -> Path:
        """Where the checkpoint lives."""
        return self._path

    @property
    def completed(self) -> Dict[str, object]:
        """Results recorded so far, keyed by experiment key."""
        return dict(self._completed)

    def load(self) -> Dict[str, object]:
        """Adopt a previous run's results; ``{}`` when no file exists.

        Raises :class:`~repro.core.exceptions.RunnerError` when the file
        is unreadable or was written by a run with a different ``quick``
        flag — resuming such a file would splice paper-scale and smoke
        numbers into one report.
        """
        if not self._path.exists():
            return {}
        try:
            with open(self._path, "rb") as stream:
                payload = pickle.load(stream)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError) as exc:
            raise RunnerError(
                f"checkpoint {self._path} is unreadable: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "results" not in payload:
            raise RunnerError(
                f"checkpoint {self._path} has no results payload"
            )
        if payload.get("version") != CHECKPOINT_VERSION:
            raise RunnerError(
                f"checkpoint {self._path} uses schema version "
                f"{payload.get('version')!r}, expected {CHECKPOINT_VERSION}"
            )
        if bool(payload.get("quick")) != self._quick:
            raise RunnerError(
                f"checkpoint {self._path} was written with "
                f"quick={payload.get('quick')!r}; this run uses "
                f"quick={self._quick} — delete the file or rerun with the "
                "matching configuration"
            )
        self._completed = dict(payload["results"])
        return self.completed

    def record(self, key: str, result: object) -> None:
        """Add one completed experiment and persist atomically."""
        self._completed[key] = result
        payload = {
            "version": CHECKPOINT_VERSION,
            "quick": self._quick,
            "results": self._completed,
        }
        self._path.parent.mkdir(parents=True, exist_ok=True)
        temp = self._path.with_name(self._path.name + ".tmp")
        with open(temp, "wb") as stream:
            pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp, self._path)

    def clear(self) -> None:
        """Delete the checkpoint file (after a fully successful run)."""
        self._completed = {}
        try:
            self._path.unlink()
        except FileNotFoundError:
            pass
