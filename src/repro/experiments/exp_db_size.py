"""Experiment 5 — effect of database size (grid resolution).

Fixed: two attributes, 16 disks, a fixed *absolute* query shape.  The
database grows by refining the grid (8x8 up to 64x64 buckets), which models
a growing relation under a constant bucket capacity.

What the sweep shows: the absolute response time of a fixed query shape is
essentially independent of database size for every method — declustering
quality is a local property of the allocation pattern, which is periodic for
all four methods — while the *relative* cost of sub-optimality on small
queries persists at every scale.  This matches the paper's observation that
query size and shape, not raw database size, are the discriminating
parameters.

The default sweep starts at 16 x 16 so that ``d_i >= M`` holds throughout:
below that, ``fx-auto`` switches to ExFX and ECC's code length shrinks,
i.e. the *method identity* changes with database size and the flatness
claim no longer compares like with like.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.evaluator import SchemeEvaluator
from repro.core.grid import Grid
from repro.core.registry import PAPER_SCHEMES
from repro.experiments.common import ExperimentResult

__all__ = [
    "DEFAULT_SIDES",
    "run",
]

DEFAULT_SIDES = (16, 32, 64, 128)


def run(
    num_disks: int = 16,
    grid_sides: Sequence[int] = DEFAULT_SIDES,
    shape: Sequence[int] = (4, 4),
    schemes: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Sweep grid resolution at fixed disk count and query shape."""
    schemes = list(schemes or PAPER_SCHEMES)
    shape = tuple(int(s) for s in shape)
    x_values = []
    series = {name: [] for name in schemes}
    optimal = []
    for side in grid_sides:
        grid = Grid((side,) * len(shape))
        if any(s > side for s in shape):
            raise ValueError(
                f"query shape {shape} does not fit in {side}-sided grid"
            )
        evaluator = SchemeEvaluator(grid, num_disks, schemes)
        results = evaluator.evaluate_shapes([shape])
        x_values.append(side * side)
        optimal.append(results[0].mean_optimal)
        for result in results:
            series[result.scheme].append(result.mean_response_time)
    return ExperimentResult(
        experiment_id="E5",
        title=f"Effect of database size, fixed query {shape}",
        x_label="database size (buckets)",
        x_values=x_values,
        series=series,
        optimal=optimal,
        config={
            "num_disks": num_disks,
            "shape": shape,
            "grid_sides": tuple(grid_sides),
        },
    )
