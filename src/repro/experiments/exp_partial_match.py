"""EPM — partial-match queries, where the 1994 theory actually lives.

Section 3 of the paper summarizes a decade of *partial-match* optimality
results (Table 1).  This experiment measures what those theorems predict:
partial-match performance of the four methods, split by the number of
specified attributes, on a power-of-two configuration where every
method's preconditions hold.

Expected shape (from Table 1): with exactly one attribute unspecified both
DM/CMD and FX are *exactly* optimal on every query; HCAM and ECC are close
but unguaranteed.  This is the mirror image of the range-query results —
and the reason the paper argues partial-match optimality is the wrong
yardstick for range queries.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.core.evaluator import SchemeEvaluator
from repro.core.grid import Grid
from repro.core.query import RangeQuery, partial_match_query
from repro.core.registry import PAPER_SCHEMES
from repro.experiments.common import ExperimentResult

__all__ = [
    "partial_match_queries_with",
    "run",
    "single_free_attribute_queries",
]


def partial_match_queries_with(
    grid: Grid, num_specified: int
) -> list:
    """Every PM query with exactly ``num_specified`` bound attributes."""
    queries = []
    for axes in itertools.combinations(range(grid.ndim), num_specified):
        value_ranges = [
            range(grid.dims[a]) if a in axes else [None]
            for a in range(grid.ndim)
        ]
        for values in itertools.product(*value_ranges):
            spec = [
                values[a] if a in axes else None
                for a in range(grid.ndim)
            ]
            queries.append(partial_match_query(grid, spec))
    return queries


def run(
    grid_dims: Sequence[int] = (16, 16, 16),
    num_disks: int = 16,
    schemes: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Sweep the number of specified attributes, 1 .. k-1.

    (0 specified = the full-grid scan, k specified = point queries; both
    are trivially equal across methods and omitted.)
    """
    grid = Grid(grid_dims)
    schemes = list(schemes or PAPER_SCHEMES)
    evaluator = SchemeEvaluator(grid, num_disks, schemes)
    x_values = []
    series = {name: [] for name in schemes}
    optimal = []
    for num_specified in range(1, grid.ndim):
        queries = partial_match_queries_with(grid, num_specified)
        results = evaluator.evaluate_queries(queries)
        x_values.append(num_specified)
        optimal.append(results[0].mean_optimal)
        for result in results:
            series[result.scheme].append(result.mean_response_time)
    return ExperimentResult(
        experiment_id="EPM",
        title="Partial-match queries by number of specified attributes",
        x_label="specified attributes",
        x_values=x_values,
        series=series,
        optimal=optimal,
        config={"grid": grid.dims, "num_disks": num_disks},
    )


def single_free_attribute_queries(grid: Grid) -> list:
    """PM queries with exactly one attribute unspecified (Table 1's row)."""
    queries = []
    for free_axis in range(grid.ndim):
        value_ranges = [
            [None] if a == free_axis else range(grid.dims[a])
            for a in range(grid.ndim)
        ]
        for values in itertools.product(*value_ranges):
            spec = list(values)
            queries.append(partial_match_query(grid, spec))
    return [q for q in queries if isinstance(q, RangeQuery)]
