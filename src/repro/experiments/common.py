"""Shared experiment machinery: result container and sweep helpers.

Every experiment produces an :class:`ExperimentResult`: an x-axis (the
swept parameter), one series of y-values per scheme, and the optimal
baseline series.  Values are mean response times in bucket accesses, exactly
the quantity the paper plots, computed over *all* placements of the relevant
query shapes (exact expectation, no sampling noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.evaluator import SchemeEvaluator
from repro.core.exceptions import WorkloadError
from repro.core.grid import Grid
from repro.core.registry import PAPER_SCHEMES, scheme_label

__all__ = [
    "ExperimentResult",
    "default_area_sweep",
    "mean_rt_for_shapes",
    "sweep_shapes",
]


@dataclass
class ExperimentResult:
    """Series data for one experiment (one paper figure/table).

    Attributes
    ----------
    experiment_id:
        DESIGN.md identifier (``"E1"``, ``"E4"``, ...).
    title:
        Human-readable description.
    x_label / x_values:
        The swept parameter.
    series:
        ``{scheme_name: [mean RT at each x]}``.
    optimal:
        Mean optimal response time at each x (the paper's dashed line).
    config:
        The fixed parameters, for the report header.
    """

    experiment_id: str
    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]]
    optimal: List[float]
    config: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.x_values):
                raise WorkloadError(
                    f"series {name!r} has {len(values)} points for "
                    f"{len(self.x_values)} x-values"
                )
        if len(self.optimal) != len(self.x_values):
            raise WorkloadError(
                f"optimal series has {len(self.optimal)} points for "
                f"{len(self.x_values)} x-values"
            )

    @property
    def scheme_names(self) -> List[str]:
        """Schemes present in the result, insertion order."""
        return list(self.series)

    def deviation_series(self, scheme: str) -> List[float]:
        """Relative deviation from optimal per x: ``(rt - opt) / opt``."""
        return [
            (rt - opt) / opt if opt else 0.0
            for rt, opt in zip(self.series[scheme], self.optimal)
        ]

    def winner_at(self, index: int) -> str:
        """Scheme with the lowest mean RT at x-position ``index``."""
        return min(
            self.series, key=lambda name: (self.series[name][index], name)
        )

    def winners(self) -> List[str]:
        """The winner at every x-position."""
        return [self.winner_at(i) for i in range(len(self.x_values))]

    def rows(self) -> List[Tuple]:
        """Tabular view: one row per x with optimal and each scheme."""
        out = []
        for i, x in enumerate(self.x_values):
            row = [x, self.optimal[i]]
            row.extend(self.series[name][i] for name in self.series)
            out.append(tuple(row))
        return out

    def header(self) -> List[str]:
        """Column names aligned with :meth:`rows`."""
        return (
            [self.x_label, "OPT"]
            + [scheme_label(name) for name in self.series]
        )


def mean_rt_for_shapes(
    evaluator: SchemeEvaluator,
    shapes: Sequence[Sequence[int]],
) -> Tuple[Dict[str, float], float]:
    """Per-scheme mean RT over all placements of ``shapes``, plus mean OPT."""
    results = evaluator.evaluate_shapes(shapes)
    means = {r.scheme: r.mean_response_time for r in results}
    return means, results[0].mean_optimal


def sweep_shapes(
    experiment_id: str,
    title: str,
    grid: Grid,
    num_disks: int,
    x_label: str,
    points: Sequence[Tuple[object, Sequence[Sequence[int]]]],
    schemes: Optional[Sequence[str]] = None,
    config: Optional[Dict[str, object]] = None,
) -> ExperimentResult:
    """Run a one-configuration sweep: each x-point is a set of shapes.

    Allocations are built once per scheme and reused across all x-points.
    """
    schemes = list(schemes or PAPER_SCHEMES)
    evaluator = SchemeEvaluator(grid, num_disks, schemes)
    x_values = []
    series: Dict[str, List[float]] = {name: [] for name in schemes}
    optimal: List[float] = []
    for x, shapes in points:
        means, opt = mean_rt_for_shapes(evaluator, shapes)
        x_values.append(x)
        optimal.append(opt)
        for name in schemes:
            series[name].append(means[name])
    full_config = {"grid": grid.dims, "num_disks": num_disks}
    full_config.update(config or {})
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        x_values=x_values,
        series=series,
        optimal=optimal,
        config=full_config,
    )


def default_area_sweep(grid: Grid, max_area: Optional[int] = None) -> List[int]:
    """Query areas for the size sweep: every area with >= 1 fitting shape.

    Follows the paper's 1 -> 1024 range on the default grid; areas that no
    shape realizes inside the grid (large primes etc.) are skipped.
    """
    from repro.core.query import shapes_with_area

    limit = max_area if max_area is not None else grid.num_buckets
    areas = []
    for area in range(1, limit + 1):
        if next(iter(shapes_with_area(grid, area, max_shapes=1)), None):
            areas.append(area)
    return areas
