"""X6 (extension) — re-placement cost of declustering under growth.

The paper's setting is static: the grid is fixed and the allocation
computed once.  Real grid files grow, and every directory split changes
bucket coordinates — so a *coordinate-based* declustering rule reassigns
buckets wholesale, and the data behind them must move.  This experiment
feeds an identical record stream into a dynamic grid file under each
scheme and reports the cumulative **records migrated** (the data-movement
bill) next to final query performance.

What it shows: all of the 1994 methods are *globally coordinate-
dependent* — inserting one boundary early in an axis renumbers every
bucket after it, and (for HCAM) re-threads the whole curve — so growth
costs several full-database moves' worth of migration regardless of
method.  Declustering quality and placement *stability* are independent
axes, and the 1994 literature only measured the first.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.gridfile.dynamic import DynamicGridFile
from repro.workloads.datasets import uniform_dataset

__all__ = [
    "DEFAULT_SCHEMES",
    "render",
    "run",
]

DEFAULT_SCHEMES = ("dm", "fx-auto", "hcam", "roundrobin")


def run(
    num_records: int = 1500,
    num_disks: int = 8,
    bucket_capacity: int = 16,
    schemes: Optional[Sequence[str]] = None,
    seed: int = 5,
) -> Dict[str, Dict[str, float]]:
    """Grow a file per scheme from one identical record stream.

    Returns per-scheme rows: final bucket count, splits, migrated
    records (cumulative), migrated-to-stored ratio, and the mean RT of a
    small value-range query on the final file.
    """
    data = uniform_dataset(num_records, 2, seed=seed)
    rows: Dict[str, Dict[str, float]] = {}
    for scheme in schemes or DEFAULT_SCHEMES:
        gridfile = DynamicGridFile(
            [(0.0, 1.0), (0.0, 1.0)],
            num_disks=num_disks,
            scheme=scheme,
            bucket_capacity=bucket_capacity,
        )
        gridfile.insert_many(data.values)
        stats = gridfile.stats()
        query = gridfile.range_query([(0.30, 0.45), (0.30, 0.45)])
        execution = gridfile.execute(query)
        rows[scheme] = {
            "buckets": float(stats["num_buckets"]),
            "splits": float(stats["num_splits"]),
            "records_migrated": float(stats["records_migrated"]),
            "migration_ratio": (
                stats["records_migrated"] / max(num_records, 1)
            ),
            "final_query_rt": float(execution.response_time),
            "final_query_opt": float(execution.optimal),
        }
    return rows


def render(rows: Dict[str, Dict[str, float]]) -> str:
    """ASCII table of the growth comparison."""
    from repro.core.registry import scheme_label

    header = (
        f"{'scheme':12s} {'buckets':>8s} {'splits':>7s} "
        f"{'migrated':>9s} {'x stored':>9s} {'final RT':>9s} "
        f"{'OPT':>5s}"
    )
    lines = ["[X6] re-placement cost under growth", header]
    for scheme, row in rows.items():
        lines.append(
            f"{scheme_label(scheme):12s} {row['buckets']:8.0f} "
            f"{row['splits']:7.0f} {row['records_migrated']:9.0f} "
            f"{row['migration_ratio']:9.2f} "
            f"{row['final_query_rt']:9.0f} {row['final_query_opt']:5.0f}"
        )
    return "\n".join(lines)
