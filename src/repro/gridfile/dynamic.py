"""A dynamic grid file: capacity-driven splits under a declustering scheme.

The static :class:`~repro.gridfile.file.DeclusteredGridFile` assumes the
partitioning is fixed up front.  Real grid files (Nievergelt et al.)
*grow*: when a bucket overflows its capacity, one axis gains a new
boundary and the whole slab of buckets sharing that interval splits in
two.  This module implements that dynamics and keeps the file declustered
throughout, which surfaces a question the paper's static setting hides:

    when the grid refines, how much of the existing placement does a
    declustering method invalidate?

Every structural change re-derives the bucket-to-disk map from the scheme
and counts **migrations** — data volume whose disk changed — exposed via
:meth:`DynamicGridFile.stats`.  Methods whose rule depends on coordinates
*relative to the whole grid* (DM's sums shift when an early boundary is
inserted; HCAM's curve ranks cascade) migrate much more than the 1994
literature acknowledged; the ``X6`` experiment measures it.

Splitting policy (classic grid file):

* the overflowing bucket's longest-relative axis is split (ties: the
  lower axis index);
* the new boundary is the **median** of the overflowing bucket's values
  on that axis (falling back to the interval midpoint when the median
  would duplicate a boundary);
* the split applies to the whole grid slab, keeping the directory a
  cartesian product, exactly like the original grid file.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import GridFileError
from repro.core.grid import Grid
from repro.core.query import RangeQuery
from repro.core.registry import get_scheme
from repro.gridfile.file import QueryExecution
from repro.gridfile.partitioner import RangePartitioner

__all__ = ["DynamicGridFile"]


class DynamicGridFile:
    """An insert-driven, declustered grid file.

    Parameters
    ----------
    domains:
        Per-attribute ``(low, high)`` value bounds.
    num_disks:
        Disks to decluster over.
    scheme:
        Registry name of the declustering method re-applied after splits.
    bucket_capacity:
        Records a bucket holds before triggering a split.
    """

    def __init__(
        self,
        domains: Sequence[Tuple[float, float]],
        num_disks: int,
        scheme: str = "hcam",
        bucket_capacity: int = 32,
    ):
        if not domains:
            raise GridFileError("need at least one attribute domain")
        if bucket_capacity <= 0:
            raise GridFileError(
                f"bucket capacity must be positive, got {bucket_capacity}"
            )
        for low, high in domains:
            if low >= high:
                raise GridFileError(f"empty domain [{low}, {high}]")
        self._domains = [(float(lo), float(hi)) for lo, hi in domains]
        self._boundaries: List[List[float]] = [
            [lo, hi] for lo, hi in self._domains
        ]
        self._num_disks = int(num_disks)
        self._scheme_name = scheme
        self._capacity = int(bucket_capacity)
        self._records: Dict[Tuple[int, ...], List[np.ndarray]] = {}
        self._num_records = 0
        self._num_splits = 0
        self._buckets_migrated = 0
        self._records_migrated = 0
        self._allocation = self._reallocate(previous=None)

    # -- structure ---------------------------------------------------

    @property
    def grid(self) -> Grid:
        """The current bucket grid."""
        return Grid(
            tuple(len(b) - 1 for b in self._boundaries)
        )

    @property
    def allocation(self):
        """The current bucket-to-disk map."""
        return self._allocation

    @property
    def num_disks(self) -> int:
        """Number of disks."""
        return self._num_disks

    @property
    def num_records(self) -> int:
        """Records stored."""
        return self._num_records

    def partitioners(self) -> List[RangePartitioner]:
        """Current per-axis partitioners (fresh objects)."""
        return [RangePartitioner(b) for b in self._boundaries]

    def stats(self) -> Dict[str, int]:
        """Growth and migration counters.

        ``buckets_migrated`` / ``records_migrated`` accumulate, over all
        splits, how many (old-bucket equivalent) buckets and records
        changed disks when the scheme was re-applied to the refined grid
        — the re-placement cost a real system would pay as data movement.
        """
        return {
            "num_records": self._num_records,
            "num_buckets": self.grid.num_buckets,
            "num_splits": self._num_splits,
            "buckets_migrated": self._buckets_migrated,
            "records_migrated": self._records_migrated,
        }

    # -- record operations --------------------------------------------

    def bucket_of(self, record: Sequence[float]) -> Tuple[int, ...]:
        """Bucket coordinates for a record's attribute values."""
        record = self._check_record(record)
        coords = []
        for axis, value in enumerate(record):
            boundaries = self._boundaries[axis]
            index = (
                int(np.searchsorted(boundaries, value, side="right")) - 1
            )
            coords.append(min(index, len(boundaries) - 2))
        return tuple(coords)

    def insert(self, record: Sequence[float]) -> Tuple[int, ...]:
        """Insert a record, splitting as needed; returns its bucket."""
        record = self._check_record(record)
        coords = self.bucket_of(record)
        self._records.setdefault(coords, []).append(record)
        self._num_records += 1
        while len(self._records.get(coords, ())) > self._capacity:
            if not self._split(coords):
                break  # unsplittable (duplicate values); allow overflow
            coords = self.bucket_of(record)
        return self.bucket_of(record)

    def insert_many(self, records) -> None:
        """Insert records from an iterable / ``(n, k)`` array."""
        for record in np.asarray(records, dtype=np.float64):
            self.insert(record)

    def bucket_occupancy(self) -> np.ndarray:
        """Records per bucket, shaped like the current grid."""
        occupancy = np.zeros(self.grid.dims, dtype=np.int64)
        for coords, bucket in self._records.items():
            occupancy[coords] = len(bucket)
        return occupancy

    def records_per_disk(self) -> np.ndarray:
        """Records per disk under the current allocation."""
        loads = np.zeros(self._num_disks, dtype=np.int64)
        for coords, bucket in self._records.items():
            loads[self._allocation.disk_of(coords)] += len(bucket)
        return loads

    # -- queries -------------------------------------------------------

    def range_query(
        self, value_ranges: Sequence[Tuple[float, float]]
    ) -> RangeQuery:
        """Translate value intervals into a bucket range query."""
        if len(value_ranges) != len(self._boundaries):
            raise GridFileError(
                f"{len(value_ranges)} ranges for "
                f"{len(self._boundaries)} attributes"
            )
        lower = []
        upper = []
        for partitioner, (low, high) in zip(
            self.partitioners(), value_ranges
        ):
            first, last = partitioner.partition_range(low, high)
            lower.append(first)
            upper.append(last)
        return RangeQuery(tuple(lower), tuple(upper))

    def execute(self, query: RangeQuery) -> QueryExecution:
        """Cost a bucket query against the current allocation."""
        from repro.core.cost import buckets_per_disk

        counts = buckets_per_disk(self._allocation, query)
        return QueryExecution(
            query=query,
            buckets_per_disk=counts,
            num_disks=self._num_disks,
        )

    # -- internals ------------------------------------------------------

    def _check_record(self, record) -> np.ndarray:
        record = np.asarray(record, dtype=np.float64)
        if record.shape != (len(self._boundaries),):
            raise GridFileError(
                f"record has shape {record.shape}, file has "
                f"{len(self._boundaries)} attributes"
            )
        for axis, value in enumerate(record):
            low, high = self._domains[axis]
            if not low <= value <= high:
                raise GridFileError(
                    f"attribute {axis} value {value} outside domain "
                    f"[{low}, {high}]"
                )
        return record

    def _choose_split_axis(self, coords: Tuple[int, ...]) -> int:
        relative = []
        for axis, c in enumerate(coords):
            boundaries = self._boundaries[axis]
            width = boundaries[c + 1] - boundaries[c]
            domain = self._domains[axis][1] - self._domains[axis][0]
            relative.append(width / domain)
        return int(np.argmax(relative))

    def _split(self, coords: Tuple[int, ...]) -> bool:
        """Insert a boundary through the overflowing bucket's slab."""
        axis = self._choose_split_axis(coords)
        boundaries = self._boundaries[axis]
        cell = coords[axis]
        low, high = boundaries[cell], boundaries[cell + 1]
        values = np.array(
            [r[axis] for r in self._records.get(coords, ())]
        )
        cut = float(np.median(values)) if values.size else (low + high) / 2
        if not low < cut < high:
            cut = (low + high) / 2.0
        if not low < cut < high:
            return False  # interval too narrow to split further
        previous = self._snapshot_disks()
        boundaries.insert(cell + 1, cut)
        self._num_splits += 1
        # Re-bucket every record of the split slab.
        moved: Dict[Tuple[int, ...], List[np.ndarray]] = {}
        for old_coords in list(self._records):
            shifted = list(old_coords)
            if old_coords[axis] > cell:
                shifted[axis] += 1
                moved[tuple(shifted)] = self._records.pop(old_coords)
            elif old_coords[axis] == cell:
                bucket = self._records.pop(old_coords)
                lower_half: List[np.ndarray] = []
                upper_half: List[np.ndarray] = []
                for record in bucket:
                    if record[axis] < cut:
                        lower_half.append(record)
                    else:
                        upper_half.append(record)
                if lower_half:
                    moved[old_coords] = lower_half
                if upper_half:
                    upper_coords = list(old_coords)
                    upper_coords[axis] += 1
                    moved[tuple(upper_coords)] = upper_half
        self._records.update(moved)
        self._allocation = self._reallocate(previous=previous)
        return True

    def _snapshot_disks(self) -> Tuple[List[List[float]], object]:
        """The pre-split boundaries (copied) and allocation.

        Coordinates shift when a boundary is inserted, so migration is
        measured in value space: a record/region keeps its disk iff the
        disk serving its values is unchanged.  Keeping the old boundaries
        lets the old disk of any value be computed exactly.
        """
        return (
            [list(b) for b in self._boundaries],
            self._allocation,
        )

    @staticmethod
    def _coords_under(
        boundaries: List[List[float]], values: Sequence[float]
    ) -> Tuple[int, ...]:
        coords = []
        for axis, value in enumerate(values):
            axis_bounds = boundaries[axis]
            index = (
                int(np.searchsorted(axis_bounds, value, side="right")) - 1
            )
            coords.append(min(max(index, 0), len(axis_bounds) - 2))
        return tuple(coords)

    def _reallocate(self, previous):
        allocation = get_scheme(self._scheme_name).allocate(
            self.grid, self._num_disks
        )
        if previous is not None:
            old_boundaries, old_allocation = previous
            # Bucket-level migration: every *new* bucket's centre, old
            # disk vs new disk.
            migrated_buckets = 0
            for coords in self.grid.iter_buckets():
                centre = tuple(
                    (self._boundaries[a][c]
                     + self._boundaries[a][c + 1]) / 2
                    for a, c in enumerate(coords)
                )
                old_disk = old_allocation.disk_of(
                    self._coords_under(old_boundaries, centre)
                )
                if allocation.disk_of(coords) != old_disk:
                    migrated_buckets += 1
            self._buckets_migrated += migrated_buckets
            # Record-level migration: exact old-vs-new disk per record.
            for coords, bucket in self._records.items():
                new_disk = allocation.disk_of(coords)
                for record in bucket:
                    old_disk = old_allocation.disk_of(
                        self._coords_under(old_boundaries, record)
                    )
                    if old_disk != new_disk:
                        self._records_migrated += 1
        return allocation
