"""Record-level substrate: grid-file partitioning and declustered storage."""

from repro.gridfile.dynamic import DynamicGridFile
from repro.gridfile.file import DeclusteredGridFile, QueryExecution
from repro.gridfile.partitioner import (
    RangePartitioner,
    equi_depth_partitioner,
    equi_width_partitioner,
)

__all__ = [
    "RangePartitioner",
    "equi_width_partitioner",
    "equi_depth_partitioner",
    "DeclusteredGridFile",
    "DynamicGridFile",
    "QueryExecution",
]
