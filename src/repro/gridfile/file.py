"""The declustered grid file: records -> buckets -> disks.

Ties the substrates together into the system a parallel database would run:
a :class:`DeclusteredGridFile` holds per-attribute partitioners (the grid
directory), a declustering scheme's allocation (bucket -> disk), and the
record-to-bucket assignment.  Value-level range predicates are translated to
bucket-coordinate range queries and costed with the same response-time model
the paper uses — or, through :mod:`repro.simulation`, with a physical disk
model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.cost import buckets_per_disk, optimal_response_time
from repro.core.exceptions import GridFileError
from repro.core.grid import Grid
from repro.core.query import RangeQuery
from repro.core.registry import get_scheme
from repro.gridfile.partitioner import (
    RangePartitioner,
    equi_depth_partitioner,
    equi_width_partitioner,
)
from repro.workloads.datasets import Dataset

__all__ = [
    "DeclusteredGridFile",
    "QueryExecution",
]


class DeclusteredGridFile:
    """A multi-attribute file, grid-partitioned and declustered over disks.

    Build one with :meth:`from_dataset`, then translate value predicates
    with :meth:`range_query` and execute them with :meth:`execute`.

    Examples
    --------
    >>> from repro.workloads.datasets import uniform_dataset
    >>> data = uniform_dataset(1000, 2, seed=7)
    >>> gf = DeclusteredGridFile.from_dataset(
    ...     data, dims=(8, 8), num_disks=4, scheme="hcam")
    >>> result = gf.execute(gf.range_query([(0.0, 0.25), (0.0, 0.25)]))
    >>> result.response_time >= result.optimal
    True
    """

    def __init__(
        self,
        partitioners: Sequence[RangePartitioner],
        allocation: DiskAllocation,
        dataset: Optional[Dataset] = None,
    ):
        partitioners = list(partitioners)
        if not partitioners:
            raise GridFileError("need at least one attribute partitioner")
        dims = tuple(p.num_partitions for p in partitioners)
        if dims != allocation.grid.dims:
            raise GridFileError(
                f"partitioners imply grid {dims} but allocation covers "
                f"{allocation.grid.dims}"
            )
        self._partitioners = partitioners
        self._allocation = allocation
        self._dataset = dataset
        self._bucket_coords: Optional[np.ndarray] = None
        if dataset is not None:
            if dataset.num_attributes != len(partitioners):
                raise GridFileError(
                    f"dataset has {dataset.num_attributes} attributes, "
                    f"grid file has {len(partitioners)}"
                )
            self._bucket_coords = self._assign_records(dataset)

    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        dims: Sequence[int],
        num_disks: int,
        scheme: str = "hcam",
        partitioning: str = "equi-width",
    ) -> "DeclusteredGridFile":
        """Partition a dataset, decluster its buckets, load the records.

        Parameters
        ----------
        dataset:
            The relation to store.
        dims:
            Partitions per attribute.
        num_disks:
            Number of disks to decluster over.
        scheme:
            Registry name of the declustering method.
        partitioning:
            ``"equi-width"`` (fixed domains) or ``"equi-depth"``
            (data quantiles).
        """
        dims = tuple(int(d) for d in dims)
        if len(dims) != dataset.num_attributes:
            raise GridFileError(
                f"{len(dims)} partition counts for "
                f"{dataset.num_attributes} attributes"
            )
        if partitioning == "equi-width":
            partitioners = [
                equi_width_partitioner(lo, hi, d)
                for lo, hi, d in zip(dataset.lower, dataset.upper, dims)
            ]
        elif partitioning == "equi-depth":
            partitioners = [
                equi_depth_partitioner(dataset.values[:, axis], d)
                for axis, d in enumerate(dims)
            ]
        else:
            raise GridFileError(
                f"unknown partitioning {partitioning!r}; "
                "use 'equi-width' or 'equi-depth'"
            )
        grid = Grid(dims)
        allocation = get_scheme(scheme).allocate(grid, num_disks)
        return cls(partitioners, allocation, dataset)

    def _assign_records(self, dataset: Dataset) -> np.ndarray:
        coords = np.empty(
            (dataset.num_records, len(self._partitioners)), dtype=np.int64
        )
        for axis, partitioner in enumerate(self._partitioners):
            coords[:, axis] = partitioner.partitions_of(
                dataset.values[:, axis]
            )
        return coords

    @property
    def grid(self) -> Grid:
        """The bucket grid."""
        return self._allocation.grid

    @property
    def allocation(self) -> DiskAllocation:
        """The bucket-to-disk map in force."""
        return self._allocation

    @property
    def num_disks(self) -> int:
        """Number of disks the file is spread over."""
        return self._allocation.num_disks

    @property
    def partitioners(self) -> List[RangePartitioner]:
        """Per-attribute grid-directory partitioners."""
        return list(self._partitioners)

    @property
    def dataset(self) -> Optional[Dataset]:
        """The loaded dataset, or ``None`` for a bucket-only file."""
        return self._dataset

    @property
    def num_records(self) -> int:
        """Records loaded (0 for a bucket-only file)."""
        return 0 if self._bucket_coords is None else len(self._bucket_coords)

    def bucket_of_record(self, record: Sequence[float]) -> Tuple[int, ...]:
        """Bucket coordinates a record's attribute values map to."""
        if len(record) != len(self._partitioners):
            raise GridFileError(
                f"record has {len(record)} values, file has "
                f"{len(self._partitioners)} attributes"
            )
        return tuple(
            p.partition_of(v) for p, v in zip(self._partitioners, record)
        )

    def disk_of_record(self, record: Sequence[float]) -> int:
        """Disk a record is stored on."""
        return self._allocation.disk_of(self.bucket_of_record(record))

    def bucket_occupancy(self) -> np.ndarray:
        """Records per bucket (grid-shaped).  Requires a loaded dataset."""
        if self._bucket_coords is None:
            raise GridFileError("no dataset loaded")
        occupancy = np.zeros(self.grid.dims, dtype=np.int64)
        np.add.at(
            occupancy,
            tuple(self._bucket_coords[:, a]
                  for a in range(self.grid.ndim)),
            1,
        )
        return occupancy

    def records_per_disk(self) -> np.ndarray:
        """Records per disk — the storage balance at record granularity."""
        if self._bucket_coords is None:
            raise GridFileError("no dataset loaded")
        disks = self._allocation.table[
            tuple(self._bucket_coords[:, a] for a in range(self.grid.ndim))
        ]
        return np.bincount(disks, minlength=self.num_disks)

    def range_query(
        self, value_ranges: Sequence[Tuple[float, float]]
    ) -> RangeQuery:
        """Translate per-attribute value intervals into a bucket range query."""
        if len(value_ranges) != len(self._partitioners):
            raise GridFileError(
                f"{len(value_ranges)} ranges for "
                f"{len(self._partitioners)} attributes"
            )
        lower = []
        upper = []
        for partitioner, (low, high) in zip(
            self._partitioners, value_ranges
        ):
            first, last = partitioner.partition_range(low, high)
            lower.append(first)
            upper.append(last)
        return RangeQuery(tuple(lower), tuple(upper))

    def execute(self, query: RangeQuery) -> "QueryExecution":
        """Cost a bucket-coordinate query against this file's allocation."""
        counts = buckets_per_disk(self._allocation, query)
        return QueryExecution(
            query=query,
            buckets_per_disk=counts,
            num_disks=self.num_disks,
        )

    def count_records(
        self, value_ranges: Sequence[Tuple[float, float]]
    ) -> int:
        """Exact number of loaded records inside the value box."""
        if self._dataset is None:
            raise GridFileError("no dataset loaded")
        if len(value_ranges) != len(self._partitioners):
            raise GridFileError(
                f"{len(value_ranges)} ranges for "
                f"{len(self._partitioners)} attributes"
            )
        mask = np.ones(self._dataset.num_records, dtype=bool)
        for axis, (low, high) in enumerate(value_ranges):
            if low > high:
                raise GridFileError(f"empty value range [{low}, {high}]")
            column = self._dataset.values[:, axis]
            mask &= (column >= low) & (column <= high)
        return int(mask.sum())

    def estimate_records(
        self, value_ranges: Sequence[Tuple[float, float]]
    ) -> float:
        """Bucket-occupancy estimate of the records in the value box.

        The standard grid-directory estimator: sum the occupancies of all
        buckets the box touches, scaling boundary buckets by the fraction
        of their interval the box covers per axis (uniformity assumption
        *within* a bucket — the grid file's own working hypothesis).
        Exact when the box aligns with bucket boundaries.
        """
        if self._dataset is None:
            raise GridFileError("no dataset loaded")
        query = self.range_query(value_ranges)
        occupancy = self.bucket_occupancy()
        # Per-axis coverage fraction of each touched partition.
        coverages = []
        for axis, (partitioner, (low, high)) in enumerate(
            zip(self._partitioners, value_ranges)
        ):
            first, last = query.lower[axis], query.upper[axis]
            axis_cov = []
            for cell in range(first, last + 1):
                lo, hi = partitioner.interval_of(cell)
                overlap = min(high, hi) - max(low, lo)
                width = hi - lo
                axis_cov.append(
                    min(max(overlap / width, 0.0), 1.0)
                )
            coverages.append(np.asarray(axis_cov))
        weight = coverages[0]
        for axis_cov in coverages[1:]:
            weight = np.multiply.outer(weight, axis_cov)
        region = occupancy[query.slices()]
        return float((region * weight).sum())


class QueryExecution:
    """Outcome of running one query against a declustered grid file."""

    __slots__ = ("query", "_counts", "_num_disks")

    def __init__(
        self,
        query: RangeQuery,
        buckets_per_disk: np.ndarray,
        num_disks: int,
    ):
        self.query = query
        self._counts = np.asarray(buckets_per_disk)
        self._num_disks = num_disks

    @property
    def buckets_per_disk(self) -> np.ndarray:
        """Buckets each disk must read for this query."""
        return self._counts

    @property
    def total_buckets(self) -> int:
        """Buckets the query touches in total."""
        return int(self._counts.sum())

    @property
    def response_time(self) -> int:
        """Parallel bucket reads: the busiest disk's count."""
        return int(self._counts.max()) if self._counts.size else 0

    @property
    def optimal(self) -> int:
        """The ``ceil(|Q|/M)`` lower bound for this query."""
        return optimal_response_time(self.total_buckets, self._num_disks)

    @property
    def disks_touched(self) -> int:
        """Disks that must perform at least one read."""
        return int(np.count_nonzero(self._counts))

    def summary(self) -> Dict[str, int]:
        """The execution as a plain dict (for reports and JSON)."""
        return {
            "total_buckets": self.total_buckets,
            "response_time": self.response_time,
            "optimal": self.optimal,
            "disks_touched": self.disks_touched,
        }

    def __repr__(self) -> str:
        return (
            f"QueryExecution(buckets={self.total_buckets}, "
            f"rt={self.response_time}, opt={self.optimal})"
        )
