"""Per-attribute range partitioners: attribute values -> partition indices.

The grid-file organization (Nievergelt et al., TODS 1986) splits each
attribute's domain into intervals; a record's bucket is the vector of the
intervals its values fall in.  Two standard strategies:

* **Equi-width** — intervals of equal length over a fixed domain.  Matches
  the paper's setting (uniform data over known domains).
* **Equi-depth** — interval boundaries at data quantiles, so every interval
  holds roughly the same number of records.  This is what keeps bucket
  loads balanced under skewed data, and is the knob exercised by the
  gaussian/zipf datasets in :mod:`repro.workloads.datasets`.

A partitioner stores its boundary array ``b_0 < b_1 < ... < b_d`` and maps a
value ``v`` to the partition ``i`` with ``b_i <= v < b_{i+1}`` (the last
partition is closed on the right so the domain maximum is representable).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import GridFileError

__all__ = [
    "RangePartitioner",
    "equi_depth_partitioner",
    "equi_width_partitioner",
]


class RangePartitioner:
    """Maps scalar attribute values to partition indices via boundaries.

    Parameters
    ----------
    boundaries:
        Strictly increasing array of length ``num_partitions + 1``; the
        attribute domain is ``[boundaries[0], boundaries[-1]]``.
    """

    __slots__ = ("_boundaries",)

    def __init__(self, boundaries: Sequence[float]):
        boundaries = np.asarray(boundaries, dtype=np.float64)
        if boundaries.ndim != 1 or boundaries.size < 2:
            raise GridFileError(
                "boundaries must be a 1-d array with at least 2 entries, "
                f"got shape {boundaries.shape}"
            )
        if not np.all(np.diff(boundaries) > 0):
            raise GridFileError(
                f"boundaries must be strictly increasing: {boundaries}"
            )
        boundaries = boundaries.copy()
        boundaries.setflags(write=False)
        self._boundaries = boundaries

    @property
    def boundaries(self) -> np.ndarray:
        """The (read-only) boundary array."""
        return self._boundaries

    @property
    def num_partitions(self) -> int:
        """Number of intervals, ``d_i``."""
        return self._boundaries.size - 1

    @property
    def domain(self) -> tuple:
        """``(lower, upper)`` bounds of the representable domain."""
        return (float(self._boundaries[0]), float(self._boundaries[-1]))

    def partition_of(self, value: float) -> int:
        """Partition index of a single value (domain edges included)."""
        return int(self.partitions_of(np.asarray([value]))[0])

    def partitions_of(self, values) -> np.ndarray:
        """Vectorized partition lookup; raises on out-of-domain values."""
        values = np.asarray(values, dtype=np.float64)
        lower, upper = self.domain
        if values.size and (
            values.min() < lower or values.max() > upper
        ):
            raise GridFileError(
                f"value outside domain [{lower}, {upper}]: "
                f"min={values.min()} max={values.max()}"
            )
        indices = np.searchsorted(self._boundaries, values, side="right") - 1
        # The domain maximum belongs to the last partition.
        return np.minimum(indices, self.num_partitions - 1)

    def interval_of(self, partition: int) -> tuple:
        """``(low, high)`` boundaries of one partition's interval."""
        if not 0 <= partition < self.num_partitions:
            raise GridFileError(
                f"partition {partition} outside "
                f"[0, {self.num_partitions})"
            )
        return (
            float(self._boundaries[partition]),
            float(self._boundaries[partition + 1]),
        )

    def partition_range(self, low: float, high: float) -> tuple:
        """Partitions overlapping the value interval ``[low, high]``.

        Returns the inclusive partition-index pair ``(first, last)`` — the
        translation step from a value-range predicate to a bucket-coordinate
        range query.
        """
        if low > high:
            raise GridFileError(
                f"empty value range [{low}, {high}]"
            )
        lower, upper = self.domain
        low = max(low, lower)
        high = min(high, upper)
        if low > high:
            raise GridFileError(
                f"value range [{low}, {high}] outside domain "
                f"[{lower}, {upper}]"
            )
        return (self.partition_of(low), self.partition_of(high))

    def __repr__(self) -> str:
        lower, upper = self.domain
        return (
            f"RangePartitioner(num_partitions={self.num_partitions}, "
            f"domain=[{lower}, {upper}])"
        )


def equi_width_partitioner(
    lower: float, upper: float, num_partitions: int
) -> RangePartitioner:
    """Equal-length intervals over ``[lower, upper]``."""
    if num_partitions <= 0:
        raise GridFileError(
            f"partition count must be positive, got {num_partitions}"
        )
    if lower >= upper:
        raise GridFileError(f"empty domain [{lower}, {upper}]")
    return RangePartitioner(np.linspace(lower, upper, num_partitions + 1))


def equi_depth_partitioner(
    values, num_partitions: int
) -> RangePartitioner:
    """Intervals at data quantiles, each holding ~equal record counts.

    Quantile boundaries are deduplicated; if the data has too few distinct
    values to support the requested partition count, a
    :class:`GridFileError` explains the failure rather than silently
    producing a coarser grid.
    """
    if num_partitions <= 0:
        raise GridFileError(
            f"partition count must be positive, got {num_partitions}"
        )
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise GridFileError("cannot build equi-depth boundaries on no data")
    quantiles = np.linspace(0.0, 1.0, num_partitions + 1)
    boundaries = np.quantile(values, quantiles)
    # Make the top boundary inclusive of the maximum.
    boundaries[-1] = values.max()
    unique = np.unique(boundaries)
    if unique.size != boundaries.size:
        raise GridFileError(
            f"data supports only {unique.size - 1} equi-depth partitions, "
            f"{num_partitions} requested (duplicate quantile boundaries)"
        )
    return RangePartitioner(boundaries)
