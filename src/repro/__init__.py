"""Grid-based multi-attribute record declustering.

Reproduction of Himatsingka & Srivastava, *Performance Evaluation of Grid
Based Multi-Attribute Record Declustering Methods* (ICDE 1994): the DM/CMD,
FX/ExFX, ECC, and HCAM declustering methods, the response-time cost model,
the strict-optimality theory (including the M > 5 impossibility result), and
the paper's full experiment suite.

Quickstart
----------
>>> from repro import Grid, SchemeEvaluator
>>> ev = SchemeEvaluator(Grid((32, 32)), num_disks=16)
>>> best = min(ev.evaluate_shapes([(2, 2)]),
...            key=lambda r: r.mean_response_time)
>>> best.scheme in {"ecc", "hcam"}
True
"""

from repro.core import (
    PAPER_SCHEMES,
    AllocationError,
    DeclusteringError,
    DiskAllocation,
    EvaluationResult,
    Grid,
    GridError,
    QueryError,
    RangeQuery,
    SchemeError,
    SchemeEvaluator,
    SchemeNotApplicableError,
    all_placements,
    allocation_from_function,
    available_schemes,
    average_response_time,
    buckets_per_disk,
    get_scheme,
    optimal_response_time,
    partial_match_query,
    point_query,
    query_at,
    rank_schemes,
    register_scheme,
    response_time,
    scheme_label,
    shapes_with_area,
    sliding_response_times,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Grid",
    "RangeQuery",
    "DiskAllocation",
    "SchemeEvaluator",
    "EvaluationResult",
    "PAPER_SCHEMES",
    "get_scheme",
    "register_scheme",
    "available_schemes",
    "scheme_label",
    "allocation_from_function",
    "optimal_response_time",
    "response_time",
    "buckets_per_disk",
    "average_response_time",
    "sliding_response_times",
    "all_placements",
    "shapes_with_area",
    "partial_match_query",
    "point_query",
    "query_at",
    "rank_schemes",
    "DeclusteringError",
    "GridError",
    "QueryError",
    "AllocationError",
    "SchemeError",
    "SchemeNotApplicableError",
]
