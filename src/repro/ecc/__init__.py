"""GF(2) linear algebra and parity-check codes — substrate for ECC declustering."""

from repro.ecc.codes import (
    BinaryLinearCode,
    hamming_like_code,
    is_power_of_two,
    nonzero_vectors_by_weight,
    parity_check_matrix,
)
from repro.ecc.gf2 import (
    as_gf2,
    bits_to_int,
    gf2_matmul,
    gf2_nullspace,
    gf2_rank,
    gf2_rref,
    hamming_distance,
    hamming_weight,
    int_to_bits,
    minimum_distance,
)

__all__ = [
    "BinaryLinearCode",
    "hamming_like_code",
    "is_power_of_two",
    "nonzero_vectors_by_weight",
    "parity_check_matrix",
    "as_gf2",
    "bits_to_int",
    "gf2_matmul",
    "gf2_nullspace",
    "gf2_rank",
    "gf2_rref",
    "hamming_distance",
    "hamming_weight",
    "int_to_bits",
    "minimum_distance",
]
