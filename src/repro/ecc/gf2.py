"""Linear algebra over GF(2), the two-element field.

Substrate for the error-correcting-code declustering scheme
(Faloutsos & Metaxas, IEEE ToC 1991): buckets become binary words, a
parity-check matrix ``H`` over GF(2) computes each word's syndrome, and the
syndrome is the disk id.  Matrices are numpy ``uint8`` arrays with entries in
{0, 1}; all arithmetic is mod 2.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.exceptions import CodeConstructionError

__all__ = [
    "as_gf2",
    "bits_to_int",
    "gf2_matmul",
    "gf2_nullspace",
    "gf2_rank",
    "gf2_rref",
    "hamming_distance",
    "hamming_weight",
    "int_to_bits",
    "minimum_distance",
]


def as_gf2(matrix) -> np.ndarray:
    """Coerce to a {0,1} ``uint8`` array, validating entries."""
    arr = np.asarray(matrix)
    if not np.issubdtype(arr.dtype, np.integer):
        raise CodeConstructionError(
            f"GF(2) matrices must be integer, got dtype {arr.dtype}"
        )
    if arr.size and not np.isin(arr, (0, 1)).all():
        raise CodeConstructionError("GF(2) entries must be 0 or 1")
    return arr.astype(np.uint8)


def gf2_matmul(a, b) -> np.ndarray:
    """Matrix product mod 2."""
    a = as_gf2(a)
    b = as_gf2(b)
    return (a.astype(np.int64) @ b.astype(np.int64)) % 2


def gf2_rank(matrix) -> int:
    """Rank over GF(2) via Gaussian elimination."""
    m = as_gf2(matrix).copy()
    if m.size == 0:
        return 0
    rows, cols = m.shape
    rank = 0
    for col in range(cols):
        pivot = None
        for row in range(rank, rows):
            if m[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        m[[rank, pivot]] = m[[pivot, rank]]
        for row in range(rows):
            if row != rank and m[row, col]:
                m[row] ^= m[rank]
        rank += 1
        if rank == rows:
            break
    return rank


def gf2_rref(matrix) -> Tuple[np.ndarray, List[int]]:
    """Reduced row-echelon form and the pivot column indices."""
    m = as_gf2(matrix).copy()
    rows, cols = m.shape
    pivots: List[int] = []
    rank = 0
    for col in range(cols):
        pivot = None
        for row in range(rank, rows):
            if m[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        m[[rank, pivot]] = m[[pivot, rank]]
        for row in range(rows):
            if row != rank and m[row, col]:
                m[row] ^= m[rank]
        pivots.append(col)
        rank += 1
        if rank == rows:
            break
    return m, pivots


def gf2_nullspace(matrix) -> np.ndarray:
    """Basis of the right nullspace, one vector per row (may be empty)."""
    m = as_gf2(matrix)
    if m.size == 0:
        return np.zeros((0, m.shape[1] if m.ndim == 2 else 0), dtype=np.uint8)
    rref, pivots = gf2_rref(m)
    cols = m.shape[1]
    free_cols = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_cols), cols), dtype=np.uint8)
    for i, free in enumerate(free_cols):
        basis[i, free] = 1
        for row, pivot in enumerate(pivots):
            if rref[row, free]:
                basis[i, pivot] = 1
    return basis


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Little-endian bit vector of ``value`` (bit 0 first), length ``width``."""
    value = int(value)
    if value < 0:
        raise CodeConstructionError(f"cannot encode negative value {value}")
    if width < 0:
        raise CodeConstructionError(f"bit width must be >= 0, got {width}")
    if value >> width:
        raise CodeConstructionError(
            f"value {value} does not fit in {width} bits"
        )
    return np.array(
        [(value >> i) & 1 for i in range(width)], dtype=np.uint8
    )


def bits_to_int(bits) -> int:
    """Inverse of :func:`int_to_bits` (little-endian)."""
    bits = as_gf2(bits)
    value = 0
    for i, bit in enumerate(bits.ravel()):
        value |= int(bit) << i
    return value


def hamming_weight(vector) -> int:
    """Number of ones in a GF(2) vector."""
    return int(as_gf2(vector).sum())


def hamming_distance(a, b) -> int:
    """Number of positions where two GF(2) vectors differ."""
    a = as_gf2(a)
    b = as_gf2(b)
    if a.shape != b.shape:
        raise CodeConstructionError(
            f"shape mismatch: {a.shape} vs {b.shape}"
        )
    return int((a ^ b).sum())


def minimum_distance(parity_check, limit: Optional[int] = None) -> int:
    """Minimum distance of the code with parity-check matrix ``H``.

    Equals the minimum Hamming weight over nonzero codewords (vectors in the
    nullspace of ``H``).  Enumerates the nullspace, so only suitable for
    small codes — which is all the tests need.  ``limit`` caps the nullspace
    dimension that will be enumerated (default 20, i.e. about a million
    codewords).
    """
    basis = gf2_nullspace(parity_check)
    k = basis.shape[0]
    if k == 0:
        raise CodeConstructionError(
            "code has no nonzero codewords; minimum distance undefined"
        )
    cap = 20 if limit is None else limit
    if k > cap:
        raise CodeConstructionError(
            f"nullspace dimension {k} exceeds enumeration limit {cap}"
        )
    best = None
    for mask in range(1, 1 << k):
        word = np.zeros(basis.shape[1], dtype=np.uint8)
        for i in range(k):
            if (mask >> i) & 1:
                word ^= basis[i]
        weight = hamming_weight(word)
        if best is None or weight < best:
            best = weight
            if best == 1:
                break
    return int(best)
