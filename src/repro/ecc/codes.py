"""Construction of parity-check matrices for ECC declustering.

Faloutsos & Metaxas assign bucket words to disks by coset: with ``M = 2^c``
disks and buckets written as ``n``-bit words, a ``c x n`` parity-check matrix
``H`` of full rank partitions the ``2^n`` words into ``M`` cosets of the code
``C = {w : Hw = 0}``, and coset ``s`` (the syndrome, read as an integer) is
disk ``s``.  Two buckets land on the same disk iff their difference is a
codeword, so a code with large minimum distance keeps same-disk buckets far
apart in the grid — the declustering property.

The paper points readers at the parity-check tables in Reza's information
theory textbook; here the matrices are constructed programmatically:

* the first ``c`` columns are the identity (systematic form, guaranteeing
  full rank and therefore that all ``M`` disks are used when ``n >= c``);
* the remaining columns are the *other* nonzero ``c``-bit vectors, taken in
  increasing weight (weight-2 vectors first, then weight 3, ...) so that the
  code is Hamming-like: as long as ``n <= 2^c - 1`` all columns are distinct,
  giving minimum distance >= 3;
* if ``n > 2^c - 1`` (more bucket bits than distinct nonzero syndromes, i.e.
  a very fine grid on few disks) the nonzero vectors are reused cyclically —
  distance drops to 2, which is unavoidable for any linear code at that
  length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.exceptions import CodeConstructionError
from repro.ecc.gf2 import as_gf2, gf2_rank, int_to_bits

__all__ = [
    "BinaryLinearCode",
    "hamming_like_code",
    "is_power_of_two",
    "nonzero_vectors_by_weight",
    "parity_check_matrix",
]


def is_power_of_two(value: int) -> bool:
    """Whether ``value`` is a positive power of two (1 counts)."""
    return value > 0 and (value & (value - 1)) == 0


def nonzero_vectors_by_weight(num_bits: int) -> List[int]:
    """All nonzero ``num_bits``-bit values, sorted by weight then value."""
    if num_bits < 0:
        raise CodeConstructionError(f"num_bits must be >= 0, got {num_bits}")
    values = list(range(1, 1 << num_bits))
    values.sort(key=lambda v: (bin(v).count("1"), v))
    return values


def parity_check_matrix(num_checks: int, length: int) -> np.ndarray:
    """A ``num_checks x length`` systematic Hamming-like parity-check matrix.

    Columns are stored little-endian (row ``i`` is bit ``i`` of the column's
    value).  Raises if ``length < num_checks`` — the syndrome map could not
    be surjective, so the coset construction would leave disks empty; callers
    handle that case separately (see :class:`repro.schemes.ecc_scheme`).
    """
    if num_checks <= 0:
        raise CodeConstructionError(
            f"need at least one check bit, got {num_checks}"
        )
    if length < num_checks:
        raise CodeConstructionError(
            f"code length {length} shorter than check count {num_checks}; "
            "syndrome map cannot reach every disk"
        )
    identity_values = [1 << i for i in range(num_checks)]
    others = [
        v
        for v in nonzero_vectors_by_weight(num_checks)
        if v not in set(identity_values)
    ]
    columns = list(identity_values)
    needed = length - num_checks
    if others:
        for i in range(needed):
            columns.append(others[i % len(others)])
    else:
        # num_checks == 1: the only nonzero value is 1, repeat it.
        columns.extend([1] * needed)
    matrix = np.zeros((num_checks, length), dtype=np.uint8)
    for col, value in enumerate(columns):
        matrix[:, col] = int_to_bits(value, num_checks)
    return matrix


@dataclass(frozen=True)
class BinaryLinearCode:
    """A binary linear code given by its parity-check matrix.

    Attributes
    ----------
    parity_check:
        ``c x n`` GF(2) matrix ``H``.
    """

    parity_check: np.ndarray

    def __post_init__(self) -> None:
        matrix = as_gf2(self.parity_check)
        if matrix.ndim != 2:
            raise CodeConstructionError(
                f"parity-check matrix must be 2-d, got shape {matrix.shape}"
            )
        matrix = matrix.copy()
        matrix.setflags(write=False)
        object.__setattr__(self, "parity_check", matrix)

    @property
    def num_checks(self) -> int:
        """``c``, the number of parity bits (log2 of the coset count)."""
        return self.parity_check.shape[0]

    @property
    def length(self) -> int:
        """``n``, the code length in bits."""
        return self.parity_check.shape[1]

    @property
    def num_cosets(self) -> int:
        """``2^c`` — the number of disks the coset partition supports."""
        return 1 << self.num_checks

    def is_full_rank(self) -> bool:
        """Whether the syndrome map is surjective (every disk reachable)."""
        return gf2_rank(self.parity_check) == self.num_checks

    def syndrome(self, word) -> int:
        """Syndrome of an ``n``-bit word as an integer in ``[0, 2^c)``."""
        word = as_gf2(word).ravel()
        if word.shape[0] != self.length:
            raise CodeConstructionError(
                f"word length {word.shape[0]} != code length {self.length}"
            )
        bits = (self.parity_check.astype(np.int64) @ word.astype(np.int64)) % 2
        value = 0
        for i, bit in enumerate(bits):
            value |= int(bit) << i
        return value

    def syndromes(self, words: np.ndarray) -> np.ndarray:
        """Vectorized syndromes for a ``(num_words, n)`` bit matrix."""
        words = as_gf2(words)
        if words.ndim != 2 or words.shape[1] != self.length:
            raise CodeConstructionError(
                f"expected (num_words, {self.length}) bit matrix, "
                f"got shape {words.shape}"
            )
        bits = (
            words.astype(np.int64) @ self.parity_check.astype(np.int64).T
        ) % 2
        weights = (1 << np.arange(self.num_checks, dtype=np.int64))
        return bits @ weights


def hamming_like_code(num_checks: int, length: int) -> BinaryLinearCode:
    """The code whose parity-check matrix is :func:`parity_check_matrix`."""
    return BinaryLinearCode(parity_check_matrix(num_checks, length))
