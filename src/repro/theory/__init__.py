"""Strict-optimality theory: verifier, existence search, Table 1, bounds."""

from repro.theory.bounds import (
    dm_small_square_penalty,
    dm_square_query_response_time,
    max_possible_disks_touched_dm,
    response_time_lower_bound,
    strictly_optimal_exists,
)
from repro.theory.conditions import (
    OPTIMALITY_TABLE,
    ConditionRow,
    dm_guaranteed_optimal,
    ecc_applicable,
    fx_applicable,
    fx_guaranteed_optimal,
    guaranteed_optimal,
    render_table,
    unspecified_attributes,
)
from repro.theory.optimality import (
    OptimalityReport,
    is_strictly_optimal_for_partial_match,
    iter_query_shapes,
    verify_strict_optimality,
)
from repro.theory.search import (
    SearchResult,
    count_strictly_optimal,
    enumerate_strictly_optimal,
    impossibility_frontier,
    minimal_impossible_grid,
    search_strictly_optimal,
)

__all__ = [
    "OptimalityReport",
    "verify_strict_optimality",
    "is_strictly_optimal_for_partial_match",
    "iter_query_shapes",
    "SearchResult",
    "search_strictly_optimal",
    "enumerate_strictly_optimal",
    "count_strictly_optimal",
    "impossibility_frontier",
    "minimal_impossible_grid",
    "ConditionRow",
    "OPTIMALITY_TABLE",
    "render_table",
    "unspecified_attributes",
    "dm_guaranteed_optimal",
    "fx_guaranteed_optimal",
    "fx_applicable",
    "ecc_applicable",
    "guaranteed_optimal",
    "dm_square_query_response_time",
    "dm_small_square_penalty",
    "max_possible_disks_touched_dm",
    "response_time_lower_bound",
    "strictly_optimal_exists",
]
