"""Known optimality conditions — the paper's Table 1, made executable.

Section 3 of the paper summarizes, per method, the published conditions on
the attribute domains (``d_i``), on the number of disks (``M``), and on the
query class under which the method is *provably optimal*:

* **DM/CMD** — optimal for every partial-match query with exactly one
  unspecified attribute, and for every partial-match query with at least one
  unspecified attribute ``i`` such that ``d_i mod M = 0``.
* **FX** — requires power-of-two domains and disks; optimal for
  partial-match queries with exactly one unspecified attribute, and for
  those with an unspecified attribute ``i`` such that ``d_i >= M``.
* **ECC** — requires power-of-two domains and disks; good *average*
  partial-match behaviour (no simple per-query optimality condition).
* **HCAM** — no optimality conditions (its case rests on the Hilbert
  curve's empirical locality).

Each row is available both as structured data (:data:`OPTIMALITY_TABLE`) and
as executable predicates used by the tests to confirm the conditions hold on
actual allocations (``dm_guaranteed_optimal`` etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.grid import Grid
from repro.core.query import RangeQuery
from repro.ecc.codes import is_power_of_two

__all__ = [
    "ConditionRow",
    "OPTIMALITY_TABLE",
    "dm_guaranteed_optimal",
    "ecc_applicable",
    "fx_applicable",
    "fx_guaranteed_optimal",
    "guaranteed_optimal",
    "render_table",
    "unspecified_attributes",
]


@dataclass(frozen=True)
class ConditionRow:
    """One row of the paper's Table 1."""

    method: str
    domain_condition: str
    disk_condition: str
    optimal_for: str


#: The paper's Table 1 (conditions under which each method is known optimal).
OPTIMALITY_TABLE: Tuple[ConditionRow, ...] = (
    ConditionRow(
        method="DM/CMD",
        domain_condition="none",
        disk_condition="none",
        optimal_for=(
            "PM queries with exactly one unspecified attribute; "
            "PM queries with an unspecified attribute i s.t. d_i mod M = 0"
        ),
    ),
    ConditionRow(
        method="GDM",
        domain_condition="d_i an integral multiple of M (per [9])",
        disk_condition="none",
        optimal_for="PM queries under the domain condition",
    ),
    ConditionRow(
        method="FX",
        domain_condition="d_i a power of 2",
        disk_condition="M a power of 2",
        optimal_for=(
            "PM queries with exactly one unspecified attribute; "
            "PM queries with an unspecified attribute i s.t. d_i >= M"
        ),
    ),
    ConditionRow(
        method="ECC",
        domain_condition="d_i a power of 2",
        disk_condition="M a power of 2",
        optimal_for="good average PM performance (no per-query condition)",
    ),
    ConditionRow(
        method="HCAM",
        domain_condition="none",
        disk_condition="none",
        optimal_for="none proven (empirical locality argument)",
    ),
)


def render_table(rows: Sequence[ConditionRow] = OPTIMALITY_TABLE) -> str:
    """ASCII rendering of Table 1 for reports and the CLI."""
    headers = ("Method", "Condition on d_i", "Condition on M", "Optimal for")
    cells = [headers] + [
        (row.method, row.domain_condition, row.disk_condition, row.optimal_for)
        for row in rows
    ]
    widths = [
        max(len(line[col]) for line in cells) for col in range(len(headers))
    ]
    separator = "-+-".join("-" * w for w in widths)
    lines = []
    for i, line in enumerate(cells):
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(line, widths))
        )
        if i == 0:
            lines.append(separator)
    return "\n".join(lines)


def unspecified_attributes(query: RangeQuery, grid: Grid) -> List[int]:
    """Indices of attributes the partial-match query leaves unspecified."""
    return [
        axis
        for axis, (lo, hi, d) in enumerate(
            zip(query.lower, query.upper, grid.dims)
        )
        if lo == 0 and hi == d - 1 and d > 1
    ]


def dm_guaranteed_optimal(
    query: RangeQuery, grid: Grid, num_disks: int
) -> bool:
    """Whether Table 1 guarantees DM/CMD is optimal on this PM query."""
    if not query.is_partial_match(grid):
        return False
    free = unspecified_attributes(query, grid)
    if len(free) == 1:
        return True
    return any(grid.dims[axis] % num_disks == 0 for axis in free)


def fx_applicable(grid: Grid, num_disks: int) -> bool:
    """Whether FX's Table 1 preconditions hold for this configuration."""
    return is_power_of_two(num_disks) and all(
        is_power_of_two(d) for d in grid.dims
    )


def fx_guaranteed_optimal(
    query: RangeQuery, grid: Grid, num_disks: int
) -> bool:
    """Whether Table 1 guarantees FX is optimal on this PM query."""
    if not fx_applicable(grid, num_disks):
        return False
    if not query.is_partial_match(grid):
        return False
    free = unspecified_attributes(query, grid)
    if len(free) == 1:
        return True
    return any(grid.dims[axis] >= num_disks for axis in free)


def ecc_applicable(grid: Grid, num_disks: int) -> bool:
    """Whether ECC's Table 1 preconditions hold for this configuration."""
    return is_power_of_two(num_disks) and all(
        is_power_of_two(d) for d in grid.dims
    )


def guaranteed_optimal(
    method: str, query: RangeQuery, grid: Grid, num_disks: int
) -> Optional[bool]:
    """Table-1 verdict for a method on a query.

    Returns ``True``/``False`` for methods with per-query conditions
    (DM/CMD, FX) and ``None`` for methods without one (ECC, HCAM).
    """
    method = method.lower()
    if method in ("dm", "cmd", "dm/cmd"):
        return dm_guaranteed_optimal(query, grid, num_disks)
    if method == "fx":
        return fx_guaranteed_optimal(query, grid, num_disks)
    if method in ("ecc", "hcam", "gdm"):
        return None
    raise KeyError(f"no Table 1 row for method {method!r}")
