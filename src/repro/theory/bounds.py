"""Analytic bounds used as cross-checks in tests and experiments.

These are small, exact facts about the schemes that the test suite verifies
against materialized allocations — they catch implementation drift in the
schemes and give the experiments known anchor points.
"""

from __future__ import annotations

from repro.core.cost import optimal_response_time
from repro.core.exceptions import QueryError

__all__ = [
    "dm_small_square_penalty",
    "dm_square_query_response_time",
    "max_possible_disks_touched_dm",
    "response_time_lower_bound",
    "strictly_optimal_exists",
]


def dm_square_query_response_time(
    height: int, width: int, num_disks: int
) -> int:
    """Exact DM/CMD response time for an ``height x width`` range query.

    Under DM the disk of ``<i, j>`` is ``(i + j) mod M``, so inside an
    ``a x b`` rectangle the coordinate sums take the consecutive values
    ``s0 .. s0 + a + b - 2`` — the query can touch at most ``a + b - 1``
    distinct disks.  Counting how many (i, j) pairs share each residue gives
    the busiest disk exactly:

    * if ``a + b - 1 <= M`` each residue class is hit by at most
      ``min(a, b)`` cells and the maximum is achieved, so
      ``RT = min(a, b)``;
    * otherwise residues wrap, and the busiest residue collects
      ``ceil`` of the diagonal-count partition — computed here by direct
      counting (small loop, exact for all cases).
    """
    if height <= 0 or width <= 0:
        raise QueryError(
            f"query sides must be positive, got {height}x{width}"
        )
    if num_disks <= 0:
        raise QueryError(f"disk count must be positive, got {num_disks}")
    counts = [0] * num_disks
    for i in range(height):
        for j in range(width):
            counts[(i + j) % num_disks] += 1
    return max(counts)


def dm_small_square_penalty(side: int, num_disks: int) -> float:
    """DM's multiplicative penalty over optimal on a small square query.

    For an ``s x s`` query with ``2 s - 1 <= M``: RT is ``s`` while the
    optimum is ``ceil(s^2 / M)``.  This is the analytic form of the paper's
    observation that DM/CMD is the worst method on small squares.
    """
    if 2 * side - 1 > num_disks:
        raise QueryError(
            f"penalty formula needs 2*{side}-1 <= {num_disks}"
        )
    return side / optimal_response_time(side * side, num_disks)


def max_possible_disks_touched_dm(height: int, width: int) -> int:
    """Under DM an ``a x b`` query touches at most ``a + b - 1`` disks."""
    if height <= 0 or width <= 0:
        raise QueryError(
            f"query sides must be positive, got {height}x{width}"
        )
    return height + width - 1


def response_time_lower_bound(area: int, num_disks: int) -> int:
    """Alias of the optimal bound, for symmetry with the upper bounds."""
    return optimal_response_time(area, num_disks)


def strictly_optimal_exists(num_disks: int) -> bool:
    """For which M a strictly optimal 2-d range-query declustering exists.

    The paper proves impossibility for ``M > 5``; the exhaustive search in
    :mod:`repro.theory.search` additionally shows ``M = 4`` is impossible
    (on any grid of side >= 4) and confirms existence for ``M in
    {1, 2, 3, 5}`` — see ``tests/theory/test_search.py``.
    """
    if num_disks <= 0:
        raise QueryError(f"disk count must be positive, got {num_disks}")
    return num_disks in (1, 2, 3, 5)
