"""Exhaustive search for strictly optimal range-query declusterings.

Computational counterpart of the paper's impossibility theorem ("there
exists no declustering method that is strictly optimal for range queries if
the number of disks is more than 5"): for a given 2-d grid and disk count
``M``, a backtracking search either produces an allocation in which *every*
sub-rectangle meets the ``ceil(area / M)`` bound, or exhausts the space and
thereby proves that none exists for that grid — and any larger grid, since a
strictly optimal allocation of a larger grid restricts to one of its
corners.

Why the search is feasible:

* Cells are filled row-major, so every rectangle whose bottom-right corner
  is the just-assigned cell is fully assigned; checking exactly those
  rectangles at each step is a *complete* pruning rule (each rectangle of
  the final grid is checked at its own corner, and counts never change once
  a rectangle is complete).
* Disk labels are interchangeable, so candidates at each cell are limited to
  the labels already used plus one fresh label (canonical-labeling symmetry
  breaking), shrinking the space by ~M!.

The search is written for 2-d grids, which is all the theorem needs: a
strictly optimal allocation of a ``k``-d grid induces one on any 2-d slice,
so 2-d impossibility implies impossibility in higher dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import GridError, SearchBudgetExceeded
from repro.core.grid import Grid

__all__ = [
    "SearchResult",
    "count_strictly_optimal",
    "enumerate_strictly_optimal",
    "impossibility_frontier",
    "minimal_impossible_grid",
    "search_strictly_optimal",
]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of an existence search.

    Attributes
    ----------
    exists:
        ``True`` if a strictly optimal allocation of the grid was found,
        ``False`` if the exhausted search proves none exists.
    allocation:
        A strictly optimal allocation when ``exists`` is true.
    nodes_explored:
        Number of (cell, candidate) assignments tried — the search effort.
    """

    exists: bool
    allocation: Optional[DiskAllocation]
    nodes_explored: int


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def search_strictly_optimal(
    grid: Grid,
    num_disks: int,
    node_budget: int = 50_000_000,
) -> SearchResult:
    """Find a strictly optimal allocation of a 2-d grid, or prove none exists.

    Parameters
    ----------
    grid:
        A two-dimensional grid.
    num_disks:
        ``M``.  For ``M in {1, 2, 3, 5}`` the search finds the classical
        lattice allocations; for ``M > 5`` it exhausts and returns
        ``exists=False`` once the grid is at least about ``M x M`` (the
        paper's theorem).
    node_budget:
        Hard cap on assignments tried.  Exceeding it raises
        :class:`SearchBudgetExceeded` rather than returning a possibly-wrong
        verdict.
    """
    if grid.ndim != 2:
        raise GridError(
            f"the existence search handles 2-d grids, got {grid.ndim}-d"
        )
    if num_disks <= 0:
        raise GridError(f"disk count must be positive, got {num_disks}")

    rows, cols = grid.dims
    total = rows * cols
    table = [[-1] * cols for _ in range(rows)]
    # Optimal bounds for every (height, width), precomputed.
    bound = [
        [0] * (cols + 1) for _ in range(rows + 1)
    ]
    for h in range(1, rows + 1):
        for w in range(1, cols + 1):
            bound[h][w] = _ceil_div(h * w, num_disks)

    nodes = 0

    def violates(row: int, col: int, disk: int) -> bool:
        """Whether assigning ``disk`` at (row, col) breaks any bound.

        Checks every rectangle with bottom-right corner (row, col).  Only
        the candidate disk's count can newly exceed its bound (other disks'
        counts in these rectangles were already checked at earlier corners
        of their completed sub-rectangles... but a *new* rectangle is first
        completed here, so all disks must be counted).
        """
        for height in range(1, row + 2):
            top = row - height + 1
            counts = [0] * num_disks
            counts[disk] += 1  # the candidate cell itself
            # Grow the rectangle leftwards one column at a time.
            for width in range(1, col + 2):
                left = col - width + 1
                # Add column `left` (rows top..row), excluding the candidate
                # cell which is already counted.
                for r in range(top, row + 1):
                    if r == row and left == col:
                        continue
                    counts[table[r][left]] += 1
                limit = bound[height][width]
                if max(counts) > limit:
                    return True
        return False

    def backtrack(position: int, used: int) -> bool:
        nonlocal nodes
        if position == total:
            return True
        row, col = divmod(position, cols)
        # Canonical labeling: allow previously used labels plus one new.
        candidate_count = min(used + 1, num_disks)
        for disk in range(candidate_count):
            nodes += 1
            if nodes > node_budget:
                raise SearchBudgetExceeded(
                    f"existence search for grid {grid.dims}, M={num_disks} "
                    f"exceeded {node_budget} nodes"
                )
            if violates(row, col, disk):
                continue
            table[row][col] = disk
            if backtrack(position + 1, max(used, disk + 1)):
                return True
            table[row][col] = -1
        return False

    found = backtrack(0, 0)
    if not found:
        return SearchResult(exists=False, allocation=None, nodes_explored=nodes)
    allocation = DiskAllocation(
        grid, num_disks, np.array(table, dtype=np.int64)
    )
    return SearchResult(
        exists=True, allocation=allocation, nodes_explored=nodes
    )


def enumerate_strictly_optimal(
    grid: Grid,
    num_disks: int,
    limit: int = 100,
    node_budget: int = 50_000_000,
) -> List[DiskAllocation]:
    """All strictly optimal allocations of a 2-d grid, up to relabeling.

    The same backtracking as :func:`search_strictly_optimal`, but instead
    of stopping at the first solution it collects every *canonical*
    solution (disk labels appear in first-use order, so each equivalence
    class under disk renaming is counted exactly once).  ``limit`` caps
    the number of solutions gathered; the search still proves
    completeness when it returns fewer than ``limit``.
    """
    if grid.ndim != 2:
        raise GridError(
            f"the existence search handles 2-d grids, got {grid.ndim}-d"
        )
    if num_disks <= 0:
        raise GridError(f"disk count must be positive, got {num_disks}")
    if limit <= 0:
        raise GridError(f"solution limit must be positive, got {limit}")

    rows, cols = grid.dims
    total = rows * cols
    table = [[-1] * cols for _ in range(rows)]
    bound = [[0] * (cols + 1) for _ in range(rows + 1)]
    for h in range(1, rows + 1):
        for w in range(1, cols + 1):
            bound[h][w] = _ceil_div(h * w, num_disks)

    nodes = 0
    solutions: List[DiskAllocation] = []

    def violates(row: int, col: int, disk: int) -> bool:
        for height in range(1, row + 2):
            top = row - height + 1
            counts = [0] * num_disks
            counts[disk] += 1
            for width in range(1, col + 2):
                left = col - width + 1
                for r in range(top, row + 1):
                    if r == row and left == col:
                        continue
                    counts[table[r][left]] += 1
                if max(counts) > bound[height][width]:
                    return True
        return False

    def backtrack(position: int, used: int) -> bool:
        """Collect solutions; returns True when the limit is reached."""
        nonlocal nodes
        if position == total:
            solutions.append(
                DiskAllocation(
                    grid, num_disks, np.array(table, dtype=np.int64)
                )
            )
            return len(solutions) >= limit
        row, col = divmod(position, cols)
        for disk in range(min(used + 1, num_disks)):
            nodes += 1
            if nodes > node_budget:
                raise SearchBudgetExceeded(
                    f"enumeration for grid {grid.dims}, M={num_disks} "
                    f"exceeded {node_budget} nodes"
                )
            if violates(row, col, disk):
                continue
            table[row][col] = disk
            if backtrack(position + 1, max(used, disk + 1)):
                table[row][col] = -1
                return True
            table[row][col] = -1
        return False

    backtrack(0, 0)
    return solutions


def count_strictly_optimal(
    grid: Grid,
    num_disks: int,
    limit: int = 100,
    node_budget: int = 50_000_000,
) -> int:
    """Number of strictly optimal allocations up to disk relabeling.

    Returns ``min(true count, limit)``; a return value below ``limit`` is
    exact.
    """
    return len(
        enumerate_strictly_optimal(
            grid, num_disks, limit=limit, node_budget=node_budget
        )
    )


def minimal_impossible_grid(
    num_disks: int,
    max_side: int = 12,
    node_budget: int = 50_000_000,
) -> Optional[Tuple[int, int]]:
    """The smallest grid with no strictly optimal allocation, or ``None``.

    Scans grids by area then by squareness (``a <= b``), returning the
    first ``(a, b)`` for which the exhaustive search proves impossibility.
    ``None`` means every grid up to ``max_side x max_side`` admits a
    strictly optimal allocation (e.g. for ``M in {1, 2, 3, 5}``).

    These minimal witnesses make the impossibility results concrete: the
    proof for a given M only needs queries inside this one small grid.
    """
    if num_disks <= 0:
        raise GridError(f"disk count must be positive, got {num_disks}")
    candidates = [
        (a, b)
        for a in range(1, max_side + 1)
        for b in range(a, max_side + 1)
    ]
    candidates.sort(key=lambda ab: (ab[0] * ab[1], ab[1] - ab[0]))
    for a, b in candidates:
        result = search_strictly_optimal(
            Grid((a, b)), num_disks, node_budget=node_budget
        )
        if not result.exists:
            return (a, b)
    return None


def impossibility_frontier(
    max_disks: int,
    grid_side: Optional[int] = None,
    node_budget: int = 50_000_000,
) -> List[SearchResult]:
    """Run the existence search for ``M = 1 .. max_disks`` on M x M grids.

    Reproduces the paper's theorem as data: entries for ``M <= 5`` (except
    the known-impossible ``M = 4``) report existence, entries for ``M > 5``
    report impossibility.  ``grid_side`` overrides the per-``M`` grid side.
    """
    results = []
    for num_disks in range(1, max_disks + 1):
        side = grid_side if grid_side is not None else num_disks
        side = max(side, 2)
        grid = Grid((side, side))
        results.append(
            search_strictly_optimal(grid, num_disks, node_budget=node_budget)
        )
    return results
