"""Strict-optimality verification.

A declustering of a grid over ``M`` disks is **strictly optimal for range
queries** when every range query ``Q`` (every axis-aligned sub-rectangle of
the grid) is answered in the unbeatable ``ceil(|Q| / M)`` parallel bucket
reads.  The paper's central theoretical result is that for ``M > 5`` no
allocation of any sufficiently large grid achieves this — verified
computationally by :mod:`repro.theory.search`.

This module provides the exact checker: it enumerates every query *shape*
and compares the sliding-window response times of all placements against the
optimal bound.  Cost is ``O(num_shapes * M * num_buckets)`` which is
perfectly tractable for the grid sizes where strict optimality is even
conceivable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.cost import optimal_response_time, sliding_response_times
from repro.core.grid import Coords
from repro.core.query import RangeQuery, query_at

__all__ = [
    "OptimalityReport",
    "is_strictly_optimal_for_partial_match",
    "iter_query_shapes",
    "verify_strict_optimality",
]


@dataclass(frozen=True)
class OptimalityReport:
    """Outcome of a strict-optimality check.

    Attributes
    ----------
    strictly_optimal:
        Whether every range query met the ``ceil(|Q|/M)`` bound.
    witness:
        A violating query (one of minimum area among the violations found
    	 shape-by-shape), or ``None`` when strictly optimal.
    witness_response_time / witness_optimal:
        The violating query's cost and bound (both ``None`` when optimal).
    shapes_checked:
        Number of query shapes examined.
    """

    strictly_optimal: bool
    witness: Optional[RangeQuery]
    witness_response_time: Optional[int]
    witness_optimal: Optional[int]
    shapes_checked: int


def iter_query_shapes(dims: Coords) -> Iterator[Coords]:
    """All query shapes that fit in a grid with extents ``dims``."""
    return itertools.product(*(range(1, d + 1) for d in dims))


def verify_strict_optimality(
    allocation: DiskAllocation,
    max_area: Optional[int] = None,
) -> OptimalityReport:
    """Check whether ``allocation`` is strictly optimal for range queries.

    Parameters
    ----------
    allocation:
        The bucket-to-disk map to verify.
    max_area:
        If given, only query shapes of at most this many buckets are checked
        (strict optimality *restricted to small queries*; the impossibility
        proof only needs areas up to about ``2 M``).

    Returns
    -------
    OptimalityReport
        With a concrete minimum-area witness query when the check fails.
    """
    grid = allocation.grid
    num_disks = allocation.num_disks
    best_witness: Optional[Tuple[int, RangeQuery, int, int]] = None
    shapes_checked = 0
    for shape in iter_query_shapes(grid.dims):
        area = 1
        for side in shape:
            area *= side
        if max_area is not None and area > max_area:
            continue
        shapes_checked += 1
        optimum = optimal_response_time(area, num_disks)
        times = sliding_response_times(allocation, shape)
        worst = int(times.max())
        if worst > optimum:
            origin = np.unravel_index(int(times.argmax()), times.shape)
            query = query_at(tuple(int(o) for o in origin), shape)
            candidate = (area, query, worst, optimum)
            if best_witness is None or candidate[0] < best_witness[0]:
                best_witness = candidate
    if best_witness is None:
        return OptimalityReport(
            strictly_optimal=True,
            witness=None,
            witness_response_time=None,
            witness_optimal=None,
            shapes_checked=shapes_checked,
        )
    _, query, worst, optimum = best_witness
    return OptimalityReport(
        strictly_optimal=False,
        witness=query,
        witness_response_time=worst,
        witness_optimal=optimum,
        shapes_checked=shapes_checked,
    )


def is_strictly_optimal_for_partial_match(
    allocation: DiskAllocation,
) -> bool:
    """Strict optimality restricted to partial-match queries.

    Enumerates every partial-match query (each attribute fixed to a value or
    left free) and checks the bound.  Exponential in the number of
    attributes times the domain sizes, so meant for the small grids used in
    tests and theory demos.
    """
    grid = allocation.grid
    num_disks = allocation.num_disks
    choices = [
        [None] + list(range(d)) for d in grid.dims
    ]
    for spec in itertools.product(*choices):
        lower = tuple(
            0 if v is None else v for v in spec
        )
        upper = tuple(
            d - 1 if v is None else v for v, d in zip(spec, grid.dims)
        )
        query = RangeQuery(lower, upper)
        optimum = optimal_response_time(query.num_buckets, num_disks)
        region = allocation.table[query.slices()]
        counts = np.bincount(region.ravel(), minlength=num_disks)
        if int(counts.max()) > optimum:
            return False
    return True
