"""Replica-choice query planning: which copy of each bucket to read.

With two copies per bucket, answering a query becomes an assignment
problem: pick one disk from each bucket's pair so the busiest disk reads
as few buckets as possible.  Two planners are provided:

* :func:`plan_query` with ``method="flow"`` — **exact**: binary-search the
  answer ``T`` and test feasibility as a bipartite degree-constrained
  assignment via max-flow (source -> buckets (cap 1) -> their two disks ->
  sink (cap T)).  Polynomial and fast at this problem size.
* ``method="greedy"`` — assign buckets in decreasing scarcity order to the
  currently less-loaded of their two disks.  Near-optimal in practice and
  what a real executor would run.

Both planners also run in **degraded mode**: pass a
:class:`~repro.faults.models.FaultScenario` and the planner only considers
surviving replicas (a bucket with both copies on failed disks is recorded
as *lost*), while straggler factors turn the objective into the weighted
completion time ``max_d load_d * factor_d``.  The flow path stays exact by
binary-searching over the discrete set of achievable completion times and
translating each candidate ``T`` into per-disk capacities
``floor(T / factor_d)``.

The headline facts the tests pin down: with a sensible replica layout the
*planned* response time of the small queries that plague DM collapses to
(or near) the ``ceil(|Q|/M)`` optimum, and under any single fail-stop
every bucket stays reachable with a planned completion time at most twice
the healthy planned optimum (move the failed disk's assignments to their
surviving copies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost import optimal_response_time
from repro.core.exceptions import QueryError
from repro.core.query import RangeQuery
from repro.faults.models import FaultScenario
from repro.replication.allocation import ReplicatedAllocation

__all__ = [
    "Coords",
    "QueryPlan",
    "degraded_replicated_response_time",
    "plan_query",
    "replicated_response_time",
    "replication_speedup",
]

Coords = Tuple[int, ...]


@dataclass(frozen=True)
class QueryPlan:
    """A replica choice for every reachable bucket of one query.

    ``lost`` lists buckets whose every copy sits on a failed disk (always
    empty for healthy plans and under any single fail-stop); ``factors``
    carries the scenario's per-disk service-time multipliers when the plan
    was made in degraded mode.
    """

    query: RangeQuery
    assignment: Dict[Coords, int]
    loads: np.ndarray
    factors: Optional[np.ndarray] = None
    lost: Tuple[Coords, ...] = field(default=())

    @property
    def response_time(self) -> int:
        """Busiest disk's bucket count under this plan (unweighted)."""
        return int(self.loads.max()) if self.loads.size else 0

    @property
    def completion_time(self) -> float:
        """Weighted finish time ``max_d load_d * factor_d``.

        Equal to :attr:`response_time` when no straggler factors apply.
        """
        if not self.loads.size:
            return 0.0
        if self.factors is None:
            return float(self.response_time)
        return float((self.loads * self.factors).max())

    @property
    def num_buckets(self) -> int:
        """Buckets read by the plan."""
        return len(self.assignment)

    @property
    def num_lost(self) -> int:
        """Buckets with no surviving copy."""
        return len(self.lost)

    @property
    def is_complete(self) -> bool:
        """Whether every bucket of the query could be assigned a disk."""
        return not self.lost


def _query_buckets(
    replicated: ReplicatedAllocation, query: RangeQuery
) -> List[Coords]:
    grid = replicated.grid
    if query.ndim != grid.ndim:
        raise QueryError(
            f"{query.ndim}-d query does not match {grid.ndim}-d grid"
        )
    clipped = query.clip_to(grid)
    if clipped is None:
        return []
    return list(clipped.iter_buckets())


def _greedy_assignment(
    replicated: ReplicatedAllocation, buckets: List[Coords]
) -> Dict[Coords, int]:
    loads = np.zeros(replicated.num_disks, dtype=np.int64)
    assignment: Dict[Coords, int] = {}
    for coords in buckets:
        primary, backup = replicated.disks_of(coords)
        if loads[primary] <= loads[backup]:
            choice = primary
        else:
            choice = backup
        assignment[coords] = choice
        loads[choice] += 1
    return assignment


def _flow_feasible(
    choices: Sequence[Tuple[int, ...]],
    num_disks: int,
    capacities: Sequence[int],
) -> Dict[int, int]:
    """Assignment with per-disk load <= capacities[d], or {} if infeasible.

    Max-flow on: source -> bucket_i (cap 1) -> its surviving disks (cap 1)
    -> sink (cap capacities[d]).  Feasible iff the max flow saturates all
    buckets.
    """
    import networkx as nx

    graph = nx.DiGraph()
    source, sink = "s", "t"
    for i, disks in enumerate(choices):
        bucket = ("b", i)
        graph.add_edge(source, bucket, capacity=1)
        for disk in disks:
            graph.add_edge(bucket, ("d", disk), capacity=1)
    for disk in range(num_disks):
        node = ("d", disk)
        if graph.has_node(node):
            graph.add_edge(node, sink, capacity=int(capacities[disk]))
    value, flow = nx.maximum_flow(graph, source, sink)
    if value < len(choices):
        return {}
    assignment = {}
    for i in range(len(choices)):
        bucket = ("b", i)
        for target, units in flow[bucket].items():
            if units > 0:
                assignment[i] = target[1]
                break
    return assignment


def _plan_healthy(
    replicated: ReplicatedAllocation,
    buckets: List[Coords],
    method: str,
) -> Dict[Coords, int]:
    """The original healthy-array planner (unweighted busiest disk)."""
    num_disks = replicated.num_disks
    if method == "greedy":
        return _greedy_assignment(replicated, buckets)
    pairs = [replicated.disks_of(coords) for coords in buckets]
    choices = [
        (primary,) if primary == backup else (primary, backup)
        for primary, backup in pairs
    ]
    greedy = _greedy_assignment(replicated, buckets)
    upper = int(
        np.bincount(
            list(greedy.values()), minlength=num_disks
        ).max()
    )
    lower = optimal_response_time(len(buckets), num_disks)
    best: Dict[int, int] = {}
    while lower < upper:
        middle = (lower + upper) // 2
        candidate = _flow_feasible(
            choices, num_disks, [middle] * num_disks
        )
        if candidate:
            best = candidate
            upper = middle
        else:
            lower = middle + 1
    if best:
        return {coords: best[i] for i, coords in enumerate(buckets)}
    return greedy  # greedy already achieved the bound


def _surviving_choices(
    replicated: ReplicatedAllocation,
    buckets: List[Coords],
    scenario: FaultScenario,
) -> Tuple[List[Coords], List[Tuple[int, ...]], List[Coords]]:
    """Split buckets into (reachable, per-bucket disk choices, lost)."""
    kept: List[Coords] = []
    choices: List[Tuple[int, ...]] = []
    lost: List[Coords] = []
    for coords in buckets:
        pair = replicated.disks_of(coords)
        alive = tuple(
            dict.fromkeys(
                d for d in pair if not scenario.is_failed(d)
            )
        )
        if alive:
            kept.append(coords)
            choices.append(alive)
        else:
            lost.append(coords)
    return kept, choices, lost


def _greedy_weighted(
    kept: List[Coords],
    choices: List[Tuple[int, ...]],
    scenario: FaultScenario,
    num_disks: int,
) -> Dict[Coords, int]:
    """Greedy on weighted finish times; ties prefer the primary copy."""
    loads = np.zeros(num_disks, dtype=np.int64)
    assignment: Dict[Coords, int] = {}
    for coords, alive in zip(kept, choices):
        best = alive[0]
        best_cost = (loads[best] + 1) * scenario.factor(best)
        for disk in alive[1:]:
            cost = (loads[disk] + 1) * scenario.factor(disk)
            if cost < best_cost:
                best, best_cost = disk, cost
        assignment[coords] = best
        loads[best] += 1
    return assignment


def _completion_of(
    assignment: Dict[Coords, int],
    scenario: FaultScenario,
    num_disks: int,
) -> float:
    loads = np.bincount(
        list(assignment.values()), minlength=num_disks
    )
    return float((loads * scenario.factors).max()) if loads.size else 0.0


def _plan_degraded(
    replicated: ReplicatedAllocation,
    buckets: List[Coords],
    scenario: FaultScenario,
    method: str,
) -> Tuple[Dict[Coords, int], Tuple[Coords, ...]]:
    """Planner that avoids failed disks and minimizes weighted finish time."""
    num_disks = replicated.num_disks
    kept, choices, lost = _surviving_choices(
        replicated, buckets, scenario
    )
    if not kept:
        return {}, tuple(lost)
    greedy = _greedy_weighted(kept, choices, scenario, num_disks)
    if method == "greedy":
        return greedy, tuple(lost)

    greedy_time = _completion_of(greedy, scenario, num_disks)
    used_disks = sorted({d for alive in choices for d in alive})
    # Achievable completion times are load * factor products; binary-search
    # the smallest feasible one, translating T into per-disk capacities.
    candidates = sorted(
        {
            load * scenario.factor(disk)
            for disk in used_disks
            for load in range(1, len(kept) + 1)
            if load * scenario.factor(disk) <= greedy_time + 1e-9
        }
    )
    best_assignment: Dict[int, int] = {}
    lower, upper = 0, len(candidates) - 1
    while lower < upper:
        middle = (lower + upper) // 2
        time = candidates[middle]
        capacities = [
            int(time / scenario.factor(disk) + 1e-9)
            if not scenario.is_failed(disk)
            else 0
            for disk in range(num_disks)
        ]
        candidate = _flow_feasible(choices, num_disks, capacities)
        if candidate:
            best_assignment = candidate
            upper = middle
        else:
            lower = middle + 1
    if best_assignment:
        return (
            {coords: best_assignment[i] for i, coords in enumerate(kept)},
            tuple(lost),
        )
    return greedy, tuple(lost)  # greedy already achieved the bound


def plan_query(
    replicated: ReplicatedAllocation,
    query: RangeQuery,
    method: str = "flow",
    scenario: Optional[FaultScenario] = None,
) -> QueryPlan:
    """Choose a replica per bucket minimizing the busiest disk.

    ``method="flow"`` is exact; ``method="greedy"`` is the fast heuristic.
    With a ``scenario`` the planner routes around failed disks (recording
    unreachable buckets in :attr:`QueryPlan.lost`) and minimizes the
    weighted completion time under straggler factors.
    """
    if method not in ("flow", "greedy"):
        raise QueryError(
            f"unknown planning method {method!r}; use 'flow' or 'greedy'"
        )
    if scenario is not None and scenario.num_disks != replicated.num_disks:
        raise QueryError(
            f"scenario covers {scenario.num_disks} disks but the "
            f"allocation uses {replicated.num_disks}"
        )
    buckets = _query_buckets(replicated, query)
    num_disks = replicated.num_disks
    degraded = scenario is not None and not scenario.is_healthy
    if not buckets:
        return QueryPlan(
            query=query,
            assignment={},
            loads=np.zeros(num_disks, dtype=np.int64),
            factors=scenario.factors if degraded else None,
        )

    lost: Tuple[Coords, ...] = ()
    if degraded:
        assert scenario is not None
        assignment, lost = _plan_degraded(
            replicated, buckets, scenario, method
        )
    else:
        assignment = _plan_healthy(replicated, buckets, method)

    loads = np.zeros(num_disks, dtype=np.int64)
    for disk in assignment.values():
        loads[disk] += 1
    return QueryPlan(
        query=query,
        assignment=assignment,
        loads=loads,
        factors=scenario.factors if degraded else None,
        lost=lost,
    )


def replicated_response_time(
    replicated: ReplicatedAllocation,
    query: RangeQuery,
    method: str = "flow",
) -> int:
    """Response time of a query under optimal (or greedy) replica choice."""
    return plan_query(replicated, query, method=method).response_time


def degraded_replicated_response_time(
    replicated: ReplicatedAllocation,
    query: RangeQuery,
    scenario: FaultScenario,
    method: str = "flow",
) -> float:
    """Planned completion time under faults (weighted busiest disk).

    Lost buckets (no surviving copy) do not contribute; check
    :attr:`QueryPlan.is_complete` or the availability helpers in
    :mod:`repro.faults.degraded` to detect them.
    """
    return plan_query(
        replicated, query, method=method, scenario=scenario
    ).completion_time


def replication_speedup(
    replicated: ReplicatedAllocation,
    query: RangeQuery,
    method: str = "flow",
) -> float:
    """Primary-only RT divided by planned replicated RT (>= 1)."""
    from repro.core.cost import response_time

    primary_rt = response_time(replicated.primary, query)
    planned_rt = replicated_response_time(
        replicated, query, method=method
    )
    if planned_rt == 0:
        return 1.0
    return primary_rt / planned_rt
