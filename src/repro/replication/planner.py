"""Replica-choice query planning: which copy of each bucket to read.

With two copies per bucket, answering a query becomes an assignment
problem: pick one disk from each bucket's pair so the busiest disk reads
as few buckets as possible.  Two planners are provided:

* :func:`plan_query` with ``method="flow"`` — **exact**: binary-search the
  answer ``T`` and test feasibility as a bipartite degree-constrained
  assignment via max-flow (source -> buckets (cap 1) -> their two disks ->
  sink (cap T)).  Polynomial and fast at this problem size.
* ``method="greedy"`` — assign buckets in decreasing scarcity order to the
  currently less-loaded of their two disks.  Near-optimal in practice and
  what a real executor would run.

The headline fact the tests pin down: with a sensible replica layout the
*planned* response time of the small queries that plague DM collapses to
(or near) the ``ceil(|Q|/M)`` optimum — replication buys not just
availability but the paper's missing query-time balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.cost import optimal_response_time
from repro.core.exceptions import QueryError
from repro.core.query import RangeQuery
from repro.replication.allocation import ReplicatedAllocation

__all__ = [
    "Coords",
    "QueryPlan",
    "plan_query",
    "replicated_response_time",
    "replication_speedup",
]

Coords = Tuple[int, ...]


@dataclass(frozen=True)
class QueryPlan:
    """A replica choice for every bucket of one query."""

    query: RangeQuery
    assignment: Dict[Coords, int]
    loads: np.ndarray

    @property
    def response_time(self) -> int:
        """Busiest disk's bucket count under this plan."""
        return int(self.loads.max()) if self.loads.size else 0

    @property
    def num_buckets(self) -> int:
        """Buckets read by the plan."""
        return len(self.assignment)


def _query_buckets(
    replicated: ReplicatedAllocation, query: RangeQuery
) -> List[Coords]:
    grid = replicated.grid
    if query.ndim != grid.ndim:
        raise QueryError(
            f"{query.ndim}-d query does not match {grid.ndim}-d grid"
        )
    clipped = query.clip_to(grid)
    if clipped is None:
        return []
    return list(clipped.iter_buckets())


def _greedy_assignment(
    replicated: ReplicatedAllocation, buckets: List[Coords]
) -> Dict[Coords, int]:
    loads = np.zeros(replicated.num_disks, dtype=np.int64)
    assignment: Dict[Coords, int] = {}
    for coords in buckets:
        primary, backup = replicated.disks_of(coords)
        if loads[primary] <= loads[backup]:
            choice = primary
        else:
            choice = backup
        assignment[coords] = choice
        loads[choice] += 1
    return assignment


def _flow_feasible(
    pairs: List[Tuple[int, int]], num_disks: int, limit: int
) -> Dict[int, int]:
    """Assignment with per-disk load <= limit, or {} if infeasible.

    Max-flow on: source -> bucket_i (cap 1) -> {disk_p, disk_b} (cap 1)
    -> sink (cap limit).  Feasible iff max flow saturates all buckets.
    """
    import networkx as nx

    graph = nx.DiGraph()
    source, sink = "s", "t"
    for i, (primary, backup) in enumerate(pairs):
        bucket = ("b", i)
        graph.add_edge(source, bucket, capacity=1)
        graph.add_edge(bucket, ("d", primary), capacity=1)
        if backup != primary:
            graph.add_edge(bucket, ("d", backup), capacity=1)
    for disk in range(num_disks):
        node = ("d", disk)
        if graph.has_node(node):
            graph.add_edge(node, sink, capacity=limit)
    value, flow = nx.maximum_flow(graph, source, sink)
    if value < len(pairs):
        return {}
    assignment = {}
    for i in range(len(pairs)):
        bucket = ("b", i)
        for target, units in flow[bucket].items():
            if units > 0:
                assignment[i] = target[1]
                break
    return assignment


def plan_query(
    replicated: ReplicatedAllocation,
    query: RangeQuery,
    method: str = "flow",
) -> QueryPlan:
    """Choose a replica per bucket minimizing the busiest disk.

    ``method="flow"`` is exact; ``method="greedy"`` is the fast heuristic.
    """
    if method not in ("flow", "greedy"):
        raise QueryError(
            f"unknown planning method {method!r}; use 'flow' or 'greedy'"
        )
    buckets = _query_buckets(replicated, query)
    num_disks = replicated.num_disks
    if not buckets:
        return QueryPlan(
            query=query,
            assignment={},
            loads=np.zeros(num_disks, dtype=np.int64),
        )

    if method == "greedy":
        assignment = _greedy_assignment(replicated, buckets)
    else:
        pairs = [replicated.disks_of(coords) for coords in buckets]
        greedy = _greedy_assignment(replicated, buckets)
        upper = int(
            np.bincount(
                list(greedy.values()), minlength=num_disks
            ).max()
        )
        lower = optimal_response_time(len(buckets), num_disks)
        best: Dict[int, int] = {}
        while lower < upper:
            middle = (lower + upper) // 2
            candidate = _flow_feasible(pairs, num_disks, middle)
            if candidate:
                best = candidate
                upper = middle
            else:
                lower = middle + 1
        if best:
            assignment = {
                coords: best[i] for i, coords in enumerate(buckets)
            }
        else:
            assignment = greedy  # greedy already achieved the bound

    loads = np.zeros(num_disks, dtype=np.int64)
    for disk in assignment.values():
        loads[disk] += 1
    return QueryPlan(query=query, assignment=assignment, loads=loads)


def replicated_response_time(
    replicated: ReplicatedAllocation,
    query: RangeQuery,
    method: str = "flow",
) -> int:
    """Response time of a query under optimal (or greedy) replica choice."""
    return plan_query(replicated, query, method=method).response_time


def replication_speedup(
    replicated: ReplicatedAllocation,
    query: RangeQuery,
    method: str = "flow",
) -> float:
    """Primary-only RT divided by planned replicated RT (>= 1)."""
    from repro.core.cost import response_time

    primary_rt = response_time(replicated.primary, query)
    planned_rt = replicated_response_time(
        replicated, query, method=method
    )
    if planned_rt == 0:
        return 1.0
    return primary_rt / planned_rt
