"""Replicated declustering: every bucket on a primary and a backup disk.

The paper explicitly scopes replication out: "no corresponding data
replication approaches have been proposed for data declustering.  Thus, we
do not consider techniques where a data subspace can be assigned to more
than one disk."  This package is that future work: two-copy declustering
in the style of chained declustering (Hsiao & DeWitt), where the second
copy both survives a disk failure *and* gives the query planner a choice
of disk per bucket — the "power of two choices" that pushes response
times toward the optimum.

Construction styles:

* **chained** — backup disk = (primary + offset) mod M, offset coprime to
  M (offset 1 is classical chained declustering).  Cheap and failure-safe:
  losing disk ``d`` moves its load to the neighbours.
* **orthogonal** — the backup copy uses a *different* declustering scheme,
  so the two copies' weaknesses do not line up (e.g. DM primaries with
  HCAM backups: row queries lean on the primary, squares on the backup).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import AllocationError, SchemeError
from repro.core.grid import Grid

__all__ = [
    "ReplicatedAllocation",
    "chained_replication",
    "orthogonal_replication",
]


class ReplicatedAllocation:
    """Two complete copies of the grid, on distinct disks per bucket.

    Parameters
    ----------
    primary / backup:
        :class:`DiskAllocation` objects over the same grid and disk count.
        For every bucket the two disks must differ (otherwise the copy
        adds neither availability nor choice).
    """

    __slots__ = ("_primary", "_backup")

    def __init__(self, primary: DiskAllocation, backup: DiskAllocation):
        if primary.grid != backup.grid:
            raise AllocationError(
                f"copies cover different grids: {primary.grid.dims} "
                f"vs {backup.grid.dims}"
            )
        if primary.num_disks != backup.num_disks:
            raise AllocationError(
                f"copies use different disk counts: "
                f"{primary.num_disks} vs {backup.num_disks}"
            )
        if primary.num_disks < 2:
            # With one disk a backup could never differ from the primary;
            # fail with the real reason instead of a per-bucket clash.
            raise AllocationError(
                "replication needs at least 2 disks, got "
                f"{primary.num_disks}"
            )
        clashes = primary.table == backup.table
        if clashes.any():
            where = tuple(
                int(c[0]) for c in np.nonzero(clashes)
            )
            raise AllocationError(
                "primary and backup share a disk for bucket at index "
                f"{where}; copies must be disjoint per bucket"
            )
        self._primary = primary
        self._backup = backup

    @property
    def grid(self) -> Grid:
        """The replicated grid."""
        return self._primary.grid

    @property
    def num_disks(self) -> int:
        """``M``, the number of disks."""
        return self._primary.num_disks

    @property
    def primary(self) -> DiskAllocation:
        """The primary copy's allocation."""
        return self._primary

    @property
    def backup(self) -> DiskAllocation:
        """The backup copy's allocation."""
        return self._backup

    def disks_of(self, coords: Sequence[int]) -> Tuple[int, int]:
        """The (primary, backup) disk pair holding a bucket."""
        return (
            self._primary.disk_of(coords),
            self._backup.disk_of(coords),
        )

    def storage_per_disk(self) -> np.ndarray:
        """Total bucket copies per disk (both replicas counted)."""
        return self._primary.disk_loads() + self._backup.disk_loads()

    def is_storage_balanced(self) -> bool:
        """Whether total copies per disk differ by at most one."""
        loads = self.storage_per_disk()
        return int(loads.max() - loads.min()) <= 1

    def surviving_allocation(self, failed_disk: int) -> DiskAllocation:
        """The single-copy allocation in force after ``failed_disk`` dies.

        Every bucket whose primary lived on the failed disk is served by
        its backup, and vice versa; buckets touching neither keep their
        primary.  The result is a plain allocation usable with the whole
        cost/analysis stack (degraded-mode performance).
        """
        failed_disk = int(failed_disk)
        if not 0 <= failed_disk < self.num_disks:
            raise AllocationError(
                f"disk id {failed_disk} outside [0, {self.num_disks})"
            )
        table = np.where(
            self._primary.table == failed_disk,
            self._backup.table,
            self._primary.table,
        )
        return DiskAllocation(self.grid, self.num_disks, table)

    def __repr__(self) -> str:
        return (
            f"ReplicatedAllocation(grid={self.grid.dims}, "
            f"num_disks={self.num_disks})"
        )


def chained_replication(
    primary: DiskAllocation, offset: int = 1
) -> ReplicatedAllocation:
    """Backup = (primary + offset) mod M — classical chained declustering."""
    offset = int(offset)
    num_disks = primary.num_disks
    if num_disks < 2:
        raise SchemeError(
            "replication needs at least 2 disks, got "
            f"{num_disks}"
        )
    if offset % num_disks == 0:
        raise SchemeError(
            f"offset {offset} maps copies to the same disk (mod "
            f"{num_disks})"
        )
    backup = DiskAllocation(
        primary.grid,
        num_disks,
        (primary.table + offset) % num_disks,
    )
    return ReplicatedAllocation(primary, backup)


def orthogonal_replication(
    grid: Grid,
    num_disks: int,
    primary_scheme: str = "dm",
    backup_scheme: str = "hcam",
) -> ReplicatedAllocation:
    """Two different schemes as the two copies.

    Buckets where the two schemes happen to agree get their backup bumped
    to the next disk (cyclically), preserving the disjointness invariant
    while keeping the backup close to the second scheme's layout.
    """
    from repro.core.registry import get_scheme

    if num_disks < 2:
        raise SchemeError(
            f"replication needs at least 2 disks, got {num_disks}"
        )
    primary = get_scheme(primary_scheme).allocate(grid, num_disks)
    backup_raw = get_scheme(backup_scheme).allocate(grid, num_disks)
    backup_table = backup_raw.table.copy()
    clash = backup_table == primary.table
    backup_table[clash] = (backup_table[clash] + 1) % num_disks
    backup = DiskAllocation(grid, num_disks, backup_table)
    return ReplicatedAllocation(primary, backup)
