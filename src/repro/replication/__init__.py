"""Two-copy replicated declustering and replica-choice query planning.

The extension the paper scopes out ("we do not consider techniques where a
data subspace can be assigned to more than one disk"), built: chained and
orthogonal replication plus an exact max-flow planner that picks a replica
per bucket to minimize the busiest disk.
"""

from repro.replication.allocation import (
    ReplicatedAllocation,
    chained_replication,
    orthogonal_replication,
)
from repro.replication.planner import (
    QueryPlan,
    degraded_replicated_response_time,
    plan_query,
    replicated_response_time,
    replication_speedup,
)

__all__ = [
    "ReplicatedAllocation",
    "chained_replication",
    "orthogonal_replication",
    "QueryPlan",
    "degraded_replicated_response_time",
    "plan_query",
    "replicated_response_time",
    "replication_speedup",
]
