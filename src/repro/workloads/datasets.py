"""Synthetic record datasets for the grid-file substrate.

The paper's simulation works directly on buckets, but a usable library needs
the record level too: these generators produce multi-attribute numeric
relations with controllable distributions, which :mod:`repro.gridfile`
partitions into buckets.  The distributions cover the standard cases:

* ``uniform`` — matches the paper's implicit assumption (every bucket
  equally populated under equi-width partitioning);
* ``gaussian`` — central clustering, where equi-width partitioning produces
  skewed bucket loads and equi-depth partitioning restores balance;
* ``zipf_grid`` — per-attribute Zipf over a discrete domain, for
  categorical-ish attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.exceptions import WorkloadError

__all__ = [
    "Dataset",
    "correlated_dataset",
    "gaussian_dataset",
    "uniform_dataset",
    "zipf_grid_dataset",
]


@dataclass(frozen=True)
class Dataset:
    """A synthetic relation: ``values[r, a]`` is record r's attribute a.

    Attributes
    ----------
    values:
        Float array of shape ``(num_records, num_attributes)``.
    lower / upper:
        Per-attribute domain bounds the values are guaranteed to fall in
        (used by equi-width partitioners).
    """

    values: np.ndarray
    lower: Tuple[float, ...]
    upper: Tuple[float, ...]

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 2:
            raise WorkloadError(
                f"dataset values must be 2-d, got shape {values.shape}"
            )
        if values.shape[1] != len(self.lower) or len(self.lower) != len(
            self.upper
        ):
            raise WorkloadError(
                "attribute count mismatch between values and bounds"
            )
        if any(lo >= hi for lo, hi in zip(self.lower, self.upper)):
            raise WorkloadError(
                f"empty attribute domain: lower={self.lower} "
                f"upper={self.upper}"
            )
        values = values.copy()
        values.setflags(write=False)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "lower", tuple(float(x) for x in self.lower))
        object.__setattr__(self, "upper", tuple(float(x) for x in self.upper))

    @property
    def num_records(self) -> int:
        """Number of records in the relation."""
        return self.values.shape[0]

    @property
    def num_attributes(self) -> int:
        """Number of attributes per record."""
        return self.values.shape[1]


def _check_args(num_records: int, num_attributes: int) -> None:
    if num_records <= 0:
        raise WorkloadError(
            f"record count must be positive, got {num_records}"
        )
    if num_attributes <= 0:
        raise WorkloadError(
            f"attribute count must be positive, got {num_attributes}"
        )


def uniform_dataset(
    num_records: int,
    num_attributes: int,
    lower: float = 0.0,
    upper: float = 1.0,
    seed=0,
) -> Dataset:
    """Records uniform over a shared ``[lower, upper)`` box."""
    _check_args(num_records, num_attributes)
    if lower >= upper:
        raise WorkloadError(f"empty domain [{lower}, {upper})")
    rng = np.random.default_rng(seed)
    values = rng.uniform(lower, upper, size=(num_records, num_attributes))
    return Dataset(
        values,
        (lower,) * num_attributes,
        (upper,) * num_attributes,
    )


def gaussian_dataset(
    num_records: int,
    num_attributes: int,
    mean: float = 0.5,
    std: float = 0.15,
    seed=0,
) -> Dataset:
    """Records from a clipped Gaussian inside ``[0, 1)`` per attribute."""
    _check_args(num_records, num_attributes)
    if std <= 0:
        raise WorkloadError(f"std must be positive, got {std}")
    rng = np.random.default_rng(seed)
    values = rng.normal(mean, std, size=(num_records, num_attributes))
    values = np.clip(values, 0.0, np.nextafter(1.0, 0.0))
    return Dataset(values, (0.0,) * num_attributes, (1.0,) * num_attributes)


def zipf_grid_dataset(
    num_records: int,
    num_attributes: int,
    domain_size: int,
    skew: float = 1.5,
    seed=0,
) -> Dataset:
    """Integer-valued records with per-attribute Zipf popularity.

    Values lie in ``[0, domain_size)``; value 0 is the hottest.  Useful for
    modelling categorical attributes with skewed frequencies.
    """
    _check_args(num_records, num_attributes)
    if domain_size <= 1:
        raise WorkloadError(
            f"domain size must exceed 1, got {domain_size}"
        )
    if skew <= 1.0:
        raise WorkloadError(f"Zipf skew must exceed 1.0, got {skew}")
    rng = np.random.default_rng(seed)
    raw = rng.zipf(skew, size=(num_records, num_attributes))
    values = np.minimum(raw - 1, domain_size - 1).astype(np.float64)
    return Dataset(
        values,
        (0.0,) * num_attributes,
        (float(domain_size),) * num_attributes,
    )


def correlated_dataset(
    num_records: int,
    correlation: float = 0.8,
    seed=0,
) -> Dataset:
    """Two-attribute records with the given linear correlation in ``[0,1)``.

    Correlated attributes concentrate records along the grid diagonal —
    the degenerate case for diagonal-striping schemes like DM, which makes
    this a useful adversarial fixture.
    """
    _check_args(num_records, 2)
    if not -1.0 < correlation < 1.0:
        raise WorkloadError(
            f"correlation must be in (-1, 1), got {correlation}"
        )
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.0, 1.0, size=num_records)
    noise = rng.uniform(0.0, 1.0, size=num_records)
    second = correlation * base + (1.0 - abs(correlation)) * noise
    second = np.clip(second, 0.0, np.nextafter(1.0, 0.0))
    values = np.column_stack([base, second])
    return Dataset(values, (0.0, 0.0), (1.0, 1.0))
