"""Describing a workload: the statistics that predict scheme choice.

The experiments show scheme ranking is governed by query size (in units
of M), shape elongation, and partial-match structure.  This module
computes exactly those statistics for a concrete query list, so an
advisory report can say *why* a scheme was recommended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.exceptions import WorkloadError
from repro.core.grid import Grid
from repro.core.query import RangeQuery

__all__ = [
    "WorkloadSummary",
    "render_summary",
    "summarize_workload",
]


@dataclass(frozen=True)
class WorkloadSummary:
    """Shape/size statistics of one query workload."""

    num_queries: int
    mean_buckets: float
    median_buckets: float
    max_buckets: int
    mean_elongation: float
    fraction_small: float
    fraction_partial_match: float
    fraction_point: float

    def regime(self, num_disks: int) -> str:
        """Coarse classification driving scheme choice.

        ``"small"`` when most queries are below ``M`` buckets (the
        locality regime: HCAM/cyclic territory), ``"large"`` when most
        are well above (the modular regime: FX/DM territory), else
        ``"mixed"``.
        """
        if self.fraction_small >= 0.7:
            return "small"
        if self.fraction_small <= 0.3:
            return "large"
        return "mixed"


def summarize_workload(
    grid: Grid,
    queries: Sequence[RangeQuery],
    num_disks: int,
) -> WorkloadSummary:
    """Compute the summary for a workload on one configuration."""
    queries = list(queries)
    if not queries:
        raise WorkloadError("workload contains no queries")
    sizes = np.array([q.num_buckets for q in queries], dtype=np.int64)
    elongations = np.array(
        [max(q.side_lengths) / min(q.side_lengths) for q in queries]
    )
    partial = np.array(
        [q.is_partial_match(grid) for q in queries], dtype=bool
    )
    points = np.array([q.is_point() for q in queries], dtype=bool)
    return WorkloadSummary(
        num_queries=len(queries),
        mean_buckets=float(sizes.mean()),
        median_buckets=float(np.median(sizes)),
        max_buckets=int(sizes.max()),
        mean_elongation=float(elongations.mean()),
        fraction_small=float((sizes < num_disks).mean()),
        fraction_partial_match=float(partial.mean()),
        fraction_point=float(points.mean()),
    )


def render_summary(summary: WorkloadSummary, num_disks: int) -> str:
    """One-paragraph text description of the workload."""
    return (
        f"{summary.num_queries} queries; "
        f"buckets mean/median/max = {summary.mean_buckets:.1f}/"
        f"{summary.median_buckets:.0f}/{summary.max_buckets}; "
        f"mean elongation {summary.mean_elongation:.2f}; "
        f"{summary.fraction_small:.0%} below M={num_disks} buckets "
        f"({summary.regime(num_disks)} regime); "
        f"{summary.fraction_partial_match:.0%} partial-match, "
        f"{summary.fraction_point:.0%} point queries"
    )
