"""Composite workloads: weighted mixtures of query families.

Real relations see a blend — mostly point lookups, some reports, the
occasional scan.  A :class:`WorkloadMixture` declares that blend as
weighted components and samples a concrete, reproducible query list from
it, which then drives the evaluator, the advisor, or the annealer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import WorkloadError
from repro.core.grid import Grid
from repro.core.query import RangeQuery

__all__ = [
    "Component",
    "ComponentFn",
    "WorkloadMixture",
]

#: A component draws ``count`` queries using the supplied rng.
ComponentFn = Callable[[Grid, int, np.random.Generator], List[RangeQuery]]


@dataclass(frozen=True)
class Component:
    """One weighted query family of a mixture."""

    name: str
    weight: float
    sample: ComponentFn

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(
                f"component {self.name!r} has non-positive weight "
                f"{self.weight}"
            )


class WorkloadMixture:
    """A weighted blend of query families over one grid.

    Examples
    --------
    >>> mix = WorkloadMixture(Grid((16, 16)))
    >>> mix.add_shape("lookups", weight=0.7, shape=(2, 2))
    >>> mix.add_shape("reports", weight=0.3, shape=(1, 16))
    >>> queries = mix.sample(100, seed=0)
    >>> len(queries)
    100
    """

    def __init__(self, grid: Grid):
        self._grid = grid
        self._components: List[Component] = []

    @property
    def grid(self) -> Grid:
        """The grid all components draw queries on."""
        return self._grid

    @property
    def components(self) -> List[Component]:
        """The declared components."""
        return list(self._components)

    def add_component(
        self, name: str, weight: float, sample: ComponentFn
    ) -> "WorkloadMixture":
        """Add an arbitrary component (returns self for chaining)."""
        self._components.append(Component(name, float(weight), sample))
        return self

    def add_shape(
        self, name: str, weight: float, shape: Sequence[int]
    ) -> "WorkloadMixture":
        """Component: uniformly random placements of one fixed shape."""
        shape = tuple(int(s) for s in shape)
        if len(shape) != self._grid.ndim or any(
            s <= 0 or s > d for s, d in zip(shape, self._grid.dims)
        ):
            raise WorkloadError(
                f"shape {shape} does not fit in grid {self._grid.dims}"
            )

        def sample(grid: Grid, count: int, rng) -> List[RangeQuery]:
            from repro.core.query import query_at

            queries = []
            for _ in range(count):
                origin = [
                    int(rng.integers(0, d - s + 1))
                    for s, d in zip(shape, grid.dims)
                ]
                queries.append(query_at(origin, shape))
            return queries

        return self.add_component(name, weight, sample)

    def add_sides(
        self,
        name: str,
        weight: float,
        side_range: Tuple[int, int],
    ) -> "WorkloadMixture":
        """Component: square-ish queries with sides drawn per axis."""
        low, high = int(side_range[0]), int(side_range[1])
        if not 1 <= low <= high:
            raise WorkloadError(
                f"invalid side range [{low}, {high}]"
            )
        if any(high > d for d in self._grid.dims):
            raise WorkloadError(
                f"max side {high} exceeds grid {self._grid.dims}"
            )

        def sample(grid: Grid, count: int, rng) -> List[RangeQuery]:
            from repro.core.query import query_at

            queries = []
            for _ in range(count):
                shape = [
                    int(rng.integers(low, high + 1))
                    for _ in grid.dims
                ]
                origin = [
                    int(rng.integers(0, d - s + 1))
                    for s, d in zip(shape, grid.dims)
                ]
                queries.append(query_at(origin, shape))
            return queries

        return self.add_component(name, weight, sample)

    def sample(self, count: int, seed=0) -> List[RangeQuery]:
        """Draw a concrete workload of ``count`` queries.

        Component counts follow the weights exactly (largest-remainder
        rounding), so the blend is deterministic, not just in
        expectation.
        """
        if count <= 0:
            raise WorkloadError(
                f"query count must be positive, got {count}"
            )
        if not self._components:
            raise WorkloadError("mixture has no components")
        rng = np.random.default_rng(seed)
        total_weight = sum(c.weight for c in self._components)
        raw = [
            count * c.weight / total_weight for c in self._components
        ]
        counts = [int(x) for x in raw]
        remainders = sorted(
            range(len(raw)),
            key=lambda i: raw[i] - counts[i],
            reverse=True,
        )
        for i in remainders[: count - sum(counts)]:
            counts[i] += 1
        queries: List[RangeQuery] = []
        for component, n in zip(self._components, counts):
            if n:
                queries.extend(component.sample(self._grid, n, rng))
        # Interleave deterministically so no component clusters at the
        # end of the list (matters for arrival-order simulations).
        order = rng.permutation(len(queries))
        return [queries[i] for i in order]
