"""Workload generation: query streams and synthetic record datasets."""

from repro.workloads.datasets import (
    Dataset,
    correlated_dataset,
    gaussian_dataset,
    uniform_dataset,
    zipf_grid_dataset,
)
from repro.workloads.mixtures import Component, WorkloadMixture
from repro.workloads.summary import (
    WorkloadSummary,
    render_summary,
    summarize_workload,
)
from repro.workloads.queries import (
    aspect_ratio_shapes,
    exhaustive_workload,
    random_partial_match_queries,
    random_queries_of_shape,
    random_range_queries,
    square_shape,
    zipf_placed_queries,
)

__all__ = [
    "square_shape",
    "aspect_ratio_shapes",
    "exhaustive_workload",
    "random_range_queries",
    "random_queries_of_shape",
    "random_partial_match_queries",
    "zipf_placed_queries",
    "Dataset",
    "uniform_dataset",
    "gaussian_dataset",
    "zipf_grid_dataset",
    "correlated_dataset",
    "WorkloadMixture",
    "Component",
    "WorkloadSummary",
    "summarize_workload",
    "render_summary",
]
