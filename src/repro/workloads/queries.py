"""Query-workload generators for the experiments.

Two styles, matching how the paper sweeps its parameters:

* **Exhaustive** — every placement of a shape (or every shape of an area).
  Used wherever feasible: the mean over all placements is the exact expected
  response time under uniformly random query position, with zero sampling
  variance.
* **Sampled** — seeded random queries for workloads where exhaustive
  enumeration is not the point (mixed sizes, skewed placement, partial
  match).  All generators take an explicit ``rng`` or ``seed`` so every
  experiment is reproducible.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.core.exceptions import WorkloadError
from repro.core.grid import Grid
from repro.core.query import (
    RangeQuery,
    all_placements,
    partial_match_query,
    query_at,
    shapes_with_area,
)

__all__ = [
    "aspect_ratio_shapes",
    "exhaustive_workload",
    "random_partial_match_queries",
    "random_queries_of_shape",
    "random_range_queries",
    "square_shape",
    "zipf_placed_queries",
]


def _rng_from(seed_or_rng) -> np.random.Generator:
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def square_shape(grid: Grid, side: int) -> tuple:
    """The k-dimensional cube shape with the given side."""
    if side <= 0:
        raise WorkloadError(f"side must be positive, got {side}")
    if any(side > d for d in grid.dims):
        raise WorkloadError(
            f"side {side} exceeds grid extents {grid.dims}"
        )
    return (side,) * grid.ndim


def aspect_ratio_shapes(
    grid: Grid, area: int
) -> List[tuple]:
    """2-d shapes of the given area ordered from square-most to line-most.

    This is the paper's Experiment 2 sweep ("vary the full range from a
    square to a line"): all ``a x b`` factorizations of ``area`` that fit in
    the grid, sorted by how elongated they are (``max(a,b)/min(a,b)``).
    """
    if grid.ndim != 2:
        raise WorkloadError(
            f"aspect-ratio sweep is defined for 2-d grids, got {grid.ndim}-d"
        )
    shapes = list(shapes_with_area(grid, area))
    if not shapes:
        raise WorkloadError(
            f"no shape of area {area} fits in grid {grid.dims}"
        )
    return sorted(shapes, key=lambda s: (max(s) / min(s), s))


def exhaustive_workload(
    grid: Grid, shapes: Sequence[Sequence[int]]
) -> Iterator[RangeQuery]:
    """Every placement of every given shape."""
    return itertools.chain.from_iterable(
        all_placements(grid, shape) for shape in shapes
    )


def random_range_queries(
    grid: Grid,
    count: int,
    max_side: Optional[int] = None,
    seed=0,
) -> List[RangeQuery]:
    """Uniformly random range queries.

    Each query picks, per axis, a side uniformly in ``[1, max_side]`` (capped
    by the grid) and a uniformly random origin among valid placements.
    """
    if count <= 0:
        raise WorkloadError(f"query count must be positive, got {count}")
    rng = _rng_from(seed)
    queries = []
    for _ in range(count):
        shape = []
        origin = []
        for extent in grid.dims:
            limit = extent if max_side is None else min(max_side, extent)
            side = int(rng.integers(1, limit + 1))
            shape.append(side)
            origin.append(int(rng.integers(0, extent - side + 1)))
        queries.append(query_at(origin, shape))
    return queries


def random_queries_of_shape(
    grid: Grid,
    shape: Sequence[int],
    count: int,
    seed=0,
) -> List[RangeQuery]:
    """Random placements of one fixed shape (sampled with replacement)."""
    if count <= 0:
        raise WorkloadError(f"query count must be positive, got {count}")
    shape = tuple(int(s) for s in shape)
    if len(shape) != grid.ndim:
        raise WorkloadError(
            f"shape arity {len(shape)} does not match grid {grid.dims}"
        )
    if any(s <= 0 or s > d for s, d in zip(shape, grid.dims)):
        raise WorkloadError(
            f"shape {shape} does not fit in grid {grid.dims}"
        )
    rng = _rng_from(seed)
    queries = []
    for _ in range(count):
        origin = [
            int(rng.integers(0, d - s + 1))
            for s, d in zip(shape, grid.dims)
        ]
        queries.append(query_at(origin, shape))
    return queries


def random_partial_match_queries(
    grid: Grid,
    count: int,
    num_specified: Optional[int] = None,
    seed=0,
) -> List[RangeQuery]:
    """Random partial-match queries.

    ``num_specified`` fixes how many attributes get a value (default: chosen
    uniformly in ``[1, k-1]`` per query, so at least one attribute is always
    free and at least one always bound).
    """
    if count <= 0:
        raise WorkloadError(f"query count must be positive, got {count}")
    if grid.ndim < 2 and num_specified is None:
        raise WorkloadError(
            "partial-match workload needs >= 2 attributes "
            "unless num_specified is given"
        )
    if num_specified is not None and not 0 <= num_specified <= grid.ndim:
        raise WorkloadError(
            f"num_specified {num_specified} outside [0, {grid.ndim}]"
        )
    rng = _rng_from(seed)
    queries = []
    for _ in range(count):
        bound_count = (
            num_specified
            if num_specified is not None
            else int(rng.integers(1, grid.ndim))
        )
        axes = rng.choice(grid.ndim, size=bound_count, replace=False)
        spec: List[Optional[int]] = [None] * grid.ndim
        for axis in axes:
            spec[int(axis)] = int(rng.integers(0, grid.dims[int(axis)]))
        queries.append(partial_match_query(grid, spec))
    return queries


def zipf_placed_queries(
    grid: Grid,
    shape: Sequence[int],
    count: int,
    skew: float = 1.2,
    seed=0,
) -> List[RangeQuery]:
    """Placements of one shape with Zipf-skewed origins.

    Models a hot region: origin ranks are drawn from a (truncated) Zipf
    distribution over the valid placements in row-major order, so placements
    near the grid origin are queried far more often.  Used by the ablation
    workloads — the paper itself assumes uniform placement.
    """
    if count <= 0:
        raise WorkloadError(f"query count must be positive, got {count}")
    if skew <= 1.0:
        raise WorkloadError(f"Zipf skew must exceed 1.0, got {skew}")
    shape = tuple(int(s) for s in shape)
    extents = [d - s + 1 for s, d in zip(shape, grid.dims)]
    if len(shape) != grid.ndim or any(e <= 0 for e in extents):
        raise WorkloadError(
            f"shape {shape} does not fit in grid {grid.dims}"
        )
    num_placements = int(np.prod(extents))
    rng = _rng_from(seed)
    ranks = rng.zipf(skew, size=count)
    ranks = np.minimum(ranks - 1, num_placements - 1)
    queries = []
    for rank in ranks:
        remaining = int(rank)
        origin = []
        for extent in reversed(extents):
            origin.append(remaining % extent)
            remaining //= extent
        origin.reverse()
        queries.append(query_at(origin, shape))
    return queries
