"""``repro doctor``: scan, diagnose, and garbage-collect on-disk artifacts.

The artifact layer leaves three kinds of state on a machine: spilled
summed-area tables (``repro-sat-*.npy`` plus manifest and, after a
crash, ``.partial``/``.journal.json``/``.carry.npy``/``.shards.json``
build sidecars — the last one the phase-1 shard log of a parallel
build),
the compiled-kernel cache (``reprokern-*.so`` with digest sidecars, and
``.c``/``.tmp`` leftovers from failed compiles), and shared-memory
segments (``repro-shm-*`` under ``/dev/shm``) from runs that died before
teardown.  The doctor walks all three:

* **report** (default): verify every artifact against its sidecar
  (:mod:`repro.core.integrity`), classify each finding, and exit
  non-zero when anything needs attention;
* **``--gc``**: additionally remove what cannot or should not be kept —
  corrupt artifacts, orphaned sidecars, failed-compile leftovers,
  interrupted-build staging sets, stray shared-memory segments.
  Resumable build sets are reported as such before removal, so an
  operator who wants the resume simply re-runs the build instead of
  the doctor.

Classifications:

``corrupt``
    the artifact contradicts its sidecar (or is structurally broken,
    e.g. a zero-byte ``.so``) — gc removes it;
``stale``
    leftover staging state no live build owns (partials + journals,
    compile temps, orphaned sidecars, shm segments) — gc removes it;
``resumable``
    an interrupted chunked build whose journal still validates — gc
    removes it, but the report says a re-run would resume it instead;
``unverified``
    a pre-integrity artifact with no sidecar — reported, never removed;
``in-use``
    a shared-memory segment whose embedded owner pid
    (``repro-shm-srv<pid>-...``) is a live server process — reported
    for visibility, never removed, and never fails the report;
``ok``
    verified clean (listed only in ``--json`` output).
"""

from __future__ import annotations

import glob
import os
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.exceptions import IntegrityError
from repro.core.integrity import (
    library_digest_path,
    manifest_path,
    verify_level,
    verify_library,
    verify_sat,
)
from repro.core.sat import (
    build_carry_path,
    build_journal_path,
    build_partial_path,
    build_shards_path,
)
from repro.obs.log import get_logger

__all__ = [
    "ArtifactIssue",
    "DoctorReport",
    "run_doctor",
    "scan_native_cache",
    "scan_sat_artifacts",
    "scan_shm_segments",
]

_LOG = get_logger("repro.doctor")

#: Classification ranks for exit-code purposes: anything at or above
#: ``stale`` makes a plain report exit non-zero.
_ACTIONABLE = ("corrupt", "stale", "resumable")


@dataclass
class ArtifactIssue:
    """One classified artifact (see module docstring for the states)."""

    kind: str  #: "sat" | "sat-build" | "native" | "shm"
    state: str  #: "ok"|"unverified"|"in-use"|"resumable"|"stale"|"corrupt"
    path: str
    detail: str
    #: Files (or the shm segment name) that ``--gc`` would remove.
    removals: List[str]

    @property
    def actionable(self) -> bool:
        return self.state in _ACTIONABLE

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "state": self.state,
            "path": self.path,
            "detail": self.detail,
            "removals": list(self.removals),
        }


def _sat_dir() -> str:
    return os.environ.get("REPRO_SAT_DIR") or tempfile.gettempdir()


def _native_dir() -> str:
    # Mirrors repro.core.backends.native._cache_dir without importing
    # the backend (the doctor must run even where ctypes/cc are broken).
    configured = os.environ.get("REPRO_NATIVE_CACHE")
    if configured:
        return configured
    return os.path.join(
        tempfile.gettempdir(), f"repro-native-{os.getuid()}"
    )


def _load_sidecar_json(path: str):
    import json

    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _journal_is_resumable(npy_path: str) -> bool:
    """Whether an interrupted build's sidecars would actually resume.

    A light-weight version of the build's own validation: the journal
    must parse and its carry/partial files must exist.  The build
    re-validates digests itself, so the doctor only has to distinguish
    "a re-run resumes this" from "this is dead weight".
    """
    from repro.core.integrity import SAT_JOURNAL_KIND

    journal = _load_sidecar_json(build_journal_path(npy_path))
    return (
        journal is not None
        and journal.get("kind") == SAT_JOURNAL_KIND
        and os.path.exists(build_partial_path(npy_path))
        and os.path.exists(build_carry_path(npy_path))
    )


def _shards_are_resumable(npy_path: str) -> bool:
    """Whether a parallel build's phase-1 shard state would resume.

    A build killed during phase 1 leaves a shard log plus the partial
    but no (valid) carry journal — per-worker state, not corruption: a
    re-run digest-verifies each committed shard and finishes the build.
    """
    from repro.core.integrity import SAT_SHARDS_KIND

    shards = _load_sidecar_json(build_shards_path(npy_path))
    return (
        shards is not None
        and shards.get("kind") == SAT_SHARDS_KIND
        and bool(shards.get("done"))
        and os.path.exists(build_partial_path(npy_path))
    )


def scan_sat_artifacts(
    directory: Optional[str] = None, level: Optional[str] = None
) -> List[ArtifactIssue]:
    """Classify every spilled SAT and build-staging set in ``directory``.

    Only repro-owned files are considered: ``repro-sat-*`` temp spills,
    any ``.npy`` with a manifest sidecar, and chunked-build staging
    sets (``*.partial`` / ``*.journal.json`` / ``*.carry.npy``).
    """
    directory = directory or _sat_dir()
    level = verify_level(level)
    issues: List[ArtifactIssue] = []
    if not os.path.isdir(directory):
        return issues

    tables = {
        # Carry checkpoints also end in .npy; they belong to the
        # staging sets below, not the table inventory.
        path
        for path in glob.glob(os.path.join(directory, "repro-sat-*.npy"))
        if not path.endswith(".carry.npy")
    }
    for sidecar in glob.glob(
        os.path.join(directory, "*.npy.manifest.json")
    ):
        tables.add(sidecar[: -len(".manifest.json")])
    staged = set()
    for pattern in ("*.npy.partial", "*.npy.journal.json",
                    "*.npy.carry.npy", "*.npy.shards.json"):
        for leftover in glob.glob(os.path.join(directory, pattern)):
            for suffix in (".partial", ".journal.json", ".carry.npy",
                           ".shards.json"):
                if leftover.endswith(suffix):
                    staged.add(leftover[: -len(suffix)])

    for path in sorted(tables):
        manifest = manifest_path(path)
        if not os.path.exists(path):
            issues.append(
                ArtifactIssue(
                    kind="sat",
                    state="stale",
                    path=manifest,
                    detail="manifest without its table",
                    removals=[manifest],
                )
            )
            continue
        if not os.path.exists(manifest):
            issues.append(
                ArtifactIssue(
                    kind="sat",
                    state="unverified",
                    path=path,
                    detail="no sidecar manifest (pre-integrity spill)",
                    removals=[],
                )
            )
            continue
        try:
            # The doctor's depth is the caller's REPRO_VERIFY/--verify,
            # but never weaker than header: an 'off' doctor would be
            # a scan that scans nothing.
            verify_sat(path, "header" if level == "off" else level)
            issues.append(
                ArtifactIssue(
                    kind="sat",
                    state="ok",
                    path=path,
                    detail="verified",
                    removals=[],
                )
            )
        except IntegrityError as exc:
            issues.append(
                ArtifactIssue(
                    kind="sat",
                    state="corrupt",
                    path=path,
                    detail=str(exc),
                    removals=[path, manifest],
                )
            )

    for base in sorted(staged):
        parts = [
            p
            for p in (
                build_partial_path(base),
                build_journal_path(base),
                build_carry_path(base),
                build_shards_path(base),
            )
            if os.path.exists(p)
        ]
        if _journal_is_resumable(base):
            state = "resumable"
            detail = (
                "interrupted chunked build; re-running the build for "
                f"{os.path.basename(base)} resumes it"
            )
        elif _shards_are_resumable(base):
            state = "resumable"
            detail = (
                "parallel build interrupted in phase 1; re-running "
                f"the build for {os.path.basename(base)} verifies the "
                "committed worker shards and resumes"
            )
        else:
            state = "stale"
            detail = (
                "dead build staging files (no usable journal or "
                "shard log)"
            )
        issues.append(
            ArtifactIssue(
                kind="sat-build",
                state=state,
                path=base,
                detail=detail,
                removals=parts,
            )
        )
    return issues


def scan_native_cache(
    directory: Optional[str] = None, level: Optional[str] = None
) -> List[ArtifactIssue]:
    """Classify every cached kernel library and compile leftover."""
    directory = directory or _native_dir()
    level = verify_level(level)
    issues: List[ArtifactIssue] = []
    if not os.path.isdir(directory):
        return issues

    libraries = sorted(
        glob.glob(os.path.join(directory, "reprokern-*.so"))
    )
    for lib in libraries:
        sidecar = library_digest_path(lib)
        try:
            if os.path.getsize(lib) == 0:
                raise IntegrityError("zero-byte shared library")
            if not os.path.exists(sidecar):
                issues.append(
                    ArtifactIssue(
                        kind="native",
                        state="unverified",
                        path=lib,
                        detail="no digest sidecar (pre-integrity cache)",
                        removals=[],
                    )
                )
                continue
            verify_library(lib, "header" if level == "off" else level)
            issues.append(
                ArtifactIssue(
                    kind="native",
                    state="ok",
                    path=lib,
                    detail="verified",
                    removals=[],
                )
            )
        except (IntegrityError, OSError) as exc:
            issues.append(
                ArtifactIssue(
                    kind="native",
                    state="corrupt",
                    path=lib,
                    detail=str(exc),
                    removals=[lib, sidecar]
                    if os.path.exists(sidecar)
                    else [lib],
                )
            )

    lib_stems = {lib[: -len(".so")] for lib in libraries}
    for leftover in sorted(
        glob.glob(os.path.join(directory, "reprokern-*.so.*.tmp"))
    ):
        issues.append(
            ArtifactIssue(
                kind="native",
                state="stale",
                path=leftover,
                detail="temp object from an interrupted compile",
                removals=[leftover],
            )
        )
    for source in sorted(
        glob.glob(os.path.join(directory, "reprokern-*.c"))
    ):
        if source[: -len(".c")] not in lib_stems:
            issues.append(
                ArtifactIssue(
                    kind="native",
                    state="stale",
                    path=source,
                    detail="kernel source without its library "
                    "(failed compile)",
                    removals=[source],
                )
            )
    for sidecar in sorted(
        glob.glob(os.path.join(directory, "reprokern-*.so.sha256"))
    ):
        if sidecar[: -len(".sha256")] not in libraries:
            issues.append(
                ArtifactIssue(
                    kind="native",
                    state="stale",
                    path=sidecar,
                    detail="digest sidecar without its library",
                    removals=[sidecar],
                )
            )
    return issues


def scan_shm_segments() -> List[ArtifactIssue]:
    """Classify leftover ``repro-shm-*`` segments in ``/dev/shm``.

    Untagged segments surviving a run are stale by definition: every
    orderly short-lived run tears its arena down, so what remains
    belongs to a crashed run.  Server-tagged segments
    (``repro-shm-srv<pid>-...``) carry their owner's pid: while that
    process lives the segment is **in-use** (reported, never
    collected); once the owner is gone it is an orphan of a crashed or
    killed daemon and gc may unlink it.
    """
    from repro.core.shm import (
        SHM_NAME_PREFIX,
        _pid_alive,
        segment_owner_pid,
        stray_segments,
    )

    issues = []
    for name in stray_segments(SHM_NAME_PREFIX):
        owner = segment_owner_pid(name)
        if owner is None:
            state = "stale"
            detail = "shared-memory segment from a crashed run"
        elif _pid_alive(owner):
            state = "in-use"
            detail = (
                f"segment owned by live server pid {owner}; "
                "not collectable while it runs"
            )
        else:
            state = "stale"
            detail = (
                f"orphaned server segment (owner pid {owner} is gone)"
            )
        issues.append(
            ArtifactIssue(
                kind="shm",
                state=state,
                path=f"/dev/shm/{name}",
                detail=detail,
                removals=[name] if state == "stale" else [],
            )
        )
    return issues


def _gc_issue(issue: ArtifactIssue) -> List[str]:
    """Remove one issue's artifacts; returns what was actually removed."""
    removed: List[str] = []
    if issue.kind == "shm":
        from repro.core.shm import unlink_segment

        for name in issue.removals:
            if unlink_segment(name):
                removed.append(f"/dev/shm/{name}")
        return removed
    for path in issue.removals:
        try:
            os.unlink(path)
            removed.append(path)
        except OSError as exc:
            _LOG.warning("doctor gc could not remove %s: %r", path, exc)
    return removed


@dataclass
class DoctorReport:
    """Everything one doctor run found (and, with gc, removed)."""

    issues: List[ArtifactIssue]
    removed: List[str]
    gc: bool

    @property
    def actionable(self) -> List[ArtifactIssue]:
        return [issue for issue in self.issues if issue.actionable]

    @property
    def clean(self) -> bool:
        return not self.actionable

    def exit_code(self) -> int:
        """0 when clean or everything actionable was gc'd; 1 otherwise."""
        if self.clean:
            return 0
        if not self.gc:
            return 1
        from repro.core.shm import stray_segments

        leftover_segments = set(stray_segments())
        for issue in self.actionable:
            for target in issue.removals:
                if issue.kind == "shm":
                    if target in leftover_segments:
                        return 1
                elif os.path.exists(target):
                    return 1
        return 0

    def to_json(self) -> Dict[str, object]:
        return {
            "issues": [issue.to_json() for issue in self.issues],
            "removed": list(self.removed),
            "gc": self.gc,
            "clean": self.clean,
        }

    def render(self) -> str:
        lines: List[str] = []
        reported = [i for i in self.issues if i.state != "ok"]
        ok_count = len(self.issues) - len(reported)
        for issue in reported:
            lines.append(
                f"[{issue.state:>10s}] {issue.kind:<9s} {issue.path}"
                f" — {issue.detail}"
            )
        if self.gc and self.removed:
            lines.append(f"gc: removed {len(self.removed)} artifact(s)")
            for path in self.removed:
                lines.append(f"  removed {path}")
        if not reported:
            lines.append(
                f"doctor: clean ({ok_count} verified artifact(s), "
                f"no leftovers)"
            )
        else:
            lines.append(
                f"doctor: {len(reported)} finding(s), "
                f"{ok_count} verified artifact(s)"
            )
        return "\n".join(lines)


def run_doctor(
    sat_dir: Optional[str] = None,
    native_cache: Optional[str] = None,
    level: Optional[str] = None,
    gc: bool = False,
    scanners: Optional[
        List[Callable[[], List[ArtifactIssue]]]
    ] = None,
) -> DoctorReport:
    """Scan all artifact stores, optionally garbage-collecting.

    ``scanners`` overrides the scan list (tests inject single scans);
    the default covers SAT spills, the native kernel cache, and
    ``/dev/shm``.
    """
    if scanners is None:
        scanners = [
            lambda: scan_sat_artifacts(sat_dir, level),
            lambda: scan_native_cache(native_cache, level),
            scan_shm_segments,
        ]
    issues: List[ArtifactIssue] = []
    for scan in scanners:
        issues.extend(scan())
    removed: List[str] = []
    if gc:
        for issue in issues:
            if issue.actionable:
                removed.extend(_gc_issue(issue))
    return DoctorReport(issues=issues, removed=removed, gc=gc)
