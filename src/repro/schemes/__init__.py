"""Grid-based declustering schemes.

The four families evaluated by the paper — DM/CMD, FX/ExFX, ECC, HCAM — plus
GDM and the baseline/ablation schemes.  All share the
:class:`~repro.schemes.base.DeclusteringScheme` interface; use
:func:`repro.core.registry.get_scheme` to construct by name.
"""

from repro.schemes.base import DeclusteringScheme
from repro.schemes.baselines import RandomScheme, RoundRobinScheme
from repro.schemes.cyclic import (
    CyclicScheme,
    coprime_skips,
    exhaustive_skip,
    gfib_skip,
    rphm_skip,
)
from repro.schemes.disk_modulo import (
    DiskModuloScheme,
    GeneralizedDiskModuloScheme,
)
from repro.schemes.ecc_scheme import ECCScheme
from repro.schemes.fieldwise_xor import AutoFXScheme, ExFXScheme, FXScheme
from repro.schemes.hilbert_scheme import (
    GrayCodeScheme,
    HCAMScheme,
    ZOrderScheme,
)
from repro.schemes.lattice import (
    LatticeScheme,
    exhaustive_coefficients,
    power_coefficients,
)
from repro.schemes.workload_aware import WorkloadAwareScheme

__all__ = [
    "DeclusteringScheme",
    "DiskModuloScheme",
    "GeneralizedDiskModuloScheme",
    "FXScheme",
    "ExFXScheme",
    "AutoFXScheme",
    "ECCScheme",
    "HCAMScheme",
    "ZOrderScheme",
    "GrayCodeScheme",
    "RandomScheme",
    "RoundRobinScheme",
    "CyclicScheme",
    "coprime_skips",
    "rphm_skip",
    "gfib_skip",
    "exhaustive_skip",
    "LatticeScheme",
    "power_coefficients",
    "exhaustive_coefficients",
    "WorkloadAwareScheme",
]
