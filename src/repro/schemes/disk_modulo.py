"""Disk Modulo (DM / CMD) and Generalized Disk Modulo (GDM) declustering.

* **DM** (Du & Sobolewski, TODS 1982) assigns bucket ``<i_1, ..., i_k>`` to
  disk ``(i_1 + i_2 + ... + i_k) mod M``.  **CMD** (Li, Srivastava & Rotem,
  VLDB 1992) uses the same bucket-level rule — the paper evaluates them as a
  single method, "DM/CMD".
* **GDM** (Du, BIT 1986) generalizes to ``(c_1 i_1 + ... + c_k i_k) mod M``
  for fixed integer coefficients ``c_j``; DM is the all-ones special case.

DM is strictly optimal for all partial-match queries with exactly one
unspecified attribute, and for those with at least one unspecified attribute
``i`` such that ``d_i mod M = 0`` (see :mod:`repro.theory.conditions`).  Its
weakness, which the paper's experiments expose, is square-ish range queries:
an ``a x b`` query with ``a + b - 1 <= M`` cannot spread over more than
``a + b - 1`` distinct disks (the coordinate sums form a contiguous run), so
small squares pile up on few disks.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.backends import active_backend
from repro.core.exceptions import SchemeError
from repro.core.grid import Grid
from repro.schemes.base import DeclusteringScheme, block_coordinate_arrays

__all__ = [
    "DiskModuloScheme",
    "GeneralizedDiskModuloScheme",
]


class DiskModuloScheme(DeclusteringScheme):
    """DM / CMD: disk = (sum of bucket coordinates) mod M."""

    name = "dm"

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        return sum(int(c) for c in coords) % num_disks

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        return active_backend().linear_mod_table(
            grid.dims, (1,) * grid.ndim, num_disks
        )

    def disk_array_block(
        self, grid: Grid, num_disks: int, start: int, stop: int
    ) -> np.ndarray:
        total = np.zeros((stop - start,) + grid.dims[1:], dtype=np.int64)
        for axis_coords in block_coordinate_arrays(grid, start, stop):
            total += axis_coords
        return total % num_disks


class GeneralizedDiskModuloScheme(DeclusteringScheme):
    """GDM: disk = (c_1 i_1 + ... + c_k i_k) mod M with fixed coefficients.

    Parameters
    ----------
    coefficients:
        One integer per attribute.  ``None`` (default) means all ones, i.e.
        plain DM.  A classic non-trivial choice on two attributes is
        ``(1, q)`` with ``q`` coprime to ``M``, which skews the diagonal
        stripes of DM.
    """

    name = "gdm"

    def __init__(self, coefficients: Optional[Sequence[int]] = None):
        self._coefficients: Optional[Tuple[int, ...]] = (
            None
            if coefficients is None
            else tuple(int(c) for c in coefficients)
        )

    @property
    def coefficients(self) -> Optional[Tuple[int, ...]]:
        """The configured coefficient vector (``None`` = all ones)."""
        return self._coefficients

    def _coeffs_for(self, grid: Grid) -> Tuple[int, ...]:
        if self._coefficients is None:
            return (1,) * grid.ndim
        if len(self._coefficients) != grid.ndim:
            raise SchemeError(
                f"GDM has {len(self._coefficients)} coefficients but the "
                f"grid has {grid.ndim} attributes"
            )
        return self._coefficients

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        coeffs = self._coeffs_for(grid)
        return sum(c * int(i) for c, i in zip(coeffs, coords)) % num_disks

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        return active_backend().linear_mod_table(
            grid.dims, self._coeffs_for(grid), num_disks
        )

    def disk_array_block(
        self, grid: Grid, num_disks: int, start: int, stop: int
    ) -> np.ndarray:
        coeffs = self._coeffs_for(grid)
        total = np.zeros((stop - start,) + grid.dims[1:], dtype=np.int64)
        for coeff, axis_coords in zip(
            coeffs, block_coordinate_arrays(grid, start, stop)
        ):
            total += coeff * axis_coords
        return total % num_disks

    def __repr__(self) -> str:
        return (
            f"GeneralizedDiskModuloScheme(coefficients={self._coefficients})"
        )
