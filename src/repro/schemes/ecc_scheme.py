"""Error-Correcting-Code (ECC) declustering.

Faloutsos & Metaxas (IEEE ToC 1991): with ``M = 2^c`` disks, write each
bucket as the ``n``-bit concatenation of its binary coordinates and build a
binary linear code of length ``n`` with ``c`` parity-check bits.  The code's
``M`` cosets become the disks: disk 0 holds the codewords, disk ``s`` holds
the coset with syndrome ``s``.  Buckets on the same disk then differ by a
codeword, whose Hamming weight is at least the code's minimum distance — so
same-disk buckets are guaranteed to be far apart in the grid, which is
exactly the declustering property wanted for small range queries.

Preconditions (as in the paper): ``M`` must be a power of two, and every
``d_i`` a power of two (or treated as its binary ceiling — this
implementation requires powers of two, matching the paper's Table 1 row for
ECC).  The parity-check matrix comes from
:func:`repro.ecc.codes.parity_check_matrix` (Hamming-like, systematic) in
place of Reza's printed tables.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import SchemeNotApplicableError
from repro.core.grid import Grid
from repro.ecc.codes import (
    BinaryLinearCode,
    hamming_like_code,
    is_power_of_two,
)
from repro.schemes.base import DeclusteringScheme
from repro.schemes.fieldwise_xor import concatenate_fields

__all__ = ["ECCScheme"]


class ECCScheme(DeclusteringScheme):
    """ECC: disk = syndrome of the bucket's bit-string under a Hamming-like code."""

    name = "ecc"

    def check_applicable(self, grid: Grid, num_disks: int) -> None:
        super().check_applicable(grid, num_disks)
        if not is_power_of_two(num_disks):
            raise SchemeNotApplicableError(
                f"ECC needs a power-of-two disk count, got {num_disks}"
            )
        for extent in grid.dims:
            if not is_power_of_two(extent):
                raise SchemeNotApplicableError(
                    "ECC needs power-of-two partition counts, "
                    f"got grid {grid.dims}"
                )
        checks = (num_disks - 1).bit_length()
        length = sum(grid.bits_per_axis())
        if 0 < length < checks:
            raise SchemeNotApplicableError(
                f"grid has only {length} coordinate bits but "
                f"{num_disks} disks need {checks} syndrome bits; "
                "fewer buckets than disks"
            )

    def code_for(self, grid: Grid, num_disks: int) -> BinaryLinearCode:
        """The parity-check code used for this grid/disk configuration."""
        self.check_applicable(grid, num_disks)
        checks = (num_disks - 1).bit_length()
        length = sum(grid.bits_per_axis())
        if checks == 0:
            # M == 1: the zero-check code; everything on disk 0.
            return BinaryLinearCode(np.zeros((0, max(length, 1)), dtype=np.uint8))
        return hamming_like_code(checks, max(length, checks))

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        if num_disks == 1:
            return 0
        code = self.code_for(grid, num_disks)
        word_value = concatenate_fields(coords, grid.bits_per_axis())
        word = np.array(
            [(word_value >> i) & 1 for i in range(code.length)],
            dtype=np.uint8,
        )
        return code.syndrome(word)

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        if num_disks == 1:
            return np.zeros(grid.dims, dtype=np.int64)
        code = self.code_for(grid, num_disks)
        widths = grid.bits_per_axis()
        packed = np.zeros(grid.dims, dtype=np.int64)
        shift = 0
        for width, axis_coords in zip(widths, grid.coordinate_arrays()):
            packed |= axis_coords << shift
            shift += width
        flat = packed.ravel()
        words = np.zeros((flat.size, code.length), dtype=np.uint8)
        for bit in range(code.length):
            words[:, bit] = (flat >> bit) & 1
        return code.syndromes(words).reshape(grid.dims)
