"""Field-wise eXclusive-or (FX) declustering and its extension ExFX.

**FX** (Kim & Pramanik, SIGMOD 1988): write each bucket coordinate in binary
and XOR the fields together,

    disk(<i_1, ..., i_k>) = (i_1 XOR i_2 XOR ... XOR i_k) mod M.

FX was designed for efficient partial-match retrieval with ``M`` a power of
two; fixing all attributes but one makes the remaining coordinate sweep the
XOR through a permuted run of disk ids, which spreads the qualifying buckets
perfectly when the free field is at least ``log2 M`` bits wide.

**ExFX** — when some attribute has fewer partitions than disks
(``d_i < M``), a single field cannot reach every disk, so FX degrades.  The
published extension widens the per-field contribution by borrowing bits from
the other fields.  Our concrete (documented) realization: concatenate the
coordinate fields LSB-first into one bit-string, then fold it by XOR-ing
successive ``w``-bit chunks where ``w = ceil(log2 M)``, and take the result
mod M.  For fields that are already ``>= w`` bits this mixes more than plain
FX does, so — following the paper's own protocol — the automatic mode uses
plain FX when every ``d_i >= M`` and ExFX otherwise.
"""

from __future__ import annotations

from functools import reduce
from typing import Sequence

import numpy as np

from repro.core.backends import active_backend
from repro.core.exceptions import SchemeError
from repro.core.grid import Grid
from repro.schemes.base import DeclusteringScheme, block_coordinate_arrays

__all__ = [
    "AutoFXScheme",
    "ExFXScheme",
    "FXScheme",
    "concatenate_fields",
    "xor_fold",
]


def xor_fold(value: int, total_bits: int, chunk_bits: int) -> int:
    """XOR together the ``chunk_bits``-wide slices of ``value``.

    ``value`` is treated as a ``total_bits``-bit string (LSB-first) split
    from the bottom into chunks; short final chunks are zero-padded.
    """
    if chunk_bits <= 0:
        raise SchemeError(f"chunk width must be positive, got {chunk_bits}")
    folded = 0
    remaining = int(value)
    consumed = 0
    while consumed < max(total_bits, 1):
        folded ^= remaining & ((1 << chunk_bits) - 1)
        remaining >>= chunk_bits
        consumed += chunk_bits
    return folded


def concatenate_fields(coords: Sequence[int], widths: Sequence[int]) -> int:
    """Pack coordinate fields into one integer, field 0 in the low bits."""
    if len(coords) != len(widths):
        raise SchemeError(
            f"{len(coords)} coordinates but {len(widths)} field widths"
        )
    packed = 0
    shift = 0
    for value, width in zip(coords, widths):
        packed |= int(value) << shift
        shift += width
    return packed


class FXScheme(DeclusteringScheme):
    """FX: disk = (XOR of binary coordinate fields) mod M."""

    name = "fx"

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        return reduce(lambda a, b: a ^ b, (int(c) for c in coords)) % num_disks

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        return active_backend().xor_mod_table(grid.dims, num_disks)

    def disk_array_block(
        self, grid: Grid, num_disks: int, start: int, stop: int
    ) -> np.ndarray:
        table = np.zeros((stop - start,) + grid.dims[1:], dtype=np.int64)
        for axis_coords in block_coordinate_arrays(grid, start, stop):
            np.bitwise_xor(table, axis_coords, out=table)
        return table % num_disks


class ExFXScheme(DeclusteringScheme):
    """ExFX: concatenate coordinate fields, XOR-fold in log2(M)-bit chunks."""

    name = "exfx"

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        widths = grid.bits_per_axis()
        chunk = max(1, (num_disks - 1).bit_length())
        packed = concatenate_fields(coords, widths)
        folded = xor_fold(packed, sum(widths), chunk)
        return folded % num_disks

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        return self._fold_block(
            grid, num_disks, grid.coordinate_arrays()
        )

    def disk_array_block(
        self, grid: Grid, num_disks: int, start: int, stop: int
    ) -> np.ndarray:
        return self._fold_block(
            grid, num_disks, block_coordinate_arrays(grid, start, stop)
        )

    def _fold_block(self, grid, num_disks, coordinate_arrays):
        # Whole-grid form of concatenate_fields + xor_fold: pack every
        # bucket's fields LSB-first into one int64, then XOR the
        # chunk-wide slices — the same chunk walk as the scalar rule.
        widths = grid.bits_per_axis()
        chunk = max(1, (num_disks - 1).bit_length())
        total_bits = sum(widths)
        packed = None
        shift = 0
        for width, axis_coords in zip(widths, coordinate_arrays):
            if packed is None:
                packed = np.zeros(axis_coords.shape, dtype=np.int64)
            packed |= axis_coords << shift
            shift += width
        mask = (1 << chunk) - 1
        folded = np.zeros(packed.shape, dtype=np.int64)
        consumed = 0
        while consumed < max(total_bits, 1):
            np.bitwise_xor(folded, (packed >> consumed) & mask, out=folded)
            consumed += chunk
        return folded % num_disks


class AutoFXScheme(DeclusteringScheme):
    """The paper's protocol: FX when every d_i >= M, ExFX otherwise."""

    name = "fx-auto"

    def __init__(self):
        self._fx = FXScheme()
        self._exfx = ExFXScheme()

    def chooses_extended(self, grid: Grid, num_disks: int) -> bool:
        """Whether ExFX would be used for this configuration."""
        return any(d < num_disks for d in grid.dims)

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        inner = (
            self._exfx
            if self.chooses_extended(grid, num_disks)
            else self._fx
        )
        return inner.disk_of(coords, grid, num_disks)

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        inner = (
            self._exfx
            if self.chooses_extended(grid, num_disks)
            else self._fx
        )
        return inner.disk_array(grid, num_disks)

    def disk_array_block(
        self, grid: Grid, num_disks: int, start: int, stop: int
    ) -> np.ndarray:
        inner = (
            self._exfx
            if self.chooses_extended(grid, num_disks)
            else self._fx
        )
        return inner.disk_array_block(grid, num_disks, start, stop)
