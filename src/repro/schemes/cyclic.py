"""Cyclic (lattice) declustering with chosen skip values.

A direct descendant of the methods the paper evaluates: DM assigns
``(i + j) mod M``, i.e. it walks the disks with *skip 1* per column.  The
cyclic family generalizes the skip,

    disk(<i, j>) = (i + H * j) mod M,      gcd(H, M) = 1,

which tilts DM's diagonal stripes into a 2-d lattice.  A good ``H``
spreads any small rectangle over many distinct disks — the strictly
optimal M = 5 allocation is exactly ``H = 2`` — and fixes DM's small-square
pathology while keeping its optimal row/column behaviour.

Skip-selection policies (named after the post-paper literature on cyclic
allocation — Prabhakar, Agrawal & El Abbadi — which grew out of exactly
the gap this paper exposed):

* **RPHM** (relatively-prime H to M): ``H`` closest to the golden-section
  point ``M / phi`` among values coprime to ``M`` — a fixed, cheap choice
  that avoids the degenerate skips 1 and M-1.
* **GFIB** (generalized Fibonacci): ``H`` = the largest Fibonacci number
  < M made coprime to ``M`` by decrement — Fibonacci skips give
  near-uniform lattices for the same reason Fibonacci hashing works.
* **EXH** (exhaustive): evaluate every coprime skip on a target workload
  (small squares by default) and keep the best — the most expensive and
  the strongest, and exactly the "use query information" advice the
  paper's conclusion gives.

Only the 2-d case is defined (as in the literature); the schemes raise
for other dimensionalities.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import SchemeError, SchemeNotApplicableError
from repro.core.grid import Grid
from repro.schemes.base import DeclusteringScheme

__all__ = [
    "CyclicScheme",
    "GOLDEN_RATIO",
    "coprime_skips",
    "exhaustive_skip",
    "gfib_skip",
    "rphm_skip",
]

#: The golden ratio, used by the RPHM default skip.
GOLDEN_RATIO = (1 + math.sqrt(5)) / 2


def coprime_skips(num_disks: int) -> List[int]:
    """All valid skips ``H`` in ``[1, M)`` with ``gcd(H, M) = 1``.

    For ``M = 1`` the only (degenerate) skip is 0.
    """
    if num_disks <= 0:
        raise SchemeError(f"disk count must be positive, got {num_disks}")
    if num_disks == 1:
        return [0]
    return [
        h for h in range(1, num_disks) if math.gcd(h, num_disks) == 1
    ]


def rphm_skip(num_disks: int) -> int:
    """The relatively-prime skip nearest the golden-section point."""
    candidates = coprime_skips(num_disks)
    target = num_disks / GOLDEN_RATIO
    return min(candidates, key=lambda h: (abs(h - target), h))


def gfib_skip(num_disks: int) -> int:
    """The largest Fibonacci number below M, decremented until coprime."""
    if num_disks <= 2:
        return coprime_skips(num_disks)[-1]
    a, b = 1, 1
    while b < num_disks:
        a, b = b, a + b
    skip = a  # largest Fibonacci < M (a < num_disks <= b)
    while skip > 1 and math.gcd(skip, num_disks) != 1:
        skip -= 1
    return skip


def exhaustive_skip(
    num_disks: int,
    grid: Grid,
    shapes: Optional[Sequence[Sequence[int]]] = None,
) -> int:
    """The coprime skip with the lowest mean RT on the target shapes.

    Default target: the small squares (2x2 and 3x3) where skip choice
    matters most; ties break towards the smaller skip for determinism.
    """
    from repro.core.cost import sliding_response_times

    if grid.ndim != 2:
        raise SchemeNotApplicableError(
            f"cyclic declustering is 2-d only, got {grid.ndim}-d grid"
        )
    if shapes is None:
        shapes = [
            tuple(min(s, d) for d in grid.dims)
            for s in (2, 3)
        ]
    best_skip = None
    best_cost = None
    for skip in coprime_skips(num_disks):
        table = _cyclic_table(grid, num_disks, skip)
        allocation = DiskAllocation(grid, num_disks, table)
        cost = 0.0
        for shape in shapes:
            cost += float(
                sliding_response_times(allocation, shape).mean()
            )
        if best_cost is None or cost < best_cost - 1e-12:
            best_cost = cost
            best_skip = skip
    return best_skip


def _cyclic_table(grid: Grid, num_disks: int, skip: int) -> np.ndarray:
    rows, cols = grid.coordinate_arrays()
    return (rows + skip * cols) % num_disks


class CyclicScheme(DeclusteringScheme):
    """Cyclic declustering: disk = (i + H*j) mod M with a policy-chosen H.

    Parameters
    ----------
    policy:
        ``"rphm"`` (default), ``"gfib"``, or ``"exh"``.
    skip:
        Explicit skip overriding the policy (must be coprime to ``M``).
    """

    name = "cyclic"

    _POLICIES = ("rphm", "gfib", "exh")

    def __init__(self, policy: str = "rphm", skip: Optional[int] = None):
        if policy not in self._POLICIES:
            raise SchemeError(
                f"unknown cyclic policy {policy!r}; "
                f"choose from {self._POLICIES}"
            )
        self._policy = policy
        self._skip = None if skip is None else int(skip)

    @property
    def policy(self) -> str:
        """The skip-selection policy in force."""
        return self._policy

    def check_applicable(self, grid: Grid, num_disks: int) -> None:
        super().check_applicable(grid, num_disks)
        if grid.ndim != 2:
            raise SchemeNotApplicableError(
                f"cyclic declustering is 2-d only, got {grid.ndim}-d grid"
            )

    def skip_for(self, grid: Grid, num_disks: int) -> int:
        """The skip this scheme would use for the configuration."""
        self.check_applicable(grid, num_disks)
        if self._skip is not None:
            if num_disks > 1 and math.gcd(self._skip, num_disks) != 1:
                raise SchemeError(
                    f"explicit skip {self._skip} is not coprime to "
                    f"M={num_disks}"
                )
            return self._skip % max(num_disks, 1)
        if self._policy == "rphm":
            return rphm_skip(num_disks)
        if self._policy == "gfib":
            return gfib_skip(num_disks)
        return exhaustive_skip(num_disks, grid)

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        skip = self.skip_for(grid, num_disks)
        return (int(coords[0]) + skip * int(coords[1])) % num_disks

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        skip = self.skip_for(grid, num_disks)
        return _cyclic_table(grid, num_disks, skip)

    def __repr__(self) -> str:
        return (
            f"CyclicScheme(policy={self._policy!r}, skip={self._skip})"
        )
