"""HCAM — Hilbert Curve Allocation Method — and its curve-swap ablations.

Faloutsos & Bhagwat (PDIS 1993): linearize the bucket grid along the
k-dimensional Hilbert curve and deal disks round-robin,

    disk(b) = rank_along_curve(b) mod M.

Because the Hilbert curve has strong locality (Jagadish, SIGMOD 1990),
buckets close in the grid are close on the curve, and round-robin dealing
then sends nearby buckets to different disks — the behaviour that makes HCAM
the strongest method on small range queries in the paper's experiments.

For grids that are not power-of-two hypercubes, the curve is computed in the
smallest enclosing hypercube and re-ranked over the cells that exist
(:func:`repro.sfc.ordering.curve_ranks`); on the paper's power-of-two grids
this is the identity.

:class:`ZOrderScheme` and :class:`GrayCodeScheme` are ablations of ours, not
paper methods: identical round-robin dealing along weaker-locality curves,
isolating the Hilbert curve's contribution (experiment X1 in DESIGN.md).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.grid import Grid
from repro.schemes.base import DeclusteringScheme
from repro.sfc.hilbert import hilbert_index
from repro.sfc.ordering import curve_ranks, enclosing_order
from repro.sfc.zorder import gray_index, morton_index

__all__ = [
    "GrayCodeScheme",
    "HCAMScheme",
    "ZOrderScheme",
]


class _CurveRoundRobinScheme(DeclusteringScheme):
    """Shared machinery: rank buckets along a curve, assign rank mod M."""

    #: (coords, order) -> curve position; set by subclasses.
    curve_fn = None

    def ranks(self, grid: Grid):
        """Rank of every bucket along this scheme's curve (grid-shaped array)."""
        return curve_ranks(grid, type(self).curve_fn)

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        coords = grid.validate_coords(coords)
        return int(self.ranks(grid)[coords]) % num_disks

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        # curve_ranks dispatches to the vectorized index transform
        # (hilbert_index_array & co) — whole-grid np.indices arithmetic.
        return self.ranks(grid) % num_disks


class HCAMScheme(_CurveRoundRobinScheme):
    """HCAM: disk = (Hilbert-curve rank of the bucket) mod M."""

    name = "hcam"
    curve_fn = staticmethod(hilbert_index)

    def curve_order(self, grid: Grid) -> int:
        """Order of the enclosing hypercube's Hilbert curve for this grid."""
        return enclosing_order(grid)


class ZOrderScheme(_CurveRoundRobinScheme):
    """Ablation: round-robin along the Z-order (Morton) curve."""

    name = "zorder"
    curve_fn = staticmethod(morton_index)


class GrayCodeScheme(_CurveRoundRobinScheme):
    """Ablation: round-robin along the Gray-code curve."""

    name = "gray"
    curve_fn = staticmethod(gray_index)
