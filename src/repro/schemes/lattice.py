"""k-dimensional lattice declustering: auto-tuned GDM coefficients.

The 2-d cyclic family (:mod:`repro.schemes.cyclic`) generalizes to any
dimensionality: fix the first coefficient to 1 and choose the rest,

    disk(<i_1, ..., i_k>) = (i_1 + c_2 i_2 + ... + c_k i_k) mod M,

with every ``c_j`` coprime to ``M``.  Good coefficient vectors spread
small cubes over many disks in every 2-d shadow of the grid
simultaneously — the k-d analogue of picking a good skip.

Policies:

* **power** (default, cheap): ``c_j = H^(j-1) mod M`` with ``H`` the
  golden-section skip of :func:`repro.schemes.cyclic.rphm_skip`, nudged
  to the nearest coprime value per coordinate.  Geometric progressions
  of a good skip give near-uniform lattices in all dimensions (the same
  principle as Korobov lattice rules in quasi-Monte Carlo).
* **exh** (expensive, strongest): exhaustively score coefficient vectors
  over the coprime set against small-cube workloads, with a combination
  budget to keep high dimensions tractable.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import SchemeError
from repro.core.grid import Grid
from repro.schemes.base import DeclusteringScheme
from repro.schemes.cyclic import coprime_skips, rphm_skip

__all__ = [
    "LatticeScheme",
    "exhaustive_coefficients",
    "power_coefficients",
]


def _nearest_coprime(value: int, num_disks: int) -> int:
    """The coprime-to-M value closest to ``value`` (mod M, nonzero)."""
    if num_disks == 1:
        return 0
    value %= num_disks
    candidates = coprime_skips(num_disks)
    return min(candidates, key=lambda c: (abs(c - value), c))


def power_coefficients(ndim: int, num_disks: int) -> Tuple[int, ...]:
    """Coefficient vector ``(1, H, H^2, ...)`` with coprime nudging."""
    if ndim < 1:
        raise SchemeError(f"need at least one dimension, got {ndim}")
    if num_disks == 1:
        return (0,) * ndim
    base = rphm_skip(num_disks)
    coefficients = [1]
    power = 1
    for _ in range(1, ndim):
        power = (power * base) % num_disks
        coefficients.append(_nearest_coprime(power, num_disks))
    return tuple(coefficients)


def exhaustive_coefficients(
    grid: Grid,
    num_disks: int,
    max_combinations: int = 4096,
) -> Tuple[int, ...]:
    """The best coefficient vector ``(1, c_2, ..., c_k)`` on small cubes.

    Scores each candidate by the summed mean RT of the side-2 and side-3
    cubes over all placements; ties break lexicographically.  When the
    full coprime product exceeds ``max_combinations``, candidates are
    thinned deterministically (every n-th combination), which keeps the
    search exact in 2-d/3-d and principled beyond.
    """
    from repro.core.cost import sliding_response_times

    if num_disks == 1:
        return (0,) * grid.ndim
    skips = coprime_skips(num_disks)
    combos = list(itertools.product(skips, repeat=grid.ndim - 1))
    if len(combos) > max_combinations:
        stride = math.ceil(len(combos) / max_combinations)
        combos = combos[::stride]
    shapes = [
        tuple(min(side, d) for d in grid.dims) for side in (2, 3)
    ]
    arrays = grid.coordinate_arrays()
    best = None
    best_cost = None
    for tail in combos:
        coefficients = (1,) + tail
        table = np.zeros(grid.dims, dtype=np.int64)
        for coefficient, axis in zip(coefficients, arrays):
            table += coefficient * axis
        allocation = DiskAllocation(grid, num_disks, table % num_disks)
        cost = sum(
            float(sliding_response_times(allocation, shape).mean())
            for shape in shapes
        )
        if best_cost is None or cost < best_cost - 1e-12:
            best_cost = cost
            best = coefficients
    return best


class LatticeScheme(DeclusteringScheme):
    """k-d lattice: disk = (i_1 + c_2 i_2 + ... + c_k i_k) mod M.

    Parameters
    ----------
    policy:
        ``"power"`` (default, closed-form) or ``"exh"`` (search).
    coefficients:
        Explicit coefficient vector overriding the policy (first entry
        conventionally 1; all entries must be coprime to ``M`` except on
        a single disk).
    """

    name = "lattice"

    _POLICIES = ("power", "exh")

    def __init__(
        self,
        policy: str = "power",
        coefficients: Optional[Sequence[int]] = None,
    ):
        if policy not in self._POLICIES:
            raise SchemeError(
                f"unknown lattice policy {policy!r}; "
                f"choose from {self._POLICIES}"
            )
        self._policy = policy
        self._coefficients = (
            None
            if coefficients is None
            else tuple(int(c) for c in coefficients)
        )

    @property
    def policy(self) -> str:
        """Coefficient-selection policy."""
        return self._policy

    def coefficients_for(
        self, grid: Grid, num_disks: int
    ) -> Tuple[int, ...]:
        """The coefficient vector used for this configuration."""
        self.check_applicable(grid, num_disks)
        if self._coefficients is not None:
            if len(self._coefficients) != grid.ndim:
                raise SchemeError(
                    f"{len(self._coefficients)} coefficients for a "
                    f"{grid.ndim}-d grid"
                )
            if num_disks > 1:
                for coefficient in self._coefficients:
                    if math.gcd(coefficient, num_disks) != 1:
                        raise SchemeError(
                            f"coefficient {coefficient} not coprime to "
                            f"M={num_disks}"
                        )
            return self._coefficients
        if self._policy == "power":
            return power_coefficients(grid.ndim, num_disks)
        return exhaustive_coefficients(grid, num_disks)

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        coefficients = self.coefficients_for(grid, num_disks)
        return sum(
            c * int(i) for c, i in zip(coefficients, coords)
        ) % num_disks

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        coefficients = self.coefficients_for(grid, num_disks)
        table = np.zeros(grid.dims, dtype=np.int64)
        for coefficient, axis in zip(
            coefficients, grid.coordinate_arrays()
        ):
            table += coefficient * axis
        return table % num_disks

    def __repr__(self) -> str:
        return (
            f"LatticeScheme(policy={self._policy!r}, "
            f"coefficients={self._coefficients})"
        )
