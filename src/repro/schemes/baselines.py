"""Baseline allocations: random and row-major round-robin.

Not methods from the paper's evaluation, but useful reference points:

* **Random** is the "no structure" baseline — storage is balanced only in
  expectation, and small queries routinely collide on a disk.  Any grid-aware
  method should beat it on worst-case response time.
* **Row-major round-robin** deals disks along row-major bucket order.  On a
  2-d grid with ``d_2 mod M != 0`` it behaves like a skewed modulo scheme;
  with ``d_2 mod M == 0`` every column of a row repeats the same disk
  pattern, which is pathological for queries tall in axis 0 — a useful
  cautionary ablation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.grid import Grid
from repro.schemes.base import DeclusteringScheme

__all__ = [
    "RandomScheme",
    "RoundRobinScheme",
]


class RandomScheme(DeclusteringScheme):
    """Seeded uniform-random bucket-to-disk assignment."""

    name = "random"

    def __init__(self, seed: Optional[int] = 0):
        self._seed = seed

    @property
    def seed(self) -> Optional[int]:
        """The PRNG seed; the allocation is deterministic given the seed."""
        return self._seed

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        coords = grid.validate_coords(coords)
        table = self._table(grid, num_disks)
        return int(table[coords])

    def _table(self, grid: Grid, num_disks: int) -> np.ndarray:
        rng = np.random.default_rng(self._seed)
        return rng.integers(0, num_disks, size=grid.dims, dtype=np.int64)

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        return self._table(grid, num_disks)

    def __repr__(self) -> str:
        return f"RandomScheme(seed={self._seed})"


class RoundRobinScheme(DeclusteringScheme):
    """Deal disks 0, 1, ..., M-1, 0, ... along row-major bucket order."""

    name = "roundrobin"

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        return grid.linear_index(coords) % num_disks

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        return (
            np.arange(grid.num_buckets, dtype=np.int64) % num_disks
        ).reshape(grid.dims)
