"""Workload-aware declustering: anneal a seed allocation to the workload.

The paper's conclusion made executable as a scheme: given (a sample of)
the queries a relation actually receives, start from a good fixed method
and locally optimize the bucket-to-disk map for exactly that workload.

The scheme is deterministic given its seed.  Storage balance of the seed
allocation is preserved (the optimizer only swaps assignments).  When no
workload is supplied, a default small-square workload is generated — the
region where fixed methods differ most.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import SchemeError
from repro.core.grid import Grid
from repro.core.query import RangeQuery, all_placements
from repro.optimize.annealing import AnnealingConfig, optimize_allocation
from repro.schemes.base import DeclusteringScheme

__all__ = ["WorkloadAwareScheme"]


class WorkloadAwareScheme(DeclusteringScheme):
    """Anneal a seed scheme's allocation against a query workload.

    Parameters
    ----------
    queries:
        The workload to optimize for.  ``None`` = all placements of the
        2x2 query (the canonical small-query region).
    seed_scheme:
        Registry name of the starting allocation (default ``"hcam"``).
    config:
        Annealing knobs (iterations, temperature, seed).
    """

    name = "workload-aware"

    # Each disk_of call re-anneals the full allocation; QA tooling samples.
    disk_of_is_expensive = True

    def __init__(
        self,
        queries: Optional[Sequence[RangeQuery]] = None,
        seed_scheme: str = "hcam",
        config: Optional[AnnealingConfig] = None,
    ):
        self._queries = None if queries is None else list(queries)
        self._seed_scheme = seed_scheme
        self._config = config or AnnealingConfig(iterations=4_000)

    @property
    def seed_scheme(self) -> str:
        """The scheme whose allocation seeds the optimization."""
        return self._seed_scheme

    def workload_for(self, grid: Grid) -> list:
        """The workload that will drive the optimization on ``grid``."""
        if self._queries is not None:
            return list(self._queries)
        shape = tuple(min(2, d) for d in grid.dims)
        return list(all_placements(grid, shape))

    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        coords = grid.validate_coords(coords)
        return self.allocate(grid, num_disks).disk_of(coords)

    def allocate(self, grid: Grid, num_disks: int) -> DiskAllocation:
        from repro.core.registry import get_scheme

        self.check_applicable(grid, num_disks)
        seed = get_scheme(self._seed_scheme)
        start = seed.allocate(grid, num_disks)
        workload = self.workload_for(grid)
        if not workload:
            raise SchemeError(
                f"empty optimization workload for grid {grid.dims}"
            )
        result = optimize_allocation(start, workload, self._config)
        return result.allocation

    def __repr__(self) -> str:
        return (
            f"WorkloadAwareScheme(seed_scheme={self._seed_scheme!r}, "
            f"queries={'default' if self._queries is None else len(self._queries)})"
        )
