"""Abstract base class shared by all declustering schemes.

A scheme is a *rule* for mapping bucket coordinates to disk ids.  It is
stateless with respect to any particular grid: calling
:meth:`DeclusteringScheme.allocate` materializes the rule over a grid into a
:class:`~repro.core.allocation.DiskAllocation` that the cost model evaluates.

Subclasses implement :meth:`disk_of` (per-bucket rule; always the reference
oracle) and, when the rule has a whole-grid array form, override
:meth:`disk_array` — the vectorized kernel :meth:`allocate` materializes
tables from.  The base :meth:`disk_array` falls back to the scalar
``disk_of`` loop, so a per-bucket rule alone is always enough.  Schemes
with preconditions (e.g. ECC needs ``M`` to be a power of two) raise
:class:`SchemeNotApplicableError` from :meth:`check_applicable`.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.exceptions import SchemeError
from repro.core.grid import Grid

__all__ = ["DeclusteringScheme", "block_coordinate_arrays"]


def block_coordinate_arrays(
    grid: Grid, start: int, stop: int
) -> List[np.ndarray]:
    """Coordinate arrays for the row-slab ``start:stop`` along axis 0.

    Same contract as ``grid.coordinate_arrays()`` restricted to buckets
    whose first coordinate lies in ``[start, stop)`` — axis-0 values are
    the *absolute* coordinates, so scheme rules evaluate unchanged on the
    slab.  This is what lets the chunked SAT builder materialize a
    beyond-RAM grid one slab at a time.
    """
    shape = (stop - start,) + grid.dims[1:]
    coords = list(np.indices(shape, dtype=np.int64))
    coords[0] += start
    return coords


class DeclusteringScheme(abc.ABC):
    """Base class for bucket-to-disk declustering rules.

    Attributes
    ----------
    name:
        Short identifier used in the registry, reports, and plots
        (e.g. ``"dm"``, ``"fx"``, ``"ecc"``, ``"hcam"``).
    """

    #: Registry identifier; subclasses must override.
    name: str = ""

    #: True when a single ``disk_of`` call is costly (e.g. it re-runs an
    #: optimizer); the QA contract checker then samples buckets instead of
    #: sweeping every one.
    disk_of_is_expensive: bool = False

    def check_applicable(self, grid: Grid, num_disks: int) -> None:
        """Raise :class:`SchemeNotApplicableError` if preconditions fail.

        The default accepts any positive disk count.
        """
        if num_disks <= 0:
            raise SchemeError(
                f"number of disks must be positive, got {num_disks}"
            )

    @abc.abstractmethod
    def disk_of(self, coords: Sequence[int], grid: Grid, num_disks: int) -> int:
        """Disk id for the bucket at ``coords`` (the scheme's defining rule)."""

    def disk_array(self, grid: Grid, num_disks: int) -> np.ndarray:
        """Disk id of *every* bucket as a grid-shaped integer array.

        Subclasses with a whole-grid form override this with vectorized
        ``np.indices``/``coordinate_arrays`` arithmetic; the base
        implementation is the scalar fallback — one ``disk_of`` call per
        bucket.  The QA contract checker (QA43x) asserts the two agree
        bucket for bucket for every registered scheme.
        """
        table = np.empty(grid.dims, dtype=np.int64)
        for coords in grid.iter_buckets():
            table[coords] = self.disk_of(coords, grid, num_disks)  # qa704: allow — scalar fallback by contract; fast schemes override disk_array
        return table

    def disk_array_block(
        self, grid: Grid, num_disks: int, start: int, stop: int
    ) -> np.ndarray:
        """Disk ids for buckets with first coordinate in ``[start, stop)``.

        Output shape ``(stop - start, d_2, ..., d_k)``.  The chunked SAT
        builder (:meth:`repro.core.sat.SummedAreaTable.build_chunked`)
        calls this slab by slab so a beyond-RAM grid never materializes
        whole.  The base implementation slices the full
        :meth:`disk_array` — correct for every scheme but not
        memory-bounded; schemes meant for beyond-RAM grids override it
        with :func:`block_coordinate_arrays` arithmetic.
        """
        if not 0 <= start <= stop <= grid.dims[0]:
            raise SchemeError(
                f"block [{start}, {stop}) outside axis-0 extent "
                f"{grid.dims[0]}"
            )
        return self.disk_array(grid, num_disks)[start:stop]

    def allocate(self, grid: Grid, num_disks: int) -> DiskAllocation:
        """Materialize the rule over ``grid`` into a full allocation table."""
        self.check_applicable(grid, num_disks)
        return DiskAllocation(
            grid, num_disks, self.disk_array(grid, num_disks)
        )

    def describe(self) -> str:
        """One-line human description (docstring first line by default)."""
        doc = (self.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
