"""Command-line interface: ``python -m repro`` / ``repro-decluster``.

Subcommands
-----------
``schemes``
    List registered declustering schemes.
``allocate``
    Materialize one scheme on a grid; print the table and load statistics.
``evaluate``
    Compare schemes on a query shape or area (mean RT over all placements).
``experiment``
    Run a paper experiment (E1, E2, E3, E4, E5, X1, or ``all``).
``theory``
    Strict-optimality tools: ``search`` (existence/impossibility per M) and
    ``table`` (the paper's Table 1).
``qa``
    Quality gate: repo-specific AST lint rules plus the scheme-contract
    checker; exits nonzero on findings outside the baseline.
``obs``
    Observability tools: ``obs summary`` renders the metrics/trace files
    an instrumented run exported (``experiment ... --trace FILE
    --metrics-out FILE --log-level LEVEL``).

Examples
--------
::

    python -m repro evaluate --grid 32x32 --disks 16 --shape 2x2
    python -m repro experiment E4 --quick
    python -m repro theory search --max-disks 7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.grid import Grid
from repro.core.registry import (
    PAPER_SCHEMES,
    available_schemes,
    get_scheme,
    scheme_label,
)

__all__ = [
    "build_parser",
    "main",
]


def _parse_dims(text: str) -> tuple:
    try:
        dims = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected AxBx... integers, got {text!r}"
        ) from None
    if not dims or any(d <= 0 for d in dims):
        raise argparse.ArgumentTypeError(
            f"extents must be positive integers, got {text!r}"
        )
    return dims


def _parse_schemes(text: str) -> List[str]:
    names = [part.strip() for part in text.split(",") if part.strip()]
    known = set(available_schemes())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown scheme(s) {unknown}; known: {sorted(known)}"
        )
    return names


def _cmd_schemes(_args) -> int:
    for name in available_schemes():
        scheme = get_scheme(name)
        print(f"{name:12s} {scheme_label(name):10s} {scheme.describe()}")
    return 0


def _cmd_allocate(args) -> int:
    grid = Grid(args.grid)
    scheme = get_scheme(args.scheme)
    allocation = scheme.allocate(grid, args.disks)
    loads = allocation.disk_loads()
    print(
        f"scheme={args.scheme} grid={grid.dims} disks={args.disks} "
        f"balanced={allocation.is_storage_balanced()} "
        f"loads min/max={loads.min()}/{loads.max()}"
    )
    if args.show:
        if grid.ndim != 2:
            print("(table display is 2-d only)")
        else:
            for row in allocation.table:
                print(" ".join(f"{int(d):>2d}" for d in row))
    if args.save is not None:
        from repro.io import save_allocation

        save_allocation(allocation, args.save)
        print(f"saved to {args.save}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.core.evaluator import SchemeEvaluator, rank_schemes

    grid = Grid(args.grid)
    evaluator = SchemeEvaluator(grid, args.disks, args.schemes)
    if args.shape is not None:
        results = evaluator.evaluate_shapes([args.shape])
        what = f"shape {args.shape}"
    elif args.area is not None:
        results = evaluator.evaluate_area(args.area)
        what = f"area {args.area} (all shapes)"
    else:
        print("evaluate: provide --shape or --area", file=sys.stderr)
        return 2
    print(
        f"grid={grid.dims} disks={args.disks} query {what} "
        f"(mean over all placements)"
    )
    for result in rank_schemes(results):
        print(
            f"  {result.label:10s} meanRT={result.mean_response_time:8.4f} "
            f"opt={result.mean_optimal:8.4f} "
            f"dev={result.mean_relative_deviation:+7.4f} "
            f"frac_opt={result.fraction_optimal:6.4f}"
        )
    return 0


def _setup_obs(args) -> None:
    """Apply the observability flags before an experiment run."""
    if getattr(args, "log_level", None):
        from repro.obs.log import configure_logging

        configure_logging(args.log_level)
    if getattr(args, "trace", None):
        from repro.obs.trace import global_tracer

        global_tracer().enable()


def _finish_obs(args) -> None:
    """Export the trace/metrics files an instrumented run produced."""
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    if trace_path:
        from repro.obs.trace import global_tracer

        count = global_tracer().write_jsonl(trace_path)
        print(
            f"trace: {count} span(s) written to {trace_path}",
            file=sys.stderr,
        )
    if metrics_path:
        from repro.core.cache import global_cache
        from repro.obs.metrics import global_registry

        registry = global_registry()
        global_cache().publish_metrics(registry)
        registry.write_json(metrics_path)
        print(f"metrics written to {metrics_path}", file=sys.stderr)


def _print_cache_stats(args) -> None:
    if getattr(args, "cache_stats", False):
        from repro.core.cache import CacheStats, global_cache
        from repro.obs.metrics import global_registry

        cache = global_cache()
        registry = global_registry()
        worker_pids = [
            pid
            for pid in registry.process_pids()
            if "cache.hits" in registry.process_counters(pid)
        ]
        if worker_pids:
            # Parallel run: the parent's counters alone would silently
            # omit all worker activity, so label and aggregate.
            def _stats_from(counters) -> CacheStats:
                return CacheStats(
                    hits=counters.get("cache.hits", 0),
                    misses=counters.get("cache.misses", 0),
                    evictions=counters.get("cache.evictions", 0),
                    entries=counters.get("cache.entries", 0),
                    maxsize=counters.get("cache.maxsize", 0),
                    shared_hits=counters.get("cache.shared_hits", 0),
                    publishes=counters.get("cache.publishes", 0),
                )

            cache.publish_metrics(registry)
            aggregate = _stats_from(registry.aggregate_counters())
            print(
                "aggregate (parent + "
                f"{len(worker_pids)} worker process(es)): "
                + aggregate.render(),
                file=sys.stderr,
            )
            for pid in worker_pids:
                worker = _stats_from(registry.process_counters(pid))
                print(
                    f"  worker pid {pid}: " + worker.render(),
                    file=sys.stderr,
                )
            print(
                "parent process: " + cache.stats().render(),
                file=sys.stderr,
            )
        else:
            print(cache.stats().render(), file=sys.stderr)
        for entry in cache.entry_report():
            dims = "x".join(str(d) for d in entry["dims"])
            engine = (
                f"engine={entry['engine_nbytes']}B"
                if entry["engine_built"]
                else "engine=unbuilt"
            )
            residency = "shared" if entry["shared"] else "private"
            resident = entry.get("resident_nbytes")
            footprint = (
                f"mapped={entry['mapped_nbytes']}B "
                f"resident="
                + (f"{resident}B" if resident is not None else "unknown")
            )
            kind = entry.get("kind", "table")
            print(
                f"  {entry['scheme']:10s} grid={dims} M={entry['num_disks']} "
                f"dtype={entry['table_dtype']} kind={kind} "
                f"table={entry['table_nbytes']}B {engine} {residency} "
                + footprint,
                file=sys.stderr,
            )


#: Default checkpoint location for ``experiment all --resume``.
DEFAULT_CHECKPOINT = ".repro-runner-checkpoint.pkl"


def _runner_kwargs(args) -> dict:
    """Self-healing options shared by every ``experiment`` invocation."""
    from repro.experiments.runner import DEFAULT_BACKOFF, DEFAULT_RETRIES

    checkpoint = args.checkpoint
    if checkpoint is None and args.resume:
        checkpoint = DEFAULT_CHECKPOINT
    return {
        "quick": args.quick,
        "workers": args.workers,
        "timeout": args.timeout,
        "retries": (
            DEFAULT_RETRIES if args.retries is None else args.retries
        ),
        "backoff": (
            DEFAULT_BACKOFF if args.backoff is None else args.backoff
        ),
        "checkpoint": checkpoint,
        "resume": args.resume,
    }


def _cmd_experiment(args) -> int:
    from repro.experiments import runner
    from repro.experiments.reporting import render_table
    from repro.experiments.runner import render_all, render_thm

    wanted = args.which.upper()
    if wanted == "DEGRADED":
        wanted = "X7"
    _setup_obs(args)
    if wanted == "X6":
        from repro.experiments import exp_growth

        rows = exp_growth.run(
            num_records=400 if args.quick else 1500,
            bucket_capacity=16,
        )
        print(exp_growth.render(rows))
        _finish_obs(args)
        return 0
    if wanted == "ALL":
        print(render_all(runner.run_all(**_runner_kwargs(args))))
        _finish_obs(args)
        _print_cache_stats(args)
        return 0
    results = runner.run_all(**_runner_kwargs(args))
    _finish_obs(args)
    key_map = {
        "E4": ("E4a", "E4b"),
        "X7": ("X7a", "X7b"),
        "THM": ("THM",),
    }
    keys = key_map.get(wanted, (wanted,))
    exportable = []
    for key in keys:
        if key not in results:
            print(
                f"unknown experiment {args.which!r}; "
                f"known: E1 E2 E3 E4 E5 X1 EPM X3 X4 X5 X6 X7 "
                f"degraded THM all",
                file=sys.stderr,
            )
            return 2
        result = results[key]
        if key == "THM":
            print(render_thm(result))
        elif key.startswith("E3"):
            print(render_table(result.result_2d))
            print()
            print(render_table(result.result_3d))
            exportable.extend([result.result_2d, result.result_3d])
        else:
            print(render_table(result))
            exportable.append(result)
        print()
    if args.csv is not None or args.json is not None:
        if not exportable:
            print(
                f"experiment {args.which!r} has no tabular series to "
                "export",
                file=sys.stderr,
            )
            return 2
        from repro.experiments.reporting import to_csv
        from repro.io import save_result

        for result in exportable:
            suffix = (
                "" if len(exportable) == 1
                else f".{result.experiment_id}"
            )
            if args.csv is not None:
                path = args.csv + suffix
                with open(path, "w") as stream:
                    stream.write(to_csv(result))
                print(f"csv written to {path}")
            if args.json is not None:
                path = args.json + suffix
                save_result(result, path)
                print(f"json written to {path}")
    _print_cache_stats(args)
    return 0


def _cmd_profile(args) -> int:
    from repro.analysis.render import render_allocation_profile

    grid = Grid(args.grid)
    scheme = get_scheme(args.scheme)
    allocation = scheme.allocate(grid, args.disks)
    shape = args.shape if args.shape is not None else tuple(
        min(2, d) for d in grid.dims
    )
    print(
        f"profile: scheme={args.scheme} grid={grid.dims} "
        f"disks={args.disks} shape={tuple(shape)}"
    )
    print(render_allocation_profile(allocation, shape))
    return 0


def _cmd_advise(args) -> int:
    from repro.analysis.advisor import advise, render_recommendations
    from repro.workloads.queries import (
        random_queries_of_shape,
        random_range_queries,
    )

    grid = Grid(args.grid)
    if args.trace is not None:
        from repro.io import load_queries

        queries = load_queries(args.trace)
        what = f"{len(queries)} queries from trace {args.trace}"
    elif args.shape is not None:
        queries = random_queries_of_shape(
            grid, args.shape, args.count, seed=args.seed
        )
        what = f"{args.count} random placements of {args.shape}"
    else:
        queries = random_range_queries(
            grid, args.count, max_side=args.max_side, seed=args.seed
        )
        what = (
            f"{args.count} random range queries "
            f"(max side {args.max_side})"
        )
    recommendations = advise(
        grid,
        args.disks,
        queries,
        include_workload_aware=args.workload_aware,
    )
    from repro.workloads.summary import (
        render_summary,
        summarize_workload,
    )

    print(
        f"advisor: grid={grid.dims} disks={args.disks} workload={what}"
    )
    print(
        "workload: "
        + render_summary(
            summarize_workload(grid, queries, args.disks), args.disks
        )
    )
    print(render_recommendations(recommendations))
    if args.matrix:
        from repro.analysis.compare import (
            dominance_matrix,
            render_dominance,
        )

        # The matrix re-materializes schemes by name, which would give
        # the annealed scheme its *default* workload — exclude it.
        matrix = dominance_matrix(
            grid,
            args.disks,
            queries,
            schemes=[
                r.scheme
                for r in recommendations
                if r.scheme != "workload-aware"
            ],
        )
        print()
        print(render_dominance(matrix))
    best = recommendations[0]
    print(
        f"\nrecommendation: {best.label} "
        f"(mean RT {best.mean_response_time:.4f}, "
        f"{best.mean_relative_deviation:+.2%} vs optimal)"
    )
    return 0


def _cmd_obs(args) -> int:
    from repro.obs.summary import render_summary_files

    if args.metrics is None and args.trace is None:
        print(
            "obs summary: provide --metrics and/or --trace",
            file=sys.stderr,
        )
        return 2
    try:
        print(
            render_summary_files(
                metrics_path=args.metrics, trace_path=args.trace
            )
        )
    except ValueError as exc:
        print(f"obs summary: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_qa(args) -> int:
    from repro.qa.runner import run_from_args

    return run_from_args(args)


def _cmd_doctor(args) -> int:
    import json as _json

    from repro.doctor import run_doctor

    report = run_doctor(
        sat_dir=args.sat_dir,
        native_cache=args.native_cache,
        level=args.verify,
        gc=args.gc,
    )
    if args.json:
        print(_json.dumps(report.to_json(), indent=1, sort_keys=True))
    else:
        print(report.render())
    return report.exit_code()


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.server import ServeConfig, parse_spec, run_server

    config = ServeConfig(
        specs=[parse_spec(text) for text in args.spec],
        unix_path=args.unix,
        host=args.host,
        port=args.port,
        workers=args.serve_workers,
        max_inflight=args.max_inflight,
        drain_timeout=args.drain_timeout,
        metrics_out=args.metrics_out,
        backend=args.backend,
    )
    if args.log_level:
        from repro.obs.log import configure_logging

        configure_logging(level=args.log_level)
    asyncio.run(run_server(config))
    return 0


def _cmd_serve_bench(args) -> int:
    import json as _json
    import os as _os
    import signal as _signal
    import subprocess
    import tempfile
    import time as _time

    from repro.serve.bench import BenchConfig, run_bench
    from repro.serve.client import ServeClient

    spec_text = args.spec
    scheme, grid_text, disks_text = spec_text.split(":")
    dims = tuple(int(d) for d in grid_text.lower().split("x"))
    config = BenchConfig(
        scheme=scheme,
        dims=dims,
        num_disks=int(disks_text),
        batch=args.batch,
        duration=args.duration,
        concurrency=args.concurrency,
        seed=args.seed,
        unix_path=args.connect,
        out=args.out,
    )
    daemon = None
    socket_path = args.connect
    try:
        if socket_path is None:
            # Spawn our own daemon on a private unix socket; small
            # max_inflight so the overload burst demonstrably sheds.
            socket_path = tempfile.mktemp(
                prefix="repro-serve-bench-", suffix=".sock"
            )
            config.unix_path = socket_path
            command = [
                sys.executable, "-m", "repro.cli", "serve",
                "--spec", spec_text,
                "--unix", socket_path,
                "--serve-workers", str(args.serve_workers),
                "--max-inflight", str(args.max_inflight),
            ]
            if args.backend:
                command[3:3] = ["--backend", args.backend]
            daemon = subprocess.Popen(command)
            deadline = _time.monotonic() + 120
            while _time.monotonic() < deadline:
                if daemon.poll() is not None:
                    print(
                        "error: serve daemon exited "
                        f"{daemon.returncode} during startup",
                        file=sys.stderr,
                    )
                    return 1
                if _os.path.exists(socket_path):
                    try:
                        with ServeClient(unix_path=socket_path) as c:
                            c.ping()
                        break
                    except OSError:
                        pass
                _time.sleep(0.1)
            else:
                print("error: serve daemon never came up", file=sys.stderr)
                return 1
        result = run_bench(config)
        measured = result["measured"]
        print(
            f"serve-bench: {measured['queries']} queries in "
            f"{measured['elapsed_s']:.2f}s = "
            f"{measured['queries_per_second']:,.0f} q/s  "
            f"p50={measured['latency_p50_s'] * 1e3:.2f}ms "
            f"p99={measured['latency_p99_s'] * 1e3:.2f}ms  "
            f"shed={result['burst']['shed_counter_delta']}"
        )
        if args.out:
            print(f"results written to {args.out}")
        else:
            print(_json.dumps(result, indent=2))
        return 0
    finally:
        if daemon is not None:
            daemon.send_signal(_signal.SIGTERM)
            try:
                daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.wait(timeout=10)
        if (
            args.connect is None
            and socket_path
            and _os.path.exists(socket_path)
        ):
            _os.unlink(socket_path)


def _cmd_theory(args) -> int:
    from repro.theory.conditions import render_table as render_conditions
    from repro.theory.search import impossibility_frontier

    if args.theory_command == "table":
        print(render_conditions())
        return 0
    results = impossibility_frontier(
        max_disks=args.max_disks, grid_side=args.side
    )
    for num_disks, result in enumerate(results, start=1):
        side = args.side if args.side else max(num_disks, 2)
        verdict = "exists" if result.exists else "impossible"
        print(
            f"M={num_disks:2d} grid {side}x{side}: strictly optimal "
            f"declustering {verdict} ({result.nodes_explored} nodes)"
        )
        if result.exists and args.show and result.allocation is not None:
            for row in result.allocation.table:
                print("   " + " ".join(f"{int(d):>2d}" for d in row))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-decluster",
        description=(
            "Grid-based multi-attribute declustering: methods, theory, and "
            "the ICDE'94 evaluation"
        ),
    )
    parser.add_argument(
        "--backend",
        default=None,
        help=(
            "kernel backend for hot loops: numpy, cnative, numba, or "
            "native (numba with cnative fallback); default: $REPRO_BACKEND "
            "or numpy"
        ),
    )
    parser.add_argument(
        "--sat-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "working-memory byte budget for chunked summed-area-table "
            "builds (default: $REPRO_SAT_BUDGET or 256 MiB)"
        ),
    )
    parser.add_argument(
        "--build-workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "processes for phase 1 of chunked summed-area-table builds "
            "(1 = serial; output is byte-identical either way; note the "
            "transient footprint is N x the per-tile working set; "
            "default: $REPRO_BUILD_WORKERS or 1)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schemes", help="list declustering schemes")

    p_alloc = sub.add_parser("allocate", help="materialize one allocation")
    p_alloc.add_argument("--grid", type=_parse_dims, default=(8, 8))
    p_alloc.add_argument("--disks", type=int, default=4)
    p_alloc.add_argument("--scheme", default="hcam")
    p_alloc.add_argument(
        "--show", action="store_true", help="print the disk-id table"
    )
    p_alloc.add_argument(
        "--save", default=None, help="write the allocation to a JSON file"
    )

    p_eval = sub.add_parser("evaluate", help="compare schemes on queries")
    p_eval.add_argument("--grid", type=_parse_dims, default=(32, 32))
    p_eval.add_argument("--disks", type=int, default=16)
    p_eval.add_argument(
        "--schemes", type=_parse_schemes, default=list(PAPER_SCHEMES)
    )
    p_eval.add_argument("--shape", type=_parse_dims, default=None)
    p_eval.add_argument("--area", type=int, default=None)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument(
        "which",
        help=(
            "E1, E2, E3, E4, E5, X1, EPM, X3, X4, X5, X7 (alias: "
            "'degraded'), THM, or 'all'"
        ),
    )
    p_exp.add_argument(
        "--quick", action="store_true", help="small fast configuration"
    )
    p_exp.add_argument(
        "--csv", default=None, help="also write the series as CSV"
    )
    p_exp.add_argument(
        "--json", default=None, help="also write the series as JSON"
    )
    p_exp.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan independent experiments over N worker processes",
    )
    p_exp.add_argument(
        "--timeout",
        type=float,
        default=None,
        help=(
            "seconds an experiment may run before its worker counts as "
            "hung and is retried (needs --workers)"
        ),
    )
    p_exp.add_argument(
        "--retries",
        type=int,
        default=None,
        help="extra attempts per failing experiment (default: 2)",
    )
    p_exp.add_argument(
        "--backoff",
        type=float,
        default=None,
        help="base delay between retry rounds, doubling per round "
        "(default: 0.5s)",
    )
    p_exp.add_argument(
        "--checkpoint",
        default=None,
        help=(
            "persist completed experiments to this file as they finish "
            f"(default with --resume: {DEFAULT_CHECKPOINT})"
        ),
    )
    p_exp.add_argument(
        "--resume",
        action="store_true",
        help=(
            "load the checkpoint and skip already-completed experiments; "
            "also enables checkpointing for the rest of the run"
        ),
    )
    p_exp.add_argument(
        "--cache-stats",
        action="store_true",
        help=(
            "print allocation-cache counters plus per-entry table dtype, "
            "sizes, and shared-memory residency to stderr; with "
            "--workers, worker activity is aggregated and labeled"
        ),
    )
    p_exp.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "record spans (experiments, engine, shared memory, retries) "
            "and write them as JSONL to FILE"
        ),
    )
    p_exp.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write counters and histograms (aggregated across worker "
            "processes) as JSON to FILE"
        ),
    )
    p_exp.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help=(
            "emit library logs (shm teardown, runner retries, ...) to "
            "stderr at LEVEL (debug, info, warning, ...)"
        ),
    )

    p_profile = sub.add_parser(
        "profile", help="diagnose one scheme's allocation"
    )
    p_profile.add_argument("--grid", type=_parse_dims, default=(16, 16))
    p_profile.add_argument("--disks", type=int, default=8)
    p_profile.add_argument("--scheme", default="hcam")
    p_profile.add_argument(
        "--shape",
        type=_parse_dims,
        default=None,
        help="query shape to profile (default: 2x2...)",
    )

    p_advise = sub.add_parser(
        "advise", help="recommend a scheme for a workload"
    )
    p_advise.add_argument("--grid", type=_parse_dims, default=(32, 32))
    p_advise.add_argument("--disks", type=int, default=16)
    p_advise.add_argument(
        "--shape",
        type=_parse_dims,
        default=None,
        help="fixed query shape (default: mixed random ranges)",
    )
    p_advise.add_argument("--count", type=int, default=200)
    p_advise.add_argument("--max-side", type=int, default=8)
    p_advise.add_argument("--seed", type=int, default=0)
    p_advise.add_argument(
        "--trace",
        default=None,
        help="JSONL query trace to advise on (overrides --shape)",
    )
    p_advise.add_argument(
        "--workload-aware",
        action="store_true",
        help="also anneal a workload-specific allocation",
    )
    p_advise.add_argument(
        "--matrix",
        action="store_true",
        help="also print the pairwise dominance matrix",
    )

    from repro.qa.runner import add_qa_arguments

    p_qa = sub.add_parser(
        "qa", help="run the lint + scheme-contract quality gate"
    )
    add_qa_arguments(p_qa)

    p_obs = sub.add_parser(
        "obs", help="observability: summarize trace/metrics exports"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_summary = obs_sub.add_parser(
        "summary",
        help="render a run's --metrics-out / --trace files",
    )
    p_obs_summary.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="metrics JSON written by --metrics-out",
    )
    p_obs_summary.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="span JSONL written by --trace",
    )

    p_doctor = sub.add_parser(
        "doctor",
        help=(
            "scan SAT/native/shm artifacts for corruption and "
            "crash leftovers; --gc cleans them up"
        ),
    )
    p_doctor.add_argument(
        "--sat-dir",
        default=None,
        metavar="DIR",
        help="SAT spill directory (default: $REPRO_SAT_DIR or tempdir)",
    )
    p_doctor.add_argument(
        "--native-cache",
        default=None,
        metavar="DIR",
        help=(
            "compiled-kernel cache directory "
            "(default: $REPRO_NATIVE_CACHE or the per-user temp cache)"
        ),
    )
    p_doctor.add_argument(
        "--verify",
        default="full",
        choices=("header", "full"),
        help="verification depth for the scan (default: full)",
    )
    p_doctor.add_argument(
        "--gc",
        action="store_true",
        help="remove corrupt artifacts, crash leftovers, stray shm",
    )
    p_doctor.add_argument(
        "--json",
        action="store_true",
        help="machine-readable report",
    )

    p_serve = sub.add_parser(
        "serve",
        help=(
            "run the declustering daemon: preload schemes once, answer "
            "disk_of/batch/degraded-plan queries over a socket"
        ),
    )
    p_serve.add_argument(
        "--spec",
        action="append",
        required=True,
        metavar="SCHEME:GRID:M",
        help="preload this triple, e.g. ecc:16x16:8 (repeatable)",
    )
    p_serve.add_argument(
        "--unix", default=None, metavar="PATH", help="unix socket path"
    )
    p_serve.add_argument(
        "--host", default=None, help="TCP bind host (with --port)"
    )
    p_serve.add_argument(
        "--port", type=int, default=0, help="TCP bind port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--serve-workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "worker processes computing batches off shared memory "
            "(0 = in-process thread pool)"
        ),
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help=(
            "batch requests in flight before the server sheds to the "
            "scalar path (answers stay byte-identical)"
        ),
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="grace period for in-flight requests on SIGTERM",
    )
    p_serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write serve counters/latency histograms as JSON at drain",
    )
    p_serve.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="emit server logs to stderr at LEVEL",
    )

    p_serve_bench = sub.add_parser(
        "serve-bench",
        help=(
            "closed-loop load generator against the serve daemon "
            "(spawns one unless --connect)"
        ),
    )
    p_serve_bench.add_argument(
        "--spec",
        default="ecc:16x16:8",
        metavar="SCHEME:GRID:M",
        help="triple to load-test (default: ecc:16x16:8)",
    )
    p_serve_bench.add_argument(
        "--connect",
        default=None,
        metavar="PATH",
        help="bench an already-running daemon on this unix socket",
    )
    p_serve_bench.add_argument(
        "--duration", type=float, default=5.0, help="measured seconds"
    )
    p_serve_bench.add_argument(
        "--batch", type=int, default=1024, help="queries per request"
    )
    p_serve_bench.add_argument(
        "--concurrency", type=int, default=2, help="closed-loop connections"
    )
    p_serve_bench.add_argument(
        "--serve-workers",
        type=int,
        default=0,
        help="worker processes for the spawned daemon",
    )
    p_serve_bench.add_argument(
        "--max-inflight",
        type=int,
        default=2,
        help="spawned daemon's admission bound (small = shedding visible)",
    )
    p_serve_bench.add_argument(
        "--seed", type=int, default=2024, help="request-pool RNG seed"
    )
    p_serve_bench.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write p50/p99/throughput JSON here",
    )

    p_theory = sub.add_parser("theory", help="strict-optimality tools")
    theory_sub = p_theory.add_subparsers(
        dest="theory_command", required=True
    )
    p_search = theory_sub.add_parser(
        "search", help="existence search per disk count"
    )
    p_search.add_argument("--max-disks", type=int, default=7)
    p_search.add_argument(
        "--side", type=int, default=None, help="grid side (default: M)"
    )
    p_search.add_argument(
        "--show", action="store_true", help="print found allocations"
    )
    theory_sub.add_parser("table", help="print the paper's Table 1")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (bad configurations, inapplicable schemes, malformed
    files) are reported as one-line messages with exit code 1 instead of
    tracebacks; genuine bugs still raise.
    """
    from repro.core.exceptions import DeclusteringError

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.sat_budget is not None:
        import os

        from repro.core.sat import BYTE_BUDGET_ENV

        if args.sat_budget <= 0:
            print("error: --sat-budget must be positive", file=sys.stderr)
            return 1
        # Env rather than plumbing: worker-pool initializers re-read it,
        # so the budget survives into spawned processes.
        os.environ[BYTE_BUDGET_ENV] = str(args.sat_budget)
    if args.build_workers is not None:
        import os

        from repro.core.sat import BUILD_WORKERS_ENV

        if args.build_workers < 1:
            print(
                "error: --build-workers must be >= 1", file=sys.stderr
            )
            return 1
        os.environ[BUILD_WORKERS_ENV] = str(args.build_workers)
    handlers = {
        "schemes": _cmd_schemes,
        "allocate": _cmd_allocate,
        "evaluate": _cmd_evaluate,
        "experiment": _cmd_experiment,
        "profile": _cmd_profile,
        "advise": _cmd_advise,
        "theory": _cmd_theory,
        "qa": _cmd_qa,
        "obs": _cmd_obs,
        "doctor": _cmd_doctor,
        "serve": _cmd_serve,
        "serve-bench": _cmd_serve_bench,
    }
    try:
        if args.backend is not None:
            from repro.core.backends import set_backend

            # Eager: an unknown/unavailable backend fails here with a
            # one-line error instead of mid-experiment.
            set_backend(args.backend)
        return handlers[args.command](args)
    except DeclusteringError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
