"""A multi-relation declustered database over one shared disk pool.

The paper's closing recommendation is system-level: "parallel database
systems must support a number of declustering methods" and pick per
relation using its query profile.  This module is that system layer: a
:class:`DeclusteredDatabase` holds named relations (each a
:class:`~repro.gridfile.file.DeclusteredGridFile` with its *own* scheme)
on one pool of ``M`` disks, routes value-range queries by relation name,
and reports pool-wide storage and heat balance.

:meth:`DeclusteredDatabase.auto_place` runs the advisor per relation on a
supplied workload sample — the end-to-end realization of the paper's
conclusion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import GridFileError, WorkloadError
from repro.core.query import RangeQuery
from repro.gridfile.file import DeclusteredGridFile, QueryExecution
from repro.workloads.datasets import Dataset

__all__ = ["DeclusteredDatabase"]


class DeclusteredDatabase:
    """Named relations declustered over one shared pool of disks."""

    def __init__(self, num_disks: int):
        if num_disks <= 0:
            raise GridFileError(
                f"disk-pool size must be positive, got {num_disks}"
            )
        self._num_disks = int(num_disks)
        self._relations: Dict[str, DeclusteredGridFile] = {}

    @property
    def num_disks(self) -> int:
        """Size of the shared disk pool."""
        return self._num_disks

    @property
    def relation_names(self) -> List[str]:
        """Registered relation names, insertion order."""
        return list(self._relations)

    def relation(self, name: str) -> DeclusteredGridFile:
        """The named relation's grid file."""
        try:
            return self._relations[name]
        except KeyError:
            raise GridFileError(
                f"unknown relation {name!r}; have {self.relation_names}"
            ) from None

    def create_relation(
        self,
        name: str,
        dataset: Dataset,
        dims: Sequence[int],
        scheme: str = "hcam",
        partitioning: str = "equi-width",
    ) -> DeclusteredGridFile:
        """Load a dataset as a new relation under the given scheme."""
        if not name:
            raise GridFileError("relation name must be non-empty")
        if name in self._relations:
            raise GridFileError(f"relation {name!r} already exists")
        gridfile = DeclusteredGridFile.from_dataset(
            dataset,
            dims=dims,
            num_disks=self._num_disks,
            scheme=scheme,
            partitioning=partitioning,
        )
        self._relations[name] = gridfile
        return gridfile

    def drop_relation(self, name: str) -> None:
        """Remove a relation from the catalog."""
        if name not in self._relations:
            raise GridFileError(f"unknown relation {name!r}")
        del self._relations[name]

    def replace_scheme(self, name: str, scheme: str) -> None:
        """Re-decluster one relation under a different method.

        Rebuilds the relation's allocation in place (same partitioning,
        same records) — the repartition a real system would perform as a
        background reorganization.
        """
        from repro.core.registry import get_scheme

        old = self.relation(name)
        allocation = get_scheme(scheme).allocate(
            old.grid, self._num_disks
        )
        self._relations[name] = DeclusteredGridFile(
            old.partitioners, allocation, old.dataset
        )

    def execute(
        self,
        name: str,
        value_ranges: Sequence[Tuple[float, float]],
    ) -> QueryExecution:
        """Run a value-range query against one relation."""
        gridfile = self.relation(name)
        return gridfile.execute(gridfile.range_query(value_ranges))

    # -- pool-wide views ------------------------------------------------

    def storage_per_disk(self) -> np.ndarray:
        """Total records per disk across every relation."""
        loads = np.zeros(self._num_disks, dtype=np.int64)
        for gridfile in self._relations.values():
            loads += gridfile.records_per_disk()
        return loads

    def pool_heat(
        self,
        workload: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    ) -> np.ndarray:
        """Bucket reads per disk for a mixed multi-relation workload.

        ``workload`` entries are ``(relation_name, value_ranges)``.
        """
        if not workload:
            raise WorkloadError("pool workload contains no queries")
        heat = np.zeros(self._num_disks, dtype=np.int64)
        from repro.core.cost import buckets_per_disk

        for name, value_ranges in workload:
            gridfile = self.relation(name)
            query = gridfile.range_query(value_ranges)
            heat += buckets_per_disk(gridfile.allocation, query)
        return heat

    def auto_place(
        self,
        workloads: Dict[str, Sequence[RangeQuery]],
        candidates: Optional[Sequence[str]] = None,
        include_workload_aware: bool = False,
    ) -> Dict[str, str]:
        """Advise and apply the best scheme per relation.

        ``workloads`` maps relation name to a bucket-coordinate query
        sample for that relation.  Each relation is re-declustered under
        its advisor winner (with ``include_workload_aware`` the winner
        may be an annealed relation-specific allocation, installed
        directly); returns ``{relation: chosen_scheme}``.
        """
        from repro.analysis.advisor import advise

        chosen: Dict[str, str] = {}
        for name, queries in workloads.items():
            gridfile = self.relation(name)
            recommendations = advise(
                gridfile.grid,
                self._num_disks,
                list(queries),
                candidates=candidates,
                include_workload_aware=include_workload_aware,
            )
            best = recommendations[0]
            if best.scheme == "workload-aware":
                # Install the already-annealed allocation directly —
                # re-deriving by name would anneal the default workload.
                self._relations[name] = DeclusteredGridFile(
                    gridfile.partitioners,
                    best.allocation,
                    gridfile.dataset,
                )
            else:
                self.replace_scheme(name, best.scheme)
            chosen[name] = best.scheme
        return chosen

    def describe(self) -> str:
        """One line per relation plus the pool storage balance."""
        lines = [
            f"database over {self._num_disks} disks, "
            f"{len(self._relations)} relation(s):"
        ]
        for name, gridfile in self._relations.items():
            lines.append(
                f"  {name:16s} grid {gridfile.grid.dims} "
                f"({gridfile.num_records} records)"
            )
        loads = self.storage_per_disk()
        if loads.sum():
            lines.append(
                f"  pool records/disk min..max = "
                f"{loads.min()}..{loads.max()}"
            )
        return "\n".join(lines)
