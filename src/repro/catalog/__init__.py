"""Multi-relation catalog: one disk pool, per-relation declustering."""

from repro.catalog.database import DeclusteredDatabase

__all__ = ["DeclusteredDatabase"]
