"""The asyncio declustering daemon: preload once, serve forever.

Life of the server:

1. **Startup** — :func:`repro.core.shm.reap_stale_server_segments`
   collects orphans a crashed predecessor left behind, then a
   ``server_owned`` :class:`~repro.core.shm.SharedAllocationArena` is
   created (segment names carry this pid) and every configured
   ``(scheme, grid, M)`` spec is materialized **once** through
   :func:`~repro.core.cache.global_cache` — which simultaneously
   publishes the tables over the broker for the worker fleet to attach
   zero-copy.
2. **Serving** — a length-prefixed binary protocol
   (:mod:`repro.serve.protocol`) over a Unix socket or TCP.  Four
   request types: ``disk_of`` (answered inline off the resident table),
   ``batch_response_times`` (shipped to the worker fleet, or a
   thread-pool executor when ``workers=0``), ``degraded_plan`` (fault
   scenario → replication plan, computed on the executor), ``stats``.
3. **Admission control** — at most ``max_inflight`` batch requests may
   be in flight; excess batches are *shed* to the scalar per-query path
   computed inline (``serve.shed``).  Shedding trades batch-kernel
   throughput for bounded queueing — answers stay byte-identical
   because scalar and batch paths are certified equal (QA422).
4. **Drain** — SIGTERM/SIGINT stops accepting, lets in-flight requests
   complete (bounded by ``drain_timeout``), stops the fleet, unlinks
   every shared segment through the arena ledger (with the prefix-sweep
   fallback), and writes the metrics export if configured.

Observability: every request increments ``serve.requests``, records a
``serve.latency.<type>.seconds`` histogram observation, and (when
tracing is enabled) emits a span for its synchronous section — spans
never cross an ``await``, keeping the tracer's nesting stack sound
under connection interleaving.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.cache import global_cache
from repro.core.exceptions import (
    DeclusteringError,
    ProtocolError,
    ServeError,
)
from repro.core.grid import Grid
from repro.core.query import QueryBatch, RangeQuery
from repro.obs.log import get_logger
from repro.obs.metrics import global_registry
from repro.obs.trace import trace, trace_event
from repro.serve import protocol
from repro.serve.workers import WorkerFleet, compute_batch_response_times

_LOG = get_logger("repro.serve.server")

__all__ = [
    "DeclusterServer",
    "SchemeSpec",
    "ServeConfig",
    "parse_spec",
]

#: Default bound on concurrently in-flight batch requests.
DEFAULT_MAX_INFLIGHT = 8

#: Default seconds granted to in-flight requests at drain.
DEFAULT_DRAIN_TIMEOUT = 10.0


@dataclass(frozen=True)
class SchemeSpec:
    """One preloaded ``(scheme, grid, M)`` triple."""

    scheme: str
    dims: Tuple[int, ...]
    num_disks: int

    @property
    def key(self) -> Tuple[str, Tuple[int, ...], int]:
        return (self.scheme, self.dims, self.num_disks)

    def render(self) -> str:
        dims = "x".join(str(d) for d in self.dims)
        return f"{self.scheme}:{dims}:{self.num_disks}"


def parse_spec(text: str) -> SchemeSpec:
    """Parse ``scheme:DxD[xD...]:M`` (e.g. ``ecc:16x16:8``)."""
    parts = text.split(":")
    if len(parts) != 3:
        raise ServeError(
            f"bad spec {text!r}: expected scheme:GRID:M "
            "(e.g. ecc:16x16:8)"
        )
    scheme, grid_text, disks_text = parts
    try:
        dims = tuple(int(d) for d in grid_text.lower().split("x"))
        num_disks = int(disks_text)
    except ValueError:
        raise ServeError(
            f"bad spec {text!r}: grid must be like 16x16 and M an "
            "integer"
        )
    if not scheme or not dims or any(d <= 0 for d in dims):
        raise ServeError(f"bad spec {text!r}")
    if num_disks <= 0:
        raise ServeError(f"bad spec {text!r}: M must be positive")
    return SchemeSpec(scheme=scheme, dims=dims, num_disks=num_disks)


@dataclass
class ServeConfig:
    """Everything the daemon needs to start."""

    specs: List[SchemeSpec]
    unix_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    workers: int = 0
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT
    metrics_out: Optional[str] = None
    backend: Optional[str] = None
    #: Skip the shared-memory arena (workers=0 single-process setups
    #: and tests that must not touch /dev/shm).
    use_shm: bool = True

    def __post_init__(self) -> None:
        if not self.specs:
            raise ServeError("serve needs at least one --spec")
        if self.unix_path is None and self.host is None:
            raise ServeError("serve needs --unix PATH or --host/--port")
        if self.max_inflight <= 0:
            raise ServeError(
                f"max_inflight must be positive: {self.max_inflight}"
            )


_REQUEST_NAMES = {
    protocol.REQUEST_PING: "ping",
    protocol.REQUEST_DISK_OF: "disk_of",
    protocol.REQUEST_BATCH_RT: "batch_response_times",
    protocol.REQUEST_DEGRADED_PLAN: "degraded_plan",
    protocol.REQUEST_STATS: "stats",
}


class DeclusterServer:
    """One daemon instance: preloaded engines, fleet, asyncio server."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self._engines: Dict[Tuple[str, Tuple[int, ...], int], Any] = {}
        self._allocations: Dict[
            Tuple[str, Tuple[int, ...], int], Any
        ] = {}
        self._arena = None
        self._fleet: Optional[WorkerFleet] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._inflight_batches = 0
        self._busy_requests = 0
        self._draining = False
        self._shutdown_event: Optional[asyncio.Event] = None
        self._idle_event: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._started = time.monotonic()
        self.bound_address: Optional[Tuple[str, int]] = None

    # -- startup ------------------------------------------------------

    def _preload(self) -> None:
        """Materialize every spec once; publish over the broker."""
        from repro.core.shm import (
            SharedAllocationArena,
            reap_stale_server_segments,
        )

        cache = global_cache()
        if self.config.use_shm and self.config.workers > 0:
            # Collect orphans of crashed predecessors before creating
            # segments of our own, so a restart loop cannot accrete.
            reap_stale_server_segments()
            self._arena = SharedAllocationArena.try_create(
                server_owned=True
            )
            if self._arena is not None:
                cache.set_broker(self._arena.broker)
        for spec in self.config.specs:
            grid = Grid(spec.dims)
            with trace("serve.preload", spec=spec.render()):
                allocation = cache.allocation(
                    spec.scheme, grid, spec.num_disks
                )
                engine = cache.engine(spec.scheme, grid, spec.num_disks)
            self._allocations[spec.key] = allocation
            self._engines[spec.key] = engine
            _LOG.info(
                "preloaded %s (%d buckets, SAT %d bytes)",
                spec.render(), grid.num_buckets, engine.nbytes(),
            )

    async def start(self) -> None:
        """Preload, start the fleet, and bind the listening socket."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        self._preload()
        if self.config.workers > 0:
            broker = (
                self._arena.broker if self._arena is not None else None
            )
            self._fleet = WorkerFleet(
                count=self.config.workers,
                broker=broker,
                backend=self.config.backend,
                resolve=self._resolve_from_pump,
            )
            self._fleet.start()
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=max(2, (os.cpu_count() or 1)),
                thread_name_prefix="serve-compute",
            )
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
            )
            sock = self._server.sockets[0]
            self.bound_address = sock.getsockname()[:2]
        _LOG.info(
            "serving %d spec(s) on %s (workers=%d, max_inflight=%d)",
            len(self.config.specs),
            self.config.unix_path or self.bound_address,
            self.config.workers,
            self.config.max_inflight,
        )

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (CLI path; needs main thread)."""
        import signal

        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._loop.add_signal_handler(signum, self.request_shutdown)

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent, loop-thread only)."""
        if self._draining:
            return
        self._draining = True
        _LOG.info(
            "drain requested: %d request(s) in flight",
            self._busy_requests,
        )
        if self._server is not None:
            self._server.close()
        assert self._shutdown_event is not None
        self._shutdown_event.set()

    async def serve_until_shutdown(self) -> None:
        """Run until a drain is requested, then tear down in order."""
        assert self._shutdown_event is not None
        await self._shutdown_event.wait()
        assert self._server is not None
        await self._server.wait_closed()
        # Let in-flight requests finish (bounded), then drop the
        # connections still open.
        assert self._idle_event is not None
        try:
            await asyncio.wait_for(
                self._idle_event.wait(),
                timeout=self.config.drain_timeout,
            )
        except asyncio.TimeoutError:
            _LOG.warning(
                "drain timeout: %d request(s) abandoned",
                self._busy_requests,
            )
            global_registry().inc("serve.drain_timeouts")
        for writer in list(self._connections):
            writer.close()
        self.teardown()

    def teardown(self) -> None:
        """Stop the fleet, unlink shm, export metrics (idempotent)."""
        if self._fleet is not None:
            self._fleet.stop()
            self._fleet = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._arena is not None:
            global_cache().set_broker(None)
            self._arena.close()
            self._arena = None
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()
        if self.config.metrics_out:
            registry = global_registry()
            global_cache().publish_metrics(registry)
            registry.write_json(self.config.metrics_out)
            _LOG.info(
                "metrics written to %s", self.config.metrics_out
            )

    # -- request plumbing ---------------------------------------------

    def _resolve_from_pump(
        self, task_id: int, ok: bool, payload: Any
    ) -> None:
        """Fleet result-pump callback (runs on the pump thread)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(
                self._complete_task, task_id, ok, payload
            )
        except RuntimeError:
            # Loop shut down between the check and the call: the
            # pending future was already cancelled by teardown.
            pass

    def _complete_task(self, task_id: int, ok: bool, payload: Any) -> None:
        future = self._pending.pop(task_id, None)
        if future is not None and not future.done():
            future.set_result((ok, payload))

    def _enter_request(self) -> None:
        self._busy_requests += 1
        assert self._idle_event is not None
        self._idle_event.clear()

    def _exit_request(self) -> None:
        self._busy_requests -= 1
        if self._busy_requests == 0:
            assert self._idle_event is not None
            self._idle_event.set()

    async def _handle_connection(self, reader, writer) -> None:
        registry = global_registry()
        registry.inc("serve.connections")
        self._connections.add(writer)
        try:
            while not self._draining:
                try:
                    frame = await protocol.read_frame(reader)
                except ProtocolError as exc:
                    # Answer what we can, then close: after a framing
                    # violation the stream offsets are untrustworthy.
                    registry.inc("serve.protocol_errors")
                    try:
                        writer.write(
                            protocol.encode_error(
                                "ProtocolError", str(exc)
                            )
                        )
                        await writer.drain()
                    except (ConnectionError, OSError) as write_exc:
                        _LOG.debug(
                            "error response not delivered: %r",
                            write_exc,
                        )
                    return
                if frame is None:
                    return
                kind, header, body = frame
                self._enter_request()
                try:
                    response = await self._dispatch(kind, header, body)
                finally:
                    self._exit_request()
                try:
                    writer.write(response)
                    await writer.drain()
                except (ConnectionError, OSError) as exc:
                    _LOG.debug("response write failed: %r", exc)
                    return
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError) as exc:
                _LOG.debug("connection close: %r", exc)

    async def _dispatch(
        self, kind: int, header: Dict[str, Any], body: bytes
    ) -> bytes:
        registry = global_registry()
        name = _REQUEST_NAMES.get(kind)
        registry.inc("serve.requests")
        started = time.perf_counter()
        try:
            if name is None:
                registry.inc("serve.errors")
                return protocol.encode_error(
                    "ProtocolError",
                    f"unknown request kind 0x{kind:02x}",
                )
            handler = getattr(self, f"_req_{name}")
            response = await handler(header, body)
            return response
        except ProtocolError as exc:
            registry.inc("serve.errors")
            return protocol.encode_error("ProtocolError", str(exc))
        except DeclusteringError as exc:
            registry.inc("serve.errors")
            return protocol.encode_error(type(exc).__name__, str(exc))
        finally:
            latency = time.perf_counter() - started
            if name is not None:
                registry.observe(
                    f"serve.latency.{name}.seconds", latency
                )
                trace_event(
                    "serve.request", request=name, latency_s=latency
                )

    # -- request handlers ---------------------------------------------

    def _spec_engine(self, header: Dict[str, Any]):
        key = self._spec_key(header)
        engine = self._engines.get(key)
        if engine is None:
            raise ServeError(
                f"no preloaded spec matches {key[0]}:"
                f"{'x'.join(str(d) for d in key[1])}:{key[2]} — "
                "start the server with a --spec for it"
            )
        return key, engine

    @staticmethod
    def _spec_key(header: Dict[str, Any]):
        try:
            scheme = str(header["scheme"])
            dims = tuple(int(d) for d in header["dims"])
            num_disks = int(header["num_disks"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"header missing/invalid scheme/dims/num_disks: {exc}"
            )
        return (scheme, dims, num_disks)

    async def _req_ping(
        self, header: Dict[str, Any], body: bytes
    ) -> bytes:
        return protocol.encode_frame(
            protocol.RESPONSE_OK,
            {"version": protocol.PROTOCOL_VERSION, "pid": os.getpid()},
        )

    async def _req_disk_of(
        self, header: Dict[str, Any], body: bytes
    ) -> bytes:
        key, _engine = self._spec_engine(header)
        allocation = self._allocations[key]
        dims = key[1]
        count = len(body) // (8 * len(dims))
        with trace("serve.disk_of", count=count):
            coords = protocol.array_from_bytes(
                body, (count, len(dims))
            )
            dims_arr = np.asarray(dims, dtype=np.int64)
            if coords.size and (
                (coords < 0).any() or (coords >= dims_arr).any()
            ):
                raise ProtocolError(
                    "disk_of coordinates outside the grid"
                )
            disks = allocation.table[
                tuple(coords.T)
            ].astype(np.int64)
        return protocol.encode_frame(
            protocol.RESPONSE_OK,
            {"count": int(count)},
            protocol.array_to_bytes(disks),
        )

    def _decode_bounds(
        self, header: Dict[str, Any], body: bytes, dims: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Split a batch body into validated inclusive (lower, upper)."""
        try:
            count = int(header["count"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"header missing/invalid count: {exc}")
        ndim = len(dims)
        half = count * ndim * 8
        if len(body) != 2 * half:
            raise ProtocolError(
                f"batch body of {len(body)} bytes does not hold two "
                f"int64 ({count}, {ndim}) arrays"
            )
        lower = protocol.array_from_bytes(body[:half], (count, ndim))
        upper = protocol.array_from_bytes(body[half:], (count, ndim))
        if count and ((lower < 0).any() or (lower > upper).any()):
            raise ProtocolError(
                "batch bounds must satisfy 0 <= lower <= upper"
            )
        return lower, upper

    @staticmethod
    def _clip_bounds(
        lower: np.ndarray, upper: np.ndarray, dims: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Mirrors QueryBatch.from_queries exactly, so wire-decoded
        # bounds produce the same clipped arrays — and therefore
        # byte-identical response times — as the in-process path.
        dims_arr = np.asarray(dims, dtype=np.int64)
        lo = np.minimum(lower, dims_arr)
        hi = np.maximum(np.minimum(upper + 1, dims_arr), lo)
        return lo, hi

    async def _req_batch_response_times(
        self, header: Dict[str, Any], body: bytes
    ) -> bytes:
        key, engine = self._spec_engine(header)
        scheme, dims, num_disks = key
        lower, upper = self._decode_bounds(header, body, dims)
        if self._inflight_batches >= self.config.max_inflight:
            # Overloaded: shed to the scalar per-query path, inline.
            # Slower per query but unqueued — and byte-identical to the
            # batch kernel by the QA422 equivalence contract.
            times = self._shed_scalar(key, lower, upper)
            return protocol.encode_frame(
                protocol.RESPONSE_OK,
                {"count": int(times.shape[0]), "shed": True},
                protocol.array_to_bytes(times),
            )
        lo, hi = self._clip_bounds(lower, upper, dims)
        self._inflight_batches += 1
        try:
            if self._fleet is not None:
                times = await self._batch_via_fleet(
                    scheme, dims, num_disks, lo, hi
                )
            else:
                assert self._executor is not None and self._loop
                times = await self._loop.run_in_executor(
                    self._executor,
                    engine.batch_response_times,
                    QueryBatch(lo, hi, dims),
                )
        finally:
            self._inflight_batches -= 1
        return protocol.encode_frame(
            protocol.RESPONSE_OK,
            {"count": int(times.shape[0]), "shed": False},
            protocol.array_to_bytes(times),
        )

    def _shed_scalar(
        self,
        key: Tuple[str, Tuple[int, ...], int],
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> np.ndarray:
        from repro.core.cost import response_time

        global_registry().inc("serve.shed")
        allocation = self._allocations[key]
        with trace("serve.shed_scalar", count=int(lower.shape[0])):
            times = np.empty(lower.shape[0], dtype=np.int64)
            for index in range(lower.shape[0]):
                query = RangeQuery(
                    tuple(int(c) for c in lower[index]),
                    tuple(int(c) for c in upper[index]),
                )
                times[index] = response_time(allocation, query)
        return times

    async def _batch_via_fleet(
        self,
        scheme: str,
        dims: Tuple[int, ...],
        num_disks: int,
        lo: np.ndarray,
        hi: np.ndarray,
    ) -> np.ndarray:
        assert self._fleet is not None and self._loop is not None
        future = self._loop.create_future()
        task_id = self._fleet.submit(scheme, dims, num_disks, lo, hi)
        self._pending[task_id] = future
        ok, payload = await future
        if not ok:
            raise ServeError(f"worker failed the batch: {payload}")
        return np.frombuffer(payload, dtype=np.int64)

    async def _req_degraded_plan(
        self, header: Dict[str, Any], body: bytes
    ) -> bytes:
        key, _engine = self._spec_engine(header)
        allocation = self._allocations[key]
        try:
            lower = tuple(int(c) for c in header["lower"])
            upper = tuple(int(c) for c in header["upper"])
            failed = tuple(int(d) for d in header.get("failed", ()))
            method = str(header.get("method", "flow"))
            offset = int(header.get("offset", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"degraded_plan header invalid: {exc}"
            )

        def _plan():
            from repro.faults.models import FailStop, FaultScenario
            from repro.replication.allocation import chained_replication
            from repro.replication.planner import plan_query

            replicated = chained_replication(allocation, offset=offset)
            scenario = None
            if failed:
                scenario = FaultScenario(
                    key[2], [FailStop(failed)]
                )
            with trace(
                "serve.degraded_plan",
                method=method,
                failed=len(failed),
            ):
                return plan_query(
                    replicated,
                    RangeQuery(lower, upper),
                    method=method,
                    scenario=scenario,
                )

        if self._executor is not None and self._loop is not None:
            plan = await self._loop.run_in_executor(
                self._executor, _plan
            )
        else:
            plan = _plan()
        return protocol.encode_frame(
            protocol.RESPONSE_OK,
            {
                "response_time": int(plan.response_time),
                "completion_time": float(plan.completion_time),
                "num_lost": int(plan.num_lost),
                "loads": [int(load) for load in plan.loads],
            },
        )

    async def _req_stats(
        self, header: Dict[str, Any], body: bytes
    ) -> bytes:
        registry = global_registry()
        counters = registry.aggregate_counters()
        return protocol.encode_frame(
            protocol.RESPONSE_OK,
            {
                "version": protocol.PROTOCOL_VERSION,
                "pid": os.getpid(),
                "uptime_s": time.monotonic() - self._started,
                "draining": self._draining,
                "inflight": self._busy_requests,
                "max_inflight": self.config.max_inflight,
                "workers": (
                    self._fleet.pids() if self._fleet is not None else []
                ),
                "specs": [
                    spec.render() for spec in self.config.specs
                ],
                "counters": {
                    name: int(value)
                    for name, value in sorted(counters.items())
                    if name.startswith(("serve.", "shm.", "cache."))
                },
            },
        )


async def run_server(config: ServeConfig) -> None:
    """CLI entry: start, install signal handlers, serve, drain."""
    server = DeclusterServer(config)
    await server.start()
    server.install_signal_handlers()
    # Readiness marker for supervisors tailing stderr: printed only
    # after the socket is bound and every spec is preloaded.
    print(
        f"serve: ready pid={os.getpid()} "
        f"addr={config.unix_path or server.bound_address}",
        flush=True,
    )
    await server.serve_until_shutdown()
