"""Clients for the serve daemon: blocking and asyncio flavors.

:class:`ServeClient` is the blocking client used by the CLI, the test
suite, and the bench load generator's per-connection threads; it speaks
the :mod:`repro.serve.protocol` frames over a plain socket.
:class:`AsyncServeClient` is the asyncio counterpart for callers
already inside an event loop.

Both convert :data:`~repro.serve.protocol.RESPONSE_ERROR` frames into
raised :class:`~repro.core.exceptions.ServeError` /
:class:`~repro.core.exceptions.ProtocolError`, so callers handle server
failures the same way as local library failures.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import ProtocolError, ServeError
from repro.serve import protocol

__all__ = ["AsyncServeClient", "ServeClient"]


def _raise_for_error(kind: int, header: Dict[str, Any]) -> None:
    if kind != protocol.RESPONSE_ERROR:
        return
    error = str(header.get("error", "ServeError"))
    message = str(header.get("message", "server reported an error"))
    if error == "ProtocolError":
        raise ProtocolError(message)
    raise ServeError(f"{error}: {message}")


def _batch_request_parts(
    scheme: str,
    dims: Sequence[int],
    num_disks: int,
    lower: np.ndarray,
    upper: np.ndarray,
) -> Tuple[Dict[str, Any], bytes]:
    lower = np.ascontiguousarray(lower, dtype=np.int64)
    upper = np.ascontiguousarray(upper, dtype=np.int64)
    if lower.shape != upper.shape or lower.ndim != 2:
        raise ServeError(
            f"lower/upper must be matching (N, k) arrays, got "
            f"{lower.shape} and {upper.shape}"
        )
    header = {
        "scheme": scheme,
        "dims": [int(d) for d in dims],
        "num_disks": int(num_disks),
        "count": int(lower.shape[0]),
    }
    return header, lower.tobytes() + upper.tobytes()


class ServeClient:
    """Blocking client over a Unix or TCP socket.

    Usable as a context manager; one instance holds one connection and
    is **not** thread-safe — give each thread its own client.
    """

    def __init__(
        self,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        timeout: Optional[float] = 30.0,
    ):
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        elif host is not None:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        else:
            raise ServeError("ServeClient needs unix_path or host/port")

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- low-level ----------------------------------------------------

    def raw_request(
        self, data: bytes
    ) -> Optional[Tuple[int, Dict[str, Any], bytes]]:
        """Send pre-encoded bytes, read one response frame (fuzz hook)."""
        self._sock.sendall(data)
        return protocol.recv_frame(self._sock)

    def request(
        self,
        kind: int,
        header: Optional[Dict[str, Any]] = None,
        body: bytes = b"",
    ) -> Tuple[Dict[str, Any], bytes]:
        """One request/response exchange; raises on typed errors."""
        frame = self.raw_request(protocol.encode_frame(kind, header, body))
        if frame is None:
            raise ServeError("server closed the connection")
        response_kind, response_header, response_body = frame
        _raise_for_error(response_kind, response_header)
        return response_header, response_body

    # -- request types ------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        header, _body = self.request(protocol.REQUEST_PING)
        return header

    def stats(self) -> Dict[str, Any]:
        header, _body = self.request(protocol.REQUEST_STATS)
        return header

    def disk_of(
        self,
        scheme: str,
        dims: Sequence[int],
        num_disks: int,
        coords: np.ndarray,
    ) -> np.ndarray:
        coords = np.ascontiguousarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != len(dims):
            raise ServeError(
                f"coords must be (N, {len(dims)}), got {coords.shape}"
            )
        header, body = self.request(
            protocol.REQUEST_DISK_OF,
            {
                "scheme": scheme,
                "dims": [int(d) for d in dims],
                "num_disks": int(num_disks),
            },
            coords.tobytes(),
        )
        return protocol.array_from_bytes(body, (int(header["count"]),))

    def batch_response_times(
        self,
        scheme: str,
        dims: Sequence[int],
        num_disks: int,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> Tuple[np.ndarray, bool]:
        """Response times for inclusive (lower, upper) query bounds.

        Returns ``(times, shed)`` — ``shed`` reports whether the server
        answered on the overload (scalar) path.
        """
        header, body = _batch_request_parts(
            scheme, dims, num_disks, lower, upper
        )
        response_header, response_body = self.request(
            protocol.REQUEST_BATCH_RT, header, body
        )
        times = protocol.array_from_bytes(
            response_body, (int(response_header["count"]),)
        )
        return times, bool(response_header.get("shed", False))

    def degraded_plan(
        self,
        scheme: str,
        dims: Sequence[int],
        num_disks: int,
        lower: Sequence[int],
        upper: Sequence[int],
        failed: Sequence[int] = (),
        method: str = "flow",
        offset: int = 1,
    ) -> Dict[str, Any]:
        header, _body = self.request(
            protocol.REQUEST_DEGRADED_PLAN,
            {
                "scheme": scheme,
                "dims": [int(d) for d in dims],
                "num_disks": int(num_disks),
                "lower": [int(c) for c in lower],
                "upper": [int(c) for c in upper],
                "failed": [int(d) for d in failed],
                "method": method,
                "offset": int(offset),
            },
        )
        return header


class AsyncServeClient:
    """Asyncio client; create with :meth:`connect`."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(
        cls,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
    ) -> "AsyncServeClient":
        import asyncio

        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(unix_path)
        elif host is not None:
            reader, writer = await asyncio.open_connection(host, port)
        else:
            raise ServeError(
                "AsyncServeClient needs unix_path or host/port"
            )
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def request(
        self,
        kind: int,
        header: Optional[Dict[str, Any]] = None,
        body: bytes = b"",
    ) -> Tuple[Dict[str, Any], bytes]:
        self._writer.write(protocol.encode_frame(kind, header, body))
        await self._writer.drain()
        frame = await protocol.read_frame(self._reader)
        if frame is None:
            raise ServeError("server closed the connection")
        response_kind, response_header, response_body = frame
        _raise_for_error(response_kind, response_header)
        return response_header, response_body

    async def ping(self) -> Dict[str, Any]:
        header, _body = await self.request(protocol.REQUEST_PING)
        return header

    async def stats(self) -> Dict[str, Any]:
        header, _body = await self.request(protocol.REQUEST_STATS)
        return header

    async def batch_response_times(
        self,
        scheme: str,
        dims: Sequence[int],
        num_disks: int,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> Tuple[np.ndarray, bool]:
        header, body = _batch_request_parts(
            scheme, dims, num_disks, lower, upper
        )
        response_header, response_body = await self.request(
            protocol.REQUEST_BATCH_RT, header, body
        )
        times = protocol.array_from_bytes(
            response_body, (int(response_header["count"]),)
        )
        return times, bool(response_header.get("shed", False))
