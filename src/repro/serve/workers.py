"""Spawn-process worker fleet answering batch response-time requests.

The daemon's heavy request type — ``batch_response_times`` — runs on a
fleet of spawn-context processes so the asyncio loop never blocks on a
kernel sweep.  Workers attach the preloaded allocations **zero-copy**
through the :class:`~repro.core.shm.SharedAllocationBroker` the server
published at startup: N workers share one resident table per triple,
and each builds its summed-area engine once, on first use.

Result plumbing is **one pipe per worker**, not a shared queue, and the
reason is a failure mode worth spelling out: a ``multiprocessing.Queue``
guards its write end with a semaphore shared by every producer, and a
worker SIGKILLed between its feeder thread's ``send_bytes`` and the
lock release leaves that semaphore held forever — one crashed worker
deadlocks result delivery from every *surviving* worker (easily
reproduced on one core, where the parent preempts the child's feeder
the instant the result arrives).  A pipe has exactly one writer, so a
dead worker can only break its own channel — the parent sees EOF on
that pipe and the others keep flowing.

Fault model.  Each worker owns a dedicated task queue (so the parent
always knows which tasks a dead worker held) and its own result pipe.
A monitor thread polls liveness: on a death the worker is counted
(``serve.worker_deaths``), respawned with fresh plumbing, and every
task the dead worker had outstanding is resubmitted.  Results are
deduplicated by task id, so a task that raced its worker's death (a
result flushed into the pipe before the crash plus a resubmitted copy)
resolves exactly once.

``count=0`` configures the in-process fallback: the server computes
batches on a thread-pool executor instead — same code path, no fleet.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import ServeError
from repro.core.grid import Grid
from repro.core.query import QueryBatch
from repro.obs.log import get_logger
from repro.obs.metrics import global_registry

_LOG = get_logger("repro.serve.workers")

__all__ = ["WorkerFleet", "compute_batch_response_times"]

#: Seconds between liveness sweeps of the monitor thread.
_MONITOR_INTERVAL = 0.2


def compute_batch_response_times(
    cache,
    scheme: str,
    dims: Tuple[int, ...],
    num_disks: int,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """One batch through the cached engine (server and workers share it)."""
    engine = cache.engine(scheme, Grid(dims), num_disks)
    return engine.batch_response_times(QueryBatch(lo, hi, dims))


def _worker_main(
    worker_index: int,
    backend: Optional[str],
    broker,
    task_queue,
    result_conn,
) -> None:
    """Fleet worker loop: attach shared tables, answer batches until None."""
    from repro.core.cache import global_cache

    if backend is not None:
        from repro.core.backends import set_backend

        set_backend(backend)
    cache = global_cache()
    if broker is not None:
        cache.set_broker(broker)
    while True:
        task = task_queue.get()
        if task is None:
            result_conn.close()
            return
        task_id, scheme, dims, num_disks, shape, lo_bytes, hi_bytes = task
        try:
            lo = np.frombuffer(lo_bytes, dtype=np.int64).reshape(shape)
            hi = np.frombuffer(hi_bytes, dtype=np.int64).reshape(shape)
            times = compute_batch_response_times(
                cache, scheme, tuple(dims), num_disks, lo, hi
            )
            result_conn.send((task_id, True, times.tobytes()))
        except Exception as exc:  # qa502: allow — worker survives a bad task; the error travels to the requester as a typed response
            result_conn.send(
                (task_id, False, f"{type(exc).__name__}: {exc}")
            )


class _Worker:
    """One fleet member: its process, task queue, and result pipe."""

    __slots__ = ("process", "task_queue", "result_recv", "outstanding")

    def __init__(self, process, task_queue, result_recv):
        self.process = process
        self.task_queue = task_queue
        self.result_recv = result_recv
        #: task_id -> the submitted task tuple, for resubmission.
        self.outstanding: Dict[int, tuple] = {}


class WorkerFleet:
    """Owner of the worker processes and their task/result plumbing.

    ``resolve`` is called from the result-pump thread as
    ``resolve(task_id, ok, payload)`` — the server installs a callback
    that completes the matching asyncio future loop-safely.
    """

    def __init__(
        self,
        count: int,
        broker=None,
        backend: Optional[str] = None,
        resolve: Optional[Callable[[int, bool, Any], None]] = None,
    ):
        self._count = int(count)
        self._broker = broker
        self._backend = backend
        self._resolve = resolve or (lambda task_id, ok, payload: None)
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: List[_Worker] = []
        #: Dead workers whose result pipes may still hold flushed
        #: results; the pump drains them to EOF and closes them (the
        #: monitor must NOT close a pipe the pump may be waiting on).
        self._retired: List[_Worker] = []
        self._task_ids = itertools.count()
        self._rr = itertools.count()
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        # Self-pipe so stop() can wake the pump out of connection.wait.
        self._wake_r, self._wake_w = os.pipe()
        self._pump: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        if self._count <= 0:
            return
        for index in range(self._count):
            self._workers.append(self._spawn(index))
        self._pump = threading.Thread(
            target=self._pump_results, name="serve-result-pump",
            daemon=True,
        )
        self._pump.start()
        self._monitor = threading.Thread(
            target=self._monitor_liveness, name="serve-worker-monitor",
            daemon=True,
        )
        self._monitor.start()

    def _spawn(self, index: int) -> _Worker:
        task_queue = self._ctx.Queue()
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                index,
                self._backend,
                self._broker,
                task_queue,
                result_send,
            ),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the send end: the child holds the
        # only writer, so its death reads as EOF on result_recv.
        result_send.close()
        return _Worker(process, task_queue, result_recv)

    def stop(self, timeout: float = 5.0) -> None:
        """Drain sentinels, join, terminate stragglers (idempotent)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass
        for worker in self._workers:
            try:
                worker.task_queue.put(None)
            except (OSError, ValueError) as exc:
                _LOG.debug("sentinel to dead worker queue: %r", exc)
        for worker in self._workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        if self._monitor is not None:
            self._monitor.join(timeout=1.0)
        if self._pump is not None:
            self._pump.join(timeout=2.0)
        for worker in self._workers + self._retired:
            if not worker.result_recv.closed:
                worker.result_recv.close()
        self._retired.clear()
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    @property
    def alive(self) -> bool:
        return bool(self._workers) and not self._stopping.is_set()

    def pids(self) -> List[int]:
        """Pids of the current fleet members (for stats / chaos tests)."""
        return [
            worker.process.pid
            for worker in self._workers
            if worker.process.pid is not None
        ]

    # -- submission ---------------------------------------------------

    def submit(
        self,
        scheme: str,
        dims: Sequence[int],
        num_disks: int,
        lo: np.ndarray,
        hi: np.ndarray,
    ) -> int:
        """Queue one batch on the least-loaded live worker; returns the id."""
        if not self.alive:
            raise ServeError("worker fleet is not running")
        task_id = next(self._task_ids)
        task = (
            task_id,
            scheme,
            tuple(int(d) for d in dims),
            int(num_disks),
            tuple(lo.shape),
            lo.tobytes(),
            hi.tobytes(),
        )
        with self._lock:
            start = next(self._rr)
            candidates = [
                self._workers[(start + offset) % len(self._workers)]
                for offset in range(len(self._workers))
            ]
            worker = min(
                (w for w in candidates if w.process.is_alive()),
                key=lambda w: len(w.outstanding),
                default=None,
            )
            if worker is None:
                raise ServeError("no live worker to accept the batch")
            worker.outstanding[task_id] = task
            worker.task_queue.put(task)
        return task_id

    # -- internal threads ---------------------------------------------

    def _pump_results(self) -> None:
        while not self._stopping.is_set():
            with self._lock:
                conns = [
                    worker.result_recv
                    for worker in self._workers + self._retired
                    if not worker.result_recv.closed
                ]
            try:
                ready = multiprocessing.connection.wait(
                    conns + [self._wake_r], timeout=1.0
                )
            except OSError:
                if self._stopping.is_set():
                    return  # wake pipe closed under us
                continue  # a conn closed mid-wait; rebuild the set
            for conn in ready:
                if conn == self._wake_r:
                    return  # stop() poked the self-pipe
                try:
                    task_id, ok, payload = conn.recv()
                except (EOFError, OSError):
                    # The worker died; drain what it flushed, then stop
                    # listening — the monitor respawns and resubmits.
                    conn.close()
                    continue
                with self._lock:
                    for worker in self._workers:
                        worker.outstanding.pop(task_id, None)
                self._resolve(task_id, ok, payload)

    def _monitor_liveness(self) -> None:
        while not self._stopping.wait(_MONITOR_INTERVAL):
            with self._lock:
                # Retired pipes the pump has drained can be dropped.
                self._retired = [
                    w for w in self._retired
                    if not w.result_recv.closed
                ]
                dead = [
                    (index, worker)
                    for index, worker in enumerate(self._workers)
                    if not worker.process.is_alive()
                ]
                if not dead:
                    continue
                for index, worker in dead:
                    orphans = list(worker.outstanding.values())
                    _LOG.warning(
                        "serve worker %d (pid %s) died with %d task(s) "
                        "outstanding; respawning",
                        index, worker.process.pid, len(orphans),
                    )
                    global_registry().inc("serve.worker_deaths")
                    try:
                        worker.task_queue.close()
                    except (OSError, ValueError) as exc:
                        _LOG.debug(
                            "dead worker queue close: %r", exc
                        )
                    self._retired.append(worker)
                    replacement = self._spawn(index)
                    # Resubmission is at-least-once: a result that raced
                    # the death is deduplicated by task id in the pump.
                    for task in orphans:
                        replacement.outstanding[task[0]] = task
                        replacement.task_queue.put(task)
                    self._workers[index] = replacement
