"""Wire format of the serve daemon: length-prefixed binary frames.

One frame is::

    u32  payload_len   (big-endian; everything after these 4 bytes)
    u8   kind          (request/response type)
    u32  header_len    (big-endian)
    ...  header        (header_len bytes of UTF-8 JSON)
    ...  body          (payload_len - 5 - header_len raw bytes)

The JSON header carries the small structured part of a message (scheme
name, grid dims, counts, error details); the body carries bulk numpy
data — int64 arrays in C order, exactly as ``ndarray.tobytes()`` emits
them — so a 1024-query batch costs one ~16 KiB read on either side and
zero per-element JSON.

Framing errors are *typed*, not hangs: a length prefix beyond
:data:`MAX_FRAME_BYTES` or a truncated frame raises
:class:`~repro.core.exceptions.ProtocolError` (the server answers what
it can and closes the connection); an unknown request kind is answered
with a :data:`RESPONSE_ERROR` frame on a connection that stays open.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.exceptions import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_BATCH_RT",
    "REQUEST_DEGRADED_PLAN",
    "REQUEST_DISK_OF",
    "REQUEST_PING",
    "REQUEST_STATS",
    "RESPONSE_ERROR",
    "RESPONSE_OK",
    "array_from_bytes",
    "array_to_bytes",
    "encode_error",
    "encode_frame",
    "parse_payload",
    "read_frame",
    "recv_frame",
]

#: Bumped when the frame layout changes incompatibly.  Carried in every
#: ``ping``/``stats`` response header so clients can refuse a mismatch.
PROTOCOL_VERSION = 1

#: Hard cap on one frame's payload.  Large enough for a ~1M-query batch
#: (two int64 (N, k) arrays), small enough that a hostile or corrupt
#: length prefix cannot make the server buffer gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")
_KIND_AND_HEADER = struct.Struct(">BI")
#: kind byte + header_len word — the fixed part of every payload.
_PAYLOAD_FIXED = _KIND_AND_HEADER.size

# Request kinds.
REQUEST_PING = 0x01
REQUEST_DISK_OF = 0x02
REQUEST_BATCH_RT = 0x03
REQUEST_DEGRADED_PLAN = 0x04
REQUEST_STATS = 0x05

# Response kinds.
RESPONSE_OK = 0x80
RESPONSE_ERROR = 0x81


def encode_frame(
    kind: int, header: Optional[Dict[str, Any]] = None, body: bytes = b""
) -> bytes:
    """Serialize one frame (used identically by server and clients)."""
    header_bytes = json.dumps(
        header or {}, separators=(",", ":")
    ).encode("utf-8")
    payload_len = _PAYLOAD_FIXED + len(header_bytes) + len(body)
    if payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return b"".join(
        (
            _LEN.pack(payload_len),
            _KIND_AND_HEADER.pack(kind, len(header_bytes)),
            header_bytes,
            body,
        )
    )


def encode_error(error: str, message: str) -> bytes:
    """A typed error response frame (connection-preserving)."""
    return encode_frame(
        RESPONSE_ERROR, {"error": error, "message": message}
    )


def parse_payload(
    payload: bytes,
) -> Tuple[int, Dict[str, Any], bytes]:
    """Split a received payload into (kind, header, body).

    Raises :class:`ProtocolError` on any structural violation — short
    payload, header length pointing past the end, or a header that is
    not a JSON object.
    """
    if len(payload) < _PAYLOAD_FIXED:
        raise ProtocolError(
            f"payload of {len(payload)} bytes is shorter than the "
            f"{_PAYLOAD_FIXED}-byte fixed part"
        )
    kind, header_len = _KIND_AND_HEADER.unpack_from(payload)
    body_start = _PAYLOAD_FIXED + header_len
    if body_start > len(payload):
        raise ProtocolError(
            f"header length {header_len} overruns the "
            f"{len(payload)}-byte payload"
        )
    try:
        header = json.loads(
            payload[_PAYLOAD_FIXED:body_start].decode("utf-8") or "{}"
        )
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"header is not valid JSON: {exc}")
    if not isinstance(header, dict):
        raise ProtocolError(
            f"header must be a JSON object, got {type(header).__name__}"
        )
    return kind, header, payload[body_start:]


async def read_frame(reader) -> Optional[Tuple[int, Dict[str, Any], bytes]]:
    """Read one frame from an ``asyncio.StreamReader``.

    Returns None on a clean EOF (the peer closed between frames);
    raises :class:`ProtocolError` for a truncated frame or an oversized
    length prefix.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-prefix ({len(exc.partial)}/4 bytes)"
        )
    (payload_len,) = _LEN.unpack(prefix)
    if payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"length prefix {payload_len} exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap"
        )
    try:
        payload = await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame "
            f"({len(exc.partial)}/{payload_len} bytes)"
        )
    return parse_payload(payload)


def recv_frame(sock) -> Optional[Tuple[int, Dict[str, Any], bytes]]:
    """Blocking counterpart of :func:`read_frame` for a plain socket."""

    def _recv_exactly(count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    prefix = _recv_exactly(_LEN.size)
    if not prefix:
        return None
    if len(prefix) < _LEN.size:
        raise ProtocolError(
            f"connection closed mid-prefix ({len(prefix)}/4 bytes)"
        )
    (payload_len,) = _LEN.unpack(prefix)
    if payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"length prefix {payload_len} exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap"
        )
    payload = _recv_exactly(payload_len)
    if len(payload) < payload_len:
        raise ProtocolError(
            f"connection closed mid-frame "
            f"({len(payload)}/{payload_len} bytes)"
        )
    return parse_payload(payload)


def array_to_bytes(array: np.ndarray) -> bytes:
    """An int64 array as raw C-order bytes (the body encoding)."""
    return np.ascontiguousarray(array, dtype=np.int64).tobytes()


def array_from_bytes(
    data: bytes, shape: Tuple[int, ...]
) -> np.ndarray:
    """Decode an int64 body back into ``shape``; typed error on mismatch."""
    expected = 8
    for extent in shape:
        expected *= int(extent)
    if len(data) != expected:
        raise ProtocolError(
            f"body of {len(data)} bytes does not match int64 array "
            f"of shape {tuple(shape)} ({expected} bytes)"
        )
    return np.frombuffer(data, dtype=np.int64).reshape(shape).copy()
