"""Declustering-as-a-service: the asyncio query-planning daemon.

The paper evaluates declustering schemes offline — batches of range
queries against a handful of ``(scheme, grid, M)`` triples.  This
package turns that batch engine into a long-running server:

* :mod:`repro.serve.protocol` — the length-prefixed binary wire format
  (JSON header + raw int64 numpy bodies) shared by server and clients;
* :mod:`repro.serve.server` — the asyncio daemon: preloads allocations
  through the :class:`~repro.core.cache.AllocationCache`, publishes
  them over the :class:`~repro.core.shm.SharedAllocationBroker` to a
  worker fleet, answers ``disk_of`` / ``batch_response_times`` /
  ``degraded_plan`` / ``stats`` requests with admission control and
  graceful drain;
* :mod:`repro.serve.workers` — the spawn-process fleet computing batch
  response times off zero-copy shared tables, with death detection,
  respawn, and task resubmission;
* :mod:`repro.serve.client` — sync and async clients;
* :mod:`repro.serve.bench` — the closed-loop load generator behind
  ``repro serve-bench`` (p50/p99, throughput, byte-identity audit).
"""

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    REQUEST_BATCH_RT,
    REQUEST_DEGRADED_PLAN,
    REQUEST_DISK_OF,
    REQUEST_PING,
    REQUEST_STATS,
    RESPONSE_ERROR,
    RESPONSE_OK,
    encode_frame,
)
from repro.serve.server import DeclusterServer, ServeConfig, SchemeSpec

__all__ = [
    "MAX_FRAME_BYTES",
    "REQUEST_BATCH_RT",
    "REQUEST_DEGRADED_PLAN",
    "REQUEST_DISK_OF",
    "REQUEST_PING",
    "REQUEST_STATS",
    "RESPONSE_ERROR",
    "RESPONSE_OK",
    "DeclusterServer",
    "SchemeSpec",
    "ServeConfig",
    "encode_frame",
]
