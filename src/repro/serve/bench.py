"""Closed-loop load generator for the serve daemon (``repro serve-bench``).

Measures what the paper's offline tables cannot: the *served* cost of a
batch — protocol framing, admission control, the worker hop — under a
steady closed loop.  Each of ``concurrency`` threads owns one
connection and fires pre-encoded batch requests back-to-back for
``duration`` seconds; per-request latencies aggregate into p50/p99 and
the query throughput divides total answered queries by wall time.

Two phases:

1. **measured** — ``concurrency`` connections, the numbers that land in
   ``BENCH_serve.json``;
2. **overload burst** — ``concurrency * 4`` connections for a short
   window, to demonstrate load shedding: the server's ``serve.shed``
   counter must move while every answer stays correct.

Correctness is not sampled, it is total: every distinct batch in the
request pool is verified byte-for-byte against the in-process engine
(the pool is small and reused, so the audit is cheap while every served
answer corresponds to an audited batch).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import ServeError
from repro.serve import protocol
from repro.serve.client import ServeClient

__all__ = ["BenchConfig", "run_bench"]

#: Distinct pre-generated batches in the request pool.
_POOL_SIZE = 32


@dataclass
class BenchConfig:
    """Knobs of one bench run."""

    scheme: str = "ecc"
    dims: Tuple[int, ...] = (16, 16)
    num_disks: int = 8
    batch: int = 1024
    duration: float = 5.0
    concurrency: int = 2
    burst_duration: float = 1.0
    burst_factor: int = 4
    seed: int = 2024
    unix_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    out: Optional[str] = None


def _make_pool(
    config: BenchConfig,
) -> List[Tuple[np.ndarray, np.ndarray, bytes]]:
    """Seeded random batches, each pre-encoded into its request frame."""
    rng = np.random.default_rng(config.seed)
    dims = np.asarray(config.dims, dtype=np.int64)
    pool = []
    for _ in range(_POOL_SIZE):
        lower = rng.integers(
            0, dims, size=(config.batch, len(config.dims))
        ).astype(np.int64)
        extent = rng.integers(
            0, np.maximum(dims // 2, 1), size=lower.shape
        )
        upper = np.minimum(lower + extent, dims - 1).astype(np.int64)
        frame = protocol.encode_frame(
            protocol.REQUEST_BATCH_RT,
            {
                "scheme": config.scheme,
                "dims": [int(d) for d in config.dims],
                "num_disks": config.num_disks,
                "count": config.batch,
            },
            lower.tobytes() + upper.tobytes(),
        )
        pool.append((lower, upper, frame))
    return pool


def _expected_times(
    config: BenchConfig,
    pool: List[Tuple[np.ndarray, np.ndarray, bytes]],
) -> List[np.ndarray]:
    """In-process ground truth for every batch in the pool."""
    from repro.core.cache import global_cache
    from repro.core.grid import Grid
    from repro.core.query import QueryBatch

    engine = global_cache().engine(
        config.scheme, Grid(config.dims), config.num_disks
    )
    expected = []
    for lower, upper, _frame in pool:
        dims_arr = np.asarray(config.dims, dtype=np.int64)
        lo = np.minimum(lower, dims_arr)
        hi = np.maximum(np.minimum(upper + 1, dims_arr), lo)
        expected.append(
            engine.batch_response_times(
                QueryBatch(lo, hi, config.dims)
            )
        )
    return expected


@dataclass
class _Shared:
    """State the connection threads mutate under the lock."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    latencies: List[float] = field(default_factory=list)
    requests: int = 0
    shed: int = 0
    mismatches: int = 0
    errors: List[str] = field(default_factory=list)


def _connection_loop(
    config: BenchConfig,
    pool: List[Tuple[np.ndarray, np.ndarray, bytes]],
    expected: List[np.ndarray],
    shared: _Shared,
    stop: threading.Event,
    record: bool,
    thread_index: int,
) -> None:
    try:
        client = ServeClient(
            unix_path=config.unix_path,
            host=config.host,
            port=config.port,
            timeout=60.0,
        )
    except OSError as exc:
        with shared.lock:
            shared.errors.append(f"connect: {exc!r}")
        return
    index = thread_index  # stagger the pool walk across threads
    try:
        while not stop.is_set():
            _lower, _upper, frame = pool[index % len(pool)]
            started = time.perf_counter()
            try:
                response = client.raw_request(frame)
            except (OSError, ServeError) as exc:
                with shared.lock:
                    shared.errors.append(f"request: {exc!r}")
                return
            latency = time.perf_counter() - started
            if response is None:
                return  # server drained mid-run
            kind, header, body = response
            if kind != protocol.RESPONSE_OK:
                with shared.lock:
                    shared.errors.append(
                        f"error response: {header.get('message')}"
                    )
                return
            times = np.frombuffer(body, dtype=np.int64)
            ok = np.array_equal(times, expected[index % len(pool)])
            with shared.lock:
                if record:
                    shared.latencies.append(latency)
                shared.requests += 1
                if header.get("shed"):
                    shared.shed += 1
                if not ok:
                    shared.mismatches += 1
            index += 1
    finally:
        client.close()


def _run_phase(
    config: BenchConfig,
    pool,
    expected,
    threads: int,
    duration: float,
    record: bool,
) -> Tuple[_Shared, float]:
    shared = _Shared()
    stop = threading.Event()
    workers = [
        threading.Thread(
            target=_connection_loop,
            args=(config, pool, expected, shared, stop, record, i),
            name=f"serve-bench-{i}",
            daemon=True,
        )
        for i in range(threads)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    time.sleep(duration)
    stop.set()
    for worker in workers:
        worker.join(timeout=30.0)
    elapsed = time.perf_counter() - started
    return shared, elapsed


def run_bench(config: BenchConfig) -> Dict[str, Any]:
    """Run both phases against a live daemon; return (and write) results."""
    pool = _make_pool(config)
    expected = _expected_times(config, pool)

    with ServeClient(
        unix_path=config.unix_path, host=config.host, port=config.port
    ) as probe:
        ping = probe.ping()
        if ping.get("version") != protocol.PROTOCOL_VERSION:
            raise ServeError(
                f"protocol mismatch: server v{ping.get('version')}, "
                f"client v{protocol.PROTOCOL_VERSION}"
            )
        before = probe.stats()["counters"]

    measured, elapsed = _run_phase(
        config, pool, expected,
        threads=config.concurrency,
        duration=config.duration,
        record=True,
    )
    burst, _burst_elapsed = _run_phase(
        config, pool, expected,
        threads=config.concurrency * config.burst_factor,
        duration=config.burst_duration,
        record=False,
    )

    with ServeClient(
        unix_path=config.unix_path, host=config.host, port=config.port
    ) as probe:
        after = probe.stats()["counters"]

    if measured.errors or burst.errors:
        raise ServeError(
            f"bench saw transport errors: "
            f"{(measured.errors + burst.errors)[:3]}"
        )
    mismatches = measured.mismatches + burst.mismatches
    if mismatches:
        raise ServeError(
            f"{mismatches} served batch(es) differed from the "
            "in-process engine — byte-identity violated"
        )

    latencies = np.asarray(measured.latencies, dtype=np.float64)
    queries = measured.requests * config.batch
    shed_counter = int(after.get("serve.shed", 0)) - int(
        before.get("serve.shed", 0)
    )
    result = {
        "schema": 1,
        "bench": "serve",
        "config": {
            "scheme": config.scheme,
            "dims": list(config.dims),
            "num_disks": config.num_disks,
            "batch": config.batch,
            "duration_s": config.duration,
            "concurrency": config.concurrency,
            "burst_concurrency": config.concurrency
            * config.burst_factor,
            "seed": config.seed,
        },
        "measured": {
            "requests": measured.requests,
            "queries": queries,
            "elapsed_s": elapsed,
            "queries_per_second": (
                queries / elapsed if elapsed > 0 else 0.0
            ),
            "latency_p50_s": (
                float(np.percentile(latencies, 50))
                if latencies.size else 0.0
            ),
            "latency_p99_s": (
                float(np.percentile(latencies, 99))
                if latencies.size else 0.0
            ),
            "latency_max_s": (
                float(latencies.max()) if latencies.size else 0.0
            ),
        },
        "burst": {
            "requests": burst.requests,
            "shed_responses": burst.shed + measured.shed,
            "shed_counter_delta": shed_counter,
        },
        "verified_batches": len(pool),
        "mismatches": 0,
    }
    if config.out:
        out_path = Path(config.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(result, indent=2) + "\n")
    return result
