"""Physical-disk timing model and parallel I/O stream simulation."""

from repro.simulation.disk import DiskModel
from repro.simulation.open_system import (
    OpenSystemReport,
    OpenSystemSimulator,
    poisson_arrivals,
    saturation_sweep,
)
from repro.simulation.parallel_io import (
    ParallelIOSimulator,
    StreamReport,
    query_time_ms,
)
from repro.simulation.scheduling import (
    balanced_order,
    compare_orderings,
    lpt_order,
)

__all__ = [
    "DiskModel",
    "query_time_ms",
    "ParallelIOSimulator",
    "StreamReport",
    "OpenSystemSimulator",
    "OpenSystemReport",
    "poisson_arrivals",
    "saturation_sweep",
    "lpt_order",
    "balanced_order",
    "compare_orderings",
]
