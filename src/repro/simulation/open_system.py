"""Open-system I/O simulation: queries arriving over time.

The closed-loop simulator (:mod:`repro.simulation.parallel_io`) submits
all queries at once; real systems see arrivals spread over time, and the
interesting regime is the transition from a lightly loaded system (query
latency = the paper's response time, in ms) to saturation (latency is
queueing-dominated).  This module provides an event-free but exact FIFO
model of that:

* queries carry arrival times; each disk serves its segments in arrival
  order, starting a segment no earlier than its query's arrival;
* a query completes when all its per-disk segments do.

The declustering insight it exposes: at *light* load the best scheme is
the one with the lowest response time (the paper's metric — HCAM/cyclic
win small queries), while near *saturation* per-query latency is queue-
depth-bound and spreading each query across more disks stops helping —
the multi-user effect of Ghandeharizadeh & DeWitt.  The crossover is
measured by experiment X5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.cost import buckets_per_disk
from repro.core.exceptions import SimulationError
from repro.core.query import RangeQuery
from repro.simulation.disk import DiskModel

__all__ = [
    "OpenSystemReport",
    "OpenSystemSimulator",
    "poisson_arrivals",
    "saturation_sweep",
]


def poisson_arrivals(
    count: int, rate_per_second: float, seed=0
) -> np.ndarray:
    """Arrival times (ms) of a Poisson stream, deterministic given seed."""
    if count <= 0:
        raise SimulationError(f"query count must be positive: {count}")
    if rate_per_second <= 0:
        raise SimulationError(
            f"arrival rate must be positive: {rate_per_second}"
        )
    rng = np.random.default_rng(seed)
    gaps_ms = rng.exponential(1000.0 / rate_per_second, size=count)
    return np.cumsum(gaps_ms)


@dataclass
class OpenSystemReport:
    """Per-query latencies and system-level figures of one run."""

    latencies_ms: List[float] = field(default_factory=list)
    makespan_ms: float = 0.0
    disk_busy_ms: List[float] = field(default_factory=list)

    @property
    def mean_latency_ms(self) -> float:
        """Average arrival-to-completion latency."""
        if not self.latencies_ms:
            raise SimulationError("no queries were simulated")
        return float(np.mean(self.latencies_ms))

    @property
    def p95_latency_ms(self) -> float:
        """95th-percentile latency."""
        if not self.latencies_ms:
            raise SimulationError("no queries were simulated")
        return float(np.percentile(self.latencies_ms, 95))

    @property
    def max_utilization(self) -> float:
        """Busy fraction of the most-loaded disk."""
        if self.makespan_ms <= 0:
            return 0.0
        return max(self.disk_busy_ms) / self.makespan_ms


class OpenSystemSimulator:
    """FIFO per-disk queues fed by timestamped query arrivals."""

    def __init__(
        self,
        allocation: DiskAllocation,
        disk: DiskModel = DiskModel(),
        sequential: bool = False,
    ):
        self._allocation = allocation
        self._disk = disk
        self._sequential = sequential

    def run(
        self,
        queries: Sequence[RangeQuery],
        arrivals_ms: Sequence[float],
    ) -> OpenSystemReport:
        """Simulate the arrival stream; queries must be arrival-ordered."""
        queries = list(queries)
        arrivals = np.asarray(arrivals_ms, dtype=np.float64)
        if not queries:
            raise SimulationError("query stream is empty")
        if arrivals.shape != (len(queries),):
            raise SimulationError(
                f"{len(queries)} queries but "
                f"{arrivals.shape[0] if arrivals.ndim == 1 else '?'} "
                "arrival times"
            )
        if np.any(np.diff(arrivals) < 0):
            raise SimulationError(
                "arrival times must be non-decreasing"
            )
        num_disks = self._allocation.num_disks
        free_at = np.zeros(num_disks, dtype=np.float64)
        busy = np.zeros(num_disks, dtype=np.float64)
        report = OpenSystemReport(disk_busy_ms=[0.0] * num_disks)
        for query, arrival in zip(queries, arrivals):
            counts = buckets_per_disk(self._allocation, query)
            finish = float(arrival)
            for disk_id, count in enumerate(counts):
                if count == 0:
                    continue
                service = self._disk.service_time_ms(
                    int(count), sequential=self._sequential
                )
                start = max(free_at[disk_id], arrival)
                free_at[disk_id] = start + service
                busy[disk_id] += service
                finish = max(finish, free_at[disk_id])
            report.latencies_ms.append(finish - float(arrival))
        report.makespan_ms = float(free_at.max())
        report.disk_busy_ms = busy.tolist()
        return report


def saturation_sweep(
    allocation: DiskAllocation,
    queries: Sequence[RangeQuery],
    rates_per_second: Sequence[float],
    disk: DiskModel = DiskModel(),
    seed=0,
) -> List[OpenSystemReport]:
    """Run the same query list at several Poisson arrival rates.

    One report per rate; the arrival process is re-drawn per rate with
    the same seed so the only varying factor is the load level.
    """
    queries = list(queries)
    if not queries:
        raise SimulationError("query stream is empty")
    reports = []
    simulator = OpenSystemSimulator(allocation, disk)
    for rate in rates_per_second:
        arrivals = poisson_arrivals(len(queries), rate, seed=seed)
        reports.append(simulator.run(queries, arrivals))
    return reports
