"""Batch scheduling: ordering a closed-loop batch of queries.

The closed-loop simulator showed that in a saturated batch, per-query
latency is queue-depth-bound (experiment X2's caveat).  Which *order* the
batch is issued in then matters: issuing all the long scans first starves
everything behind them, and issuing queries that hammer the same disk
back-to-back leaves other disks idle.  Two classic orderings:

* :func:`lpt_order` — longest processing time first: the standard
  makespan heuristic (big queries go first so their tails overlap the
  small queries' work, not extend past it).
* :func:`balanced_order` — greedy min-max: repeatedly issue the query
  that raises the current busiest accumulated disk load the least,
  keeping all queues level as the batch streams in.

:func:`compare_orderings` replays a batch through the closed-loop
simulator under each policy and reports makespan and mean latency — the
numbers an executor would use to pick a policy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.cost import buckets_per_disk
from repro.core.exceptions import SimulationError
from repro.core.query import RangeQuery
from repro.simulation.disk import DiskModel
from repro.simulation.parallel_io import ParallelIOSimulator

__all__ = [
    "balanced_order",
    "compare_orderings",
    "lpt_order",
]


def _per_disk_work(
    allocation: DiskAllocation,
    queries: Sequence[RangeQuery],
) -> np.ndarray:
    """Bucket counts per (query, disk), shape ``(num_queries, M)``."""
    if not queries:
        raise SimulationError("batch contains no queries")
    work = np.zeros(
        (len(queries), allocation.num_disks), dtype=np.int64
    )
    for i, query in enumerate(queries):
        work[i] = buckets_per_disk(allocation, query)
    return work


def lpt_order(
    allocation: DiskAllocation,
    queries: Sequence[RangeQuery],
) -> List[int]:
    """Issue order: total work descending (ties: original position)."""
    queries = list(queries)
    work = _per_disk_work(allocation, queries)
    totals = work.sum(axis=1)
    return sorted(
        range(len(queries)), key=lambda i: (-totals[i], i)
    )


def balanced_order(
    allocation: DiskAllocation,
    queries: Sequence[RangeQuery],
) -> List[int]:
    """Issue order: greedily minimize the busiest accumulated disk.

    At each step, among the remaining queries pick the one whose
    addition leaves the maximum per-disk accumulated load smallest
    (ties: larger query first, then original position).
    """
    queries = list(queries)
    work = _per_disk_work(allocation, queries)
    totals = work.sum(axis=1)
    accumulated = np.zeros(allocation.num_disks, dtype=np.int64)
    remaining = set(range(len(queries)))
    order: List[int] = []
    while remaining:
        best = min(
            remaining,
            key=lambda i: (
                int((accumulated + work[i]).max()),
                -int(totals[i]),
                i,
            ),
        )
        order.append(best)
        accumulated += work[best]
        remaining.remove(best)
    return order


def compare_orderings(
    allocation: DiskAllocation,
    queries: Sequence[RangeQuery],
    disk: DiskModel = DiskModel(),
) -> Dict[str, Dict[str, float]]:
    """Replay the batch under each policy; report makespan and latency.

    Policies: ``"arrival"`` (the given order), ``"lpt"``,
    ``"balanced"``.  Makespan differences come purely from ordering —
    total work is identical across policies.
    """
    queries = list(queries)
    if not queries:
        raise SimulationError("batch contains no queries")
    simulator = ParallelIOSimulator(allocation, disk)
    orders = {
        "arrival": list(range(len(queries))),
        "lpt": lpt_order(allocation, queries),
        "balanced": balanced_order(allocation, queries),
    }
    report = {}
    for policy, order in orders.items():
        result = simulator.run([queries[i] for i in order])
        report[policy] = {
            "makespan_ms": result.makespan_ms,
            "mean_latency_ms": result.mean_latency_ms,
            "max_latency_ms": result.max_latency_ms,
        }
    return report
