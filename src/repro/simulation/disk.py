"""Physical disk service-time model.

The paper counts parallel bucket reads; this substrate converts those counts
into milliseconds with an early-1990s disk model, so the library can also
report wall-clock-style figures and model the (second-order) effects the
unit-cost metric abstracts away: per-request seek and rotational latency
versus sequential transfer.

Service time for one bucket request:

    seek + rotational latency + bucket_size / transfer_rate

Reading ``n`` buckets of one query from the same disk pays the seek and
latency per bucket when the buckets are scattered (the declustering
worst case) or once when they happen to be laid out contiguously
(``sequential=True``) — both forms are exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import SimulationError

__all__ = ["DiskModel"]


@dataclass(frozen=True)
class DiskModel:
    """Timing parameters of one disk.

    Defaults approximate a circa-1993 SCSI drive (the hardware era of the
    paper): 12 ms average seek, 5400 RPM (5.6 ms average rotational
    latency), 2 MB/s sustained transfer, 8 KiB buckets... all tunable.

    Attributes
    ----------
    avg_seek_ms:
        Average seek time per random request, milliseconds.
    rotation_ms:
        Full-revolution time; average rotational latency is half of it.
    transfer_mb_per_s:
        Sustained media transfer rate, megabytes per second.
    bucket_kb:
        Bucket (allocation-unit) size, kilobytes.
    """

    avg_seek_ms: float = 12.0
    rotation_ms: float = 11.1
    transfer_mb_per_s: float = 2.0
    bucket_kb: float = 8.0

    def __post_init__(self) -> None:
        for field_name in (
            "avg_seek_ms",
            "rotation_ms",
            "transfer_mb_per_s",
            "bucket_kb",
        ):
            value = getattr(self, field_name)
            if value <= 0:
                raise SimulationError(
                    f"{field_name} must be positive, got {value}"
                )

    @property
    def avg_latency_ms(self) -> float:
        """Average rotational latency (half a revolution)."""
        return self.rotation_ms / 2.0

    @property
    def transfer_ms_per_bucket(self) -> float:
        """Media transfer time for one bucket."""
        return self.bucket_kb / 1024.0 / self.transfer_mb_per_s * 1000.0

    @property
    def random_access_ms(self) -> float:
        """Positioning cost of one random bucket read (seek + latency)."""
        return self.avg_seek_ms + self.avg_latency_ms

    def service_time_ms(self, num_buckets: int, sequential: bool = False) -> float:
        """Time for one disk to read ``num_buckets`` buckets of a query.

        ``sequential=True`` charges one positioning cost for the whole run
        (buckets laid out contiguously); the default charges it per bucket
        (buckets scattered across the platter, the declustered layout's
        conservative assumption).
        """
        if num_buckets < 0:
            raise SimulationError(
                f"bucket count must be non-negative, got {num_buckets}"
            )
        if num_buckets == 0:
            return 0.0
        transfer = num_buckets * self.transfer_ms_per_bucket
        if sequential:
            return self.random_access_ms + transfer
        return num_buckets * (self.random_access_ms + self.transfer_ms_per_bucket)
