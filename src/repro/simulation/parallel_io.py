"""Parallel I/O execution model over an array of independent disks.

Converts the combinatorial cost model into simulated milliseconds:

* :func:`query_time_ms` — one query, all disks start together, the query
  completes when the slowest disk finishes (the paper's response-time
  notion, in time units instead of bucket counts).
* :class:`ParallelIOSimulator` — a closed-loop stream of queries against
  per-disk FIFO queues, reporting per-query latency and per-disk busy time
  and utilization.  This exposes what bucket counting hides: with a stream
  of queries, imbalance also costs *throughput*, because a hot disk delays
  every later query that needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

import numpy as np

from repro.core.allocation import DiskAllocation
from repro.core.cost import buckets_per_disk
from repro.core.exceptions import SimulationError
from repro.core.query import RangeQuery
from repro.simulation.disk import DiskModel

__all__ = [
    "ParallelIOSimulator",
    "StreamReport",
    "query_time_ms",
]


def query_time_ms(
    allocation: DiskAllocation,
    query: RangeQuery,
    disk: DiskModel = DiskModel(),
    sequential: bool = False,
) -> float:
    """Simulated wall-clock time of one query (max disk service time)."""
    counts = buckets_per_disk(allocation, query)
    return max(
        (disk.service_time_ms(int(c), sequential=sequential)
         for c in counts),
        default=0.0,
    )


@dataclass
class StreamReport:
    """Results of simulating a query stream.

    Attributes
    ----------
    latencies_ms:
        Per-query completion latency (finish time minus submit time), in
        submission order.
    makespan_ms:
        Completion time of the whole stream.
    disk_busy_ms:
        Total service time charged to each disk.
    """

    latencies_ms: List[float] = field(default_factory=list)
    makespan_ms: float = 0.0
    disk_busy_ms: List[float] = field(default_factory=list)

    @property
    def mean_latency_ms(self) -> float:
        """Average per-query latency."""
        if not self.latencies_ms:
            raise SimulationError("no queries were simulated")
        return float(np.mean(self.latencies_ms))

    @property
    def max_latency_ms(self) -> float:
        """Worst per-query latency."""
        if not self.latencies_ms:
            raise SimulationError("no queries were simulated")
        return float(np.max(self.latencies_ms))

    @property
    def utilization(self) -> List[float]:
        """Per-disk busy fraction of the makespan."""
        if self.makespan_ms <= 0:
            return [0.0] * len(self.disk_busy_ms)
        return [busy / self.makespan_ms for busy in self.disk_busy_ms]


class ParallelIOSimulator:
    """FIFO per-disk queues fed by a sequential query stream.

    Queries are submitted back to back (closed loop, think a batch report
    run): query ``i``'s work for each disk is appended to that disk's queue;
    the query completes when the last of its per-disk segments finishes.
    Independent disks, no overlap of one query's segments on the same disk.
    """

    def __init__(
        self,
        allocation: DiskAllocation,
        disk: DiskModel = DiskModel(),
        sequential: bool = False,
    ):
        self._allocation = allocation
        self._disk = disk
        self._sequential = sequential

    def run(self, queries: Iterable[RangeQuery]) -> StreamReport:
        """Simulate the stream and return latency/utilization figures."""
        num_disks = self._allocation.num_disks
        free_at = np.zeros(num_disks, dtype=np.float64)
        busy = np.zeros(num_disks, dtype=np.float64)
        report = StreamReport(disk_busy_ms=[0.0] * num_disks)
        submitted_any = False
        for query in queries:
            submitted_any = True
            submit_time = 0.0  # closed loop: all queries submitted at t=0
            counts = buckets_per_disk(self._allocation, query)
            finish = submit_time
            for disk_id, count in enumerate(counts):
                if count == 0:
                    continue
                service = self._disk.service_time_ms(
                    int(count), sequential=self._sequential
                )
                start = max(free_at[disk_id], submit_time)
                free_at[disk_id] = start + service
                busy[disk_id] += service
                finish = max(finish, free_at[disk_id])
            report.latencies_ms.append(finish - submit_time)
        if not submitted_any:
            raise SimulationError("query stream is empty")
        report.makespan_ms = float(free_at.max())
        report.disk_busy_ms = busy.tolist()
        return report
