"""``repro.obs`` — lightweight observability: tracing, metrics, logging.

After four PRs of performance and robustness work the library had zero
instrumentation: no timers, no counters, no logs.  This package is the
missing feedback loop, built around three constraints:

* **off by default, zero overhead when off** — the tracer's disabled
  path allocates nothing (a bench gate asserts the bound), counters are
  plain dict increments, and logging ships a ``NullHandler``;
* **process-safe** — spawn workers serialize spans and metric payloads
  back to the parent with their results, so parallel runs report
  *aggregate* numbers, not parent-only ones;
* **distribution-aware** — histograms expose p50/p95/max, not just
  means, following the response-time-variability literature.

Entry points:

* :func:`repro.obs.trace.trace` / :func:`repro.obs.trace.trace_event` —
  span context manager and point events on the global tracer;
* :func:`repro.obs.metrics.global_registry` — the process-wide
  counter/histogram registry;
* :func:`repro.obs.log.get_logger` / ``configure_logging`` — namespaced
  library logging;
* :mod:`repro.obs.summary` — renderers behind
  ``repro-decluster obs summary``.

CLI surface: ``--trace FILE``, ``--metrics-out FILE``, ``--log-level``
on ``repro-decluster experiment``, plus ``repro-decluster obs summary``.
See ``docs/observability.md`` for naming conventions and examples.
"""

from __future__ import annotations

from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.obs.trace import (
    Tracer,
    global_tracer,
    trace,
    trace_event,
)

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "configure_logging",
    "get_logger",
    "global_registry",
    "global_tracer",
    "reset_global_registry",
    "trace",
    "trace_event",
]
