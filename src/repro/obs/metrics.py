"""Process-safe counters and histograms with cross-worker aggregation.

The metrics registry is the "how often / how big" half of
:mod:`repro.obs`.  It holds two kinds of series:

* **counters** — monotonically increasing integers
  (``registry.inc("cache.hits")``), or cumulative gauges published
  wholesale from an existing counter source
  (:meth:`MetricsRegistry.set_counter`);
* **histograms** — bounded reservoirs of float observations
  (``registry.observe("experiment.E1.seconds", dt)``) summarized as
  count/sum/mean/p50/p95/p99/max.

Histograms are *reservoir sampled*: each series keeps at most
:data:`HISTOGRAM_RESERVOIR_SIZE` observations (Vitter's Algorithm R
with a per-name deterministic seed) next to exact running count/sum/max
aggregates.  Below the cap the reservoir holds the full series and every
statistic is exact; above it, count/sum/mean/max stay exact while the
percentiles become estimates over a uniform sample.  This keeps a
long-running server's memory and summary cost O(1) per series instead
of O(observations) — at serving rates the previous grow-forever list
was a memory leak and an O(n log n) summary.

Process model.  Each process owns exactly one registry
(:func:`global_registry`); nothing is shared *live* across processes.
Instead a worker serializes its registry to a plain-dict *payload*
(:meth:`MetricsRegistry.payload`) that travels back to the parent with
the experiment result, and the parent stores it per-pid
(:meth:`MetricsRegistry.ingest`).  Payloads are **cumulative snapshots**:
a later payload from the same pid replaces the earlier one rather than
adding to it, so a pool worker that runs five experiments reports each
counter once, not five times.  Aggregation is then a straight sum of the
parent's own series plus the latest payload per worker pid — this is
what makes ``--cache-stats`` under ``--workers N`` report *all* activity
instead of the parent's alone.

All increments are plain dict operations on process-local state: no
locks on the hot path, nothing to configure, and nothing measurable when
the numbers are never read.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

__all__ = [
    "HISTOGRAM_RESERVOIR_SIZE",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "global_registry",
    "histogram_summary",
    "reset_global_registry",
]

#: Bumped when the payload / JSON layout changes incompatibly.
METRICS_SCHEMA_VERSION = 1

#: Max observations retained per histogram series.  Statistics are exact
#: up to this many observations; beyond it percentiles are estimated
#: from a uniform reservoir while count/sum/mean/max stay exact.
HISTOGRAM_RESERVOIR_SIZE = 4096


def _percentile(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    rank = max(int(len(ordered) * fraction + 0.5), 1)
    return ordered[min(rank, len(ordered)) - 1]


def histogram_summary(
    values: List[float],
    stats: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    """count/sum/mean/p50/p95/p99/max of a series of observations.

    ``values`` is the (possibly subsampled) observation list used for
    percentiles.  ``stats``, when given, carries the *exact* running
    ``{"count", "sum", "max"}`` aggregates of the full series — a
    reservoir that overflowed reports exact totals with estimated
    percentiles.  Without ``stats`` the list is taken as the complete
    series.
    """
    if not values and (stats is None or not stats.get("count")):
        return {
            "count": 0, "sum": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }
    ordered = sorted(values)
    if stats is None:
        count = len(ordered)
        total = float(sum(ordered))
        maximum = ordered[-1]
    else:
        count = int(stats["count"])
        total = float(stats["sum"])
        maximum = float(stats["max"])
    return {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "p50": _percentile(ordered, 0.50) if ordered else 0.0,
        "p95": _percentile(ordered, 0.95) if ordered else 0.0,
        "p99": _percentile(ordered, 0.99) if ordered else 0.0,
        "max": maximum,
    }


class _Reservoir:
    """Bounded uniform sample of a float series plus exact aggregates.

    Vitter's Algorithm R: the first ``cap`` observations are kept
    verbatim; observation ``n > cap`` replaces a random slot with
    probability ``cap / n``.  The RNG is seeded deterministically from
    the series name so repeated runs produce identical exports.
    """

    __slots__ = ("count", "total", "maximum", "samples", "_cap", "_rng")

    def __init__(self, seed: int, cap: int = HISTOGRAM_RESERVOIR_SIZE):
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0
        self.samples: List[float] = []
        self._cap = cap
        self._rng = np.random.default_rng(seed)

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.count == 1 or value > self.maximum:
            self.maximum = value
        if len(self.samples) < self._cap:
            self.samples.append(value)
        else:
            slot = int(self._rng.integers(self.count))
            if slot < self._cap:
                self.samples[slot] = value

    def extend(self, values: List[float],
               stats: Optional[Dict[str, float]] = None) -> None:
        """Fold another (samples, exact-stats) series into this one."""
        for value in values:
            self.add(value)
        if stats is not None:
            # The loop above accounted only for the retained samples;
            # patch the exact aggregates up to the true series totals.
            extra = int(stats["count"]) - len(values)
            if extra > 0:
                self.count += extra
                self.total += float(stats["sum"]) - float(sum(values))
            if stats.get("count") and float(stats["max"]) > self.maximum:
                self.maximum = float(stats["max"])

    def stats(self) -> Dict[str, float]:
        return {
            "count": self.count, "sum": self.total, "max": self.maximum,
        }

    def summary(self) -> Dict[str, float]:
        return histogram_summary(self.samples, self.stats())


def _reservoir_seed(name: str) -> int:
    return zlib.crc32(name.encode("utf-8"))


def _derived_stats(values: List[float]) -> Dict[str, float]:
    """Exact stats for a legacy payload that carried only raw samples."""
    return {
        "count": len(values),
        "sum": float(sum(values)),
        "max": max(values) if values else 0.0,
    }


class MetricsRegistry:
    """Counters + histograms for one process, plus ingested worker payloads.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.inc("cache.hits", 3)
    >>> registry.observe("experiment.E1.seconds", 0.25)
    >>> registry.counter("cache.hits")
    3
    >>> registry.ingest({"pid": 999, "counters": {"cache.hits": 4},
    ...                  "histograms": {}})
    >>> registry.aggregate_counters()["cache.hits"]
    7
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, _Reservoir] = {}
        self._process_payloads: Dict[int, Dict[str, Any]] = {}

    # -- local series -------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + int(amount)

    def set_counter(self, name: str, value: int) -> None:
        """Publish a cumulative value wholesale (e.g. cache stats)."""
        self._counters[name] = int(value)

    def counter(self, name: str) -> int:
        """Current local value of counter ``name`` (0 if never touched)."""
        return self._counters.get(name, 0)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        reservoir = self._histograms.get(name)
        if reservoir is None:
            reservoir = _Reservoir(_reservoir_seed(name))
            self._histograms[name] = reservoir
        reservoir.add(value)

    def clear(self) -> None:
        """Drop all local series and every ingested payload."""
        self._counters = {}
        self._histograms = {}
        self._process_payloads = {}

    # -- cross-process payloads ---------------------------------------

    def payload(self) -> Dict[str, Any]:
        """This process's series as a picklable cumulative snapshot.

        ``histograms`` maps name -> retained samples (the full series
        while it fits the reservoir), as it always has;
        ``histogram_stats`` carries the exact count/sum/max aggregates
        so an overflowed reservoir still reports true totals.  Readers
        that predate ``histogram_stats`` keep working off the samples.
        """
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "pid": os.getpid(),
            "counters": dict(self._counters),
            "histograms": {
                name: list(reservoir.samples)
                for name, reservoir in self._histograms.items()
            },
            "histogram_stats": {
                name: reservoir.stats()
                for name, reservoir in self._histograms.items()
            },
        }

    def ingest(self, payload: Dict[str, Any]) -> None:
        """Store a worker payload, replacing any earlier one for its pid.

        Payloads are cumulative, so replacement (not addition) is what
        keeps a long-lived pool worker from being counted once per job.
        Payloads without ``histogram_stats`` (older writers) have their
        exact aggregates derived from the sample lists.
        """
        pid = int(payload["pid"])
        histograms = {
            name: list(values)
            for name, values in payload.get("histograms", {}).items()
        }
        stats = payload.get("histogram_stats") or {}
        self._process_payloads[pid] = {
            "counters": dict(payload.get("counters", {})),
            "histograms": histograms,
            "histogram_stats": {
                name: dict(stats.get(name) or _derived_stats(values))
                for name, values in histograms.items()
            },
        }

    def process_pids(self) -> List[int]:
        """Pids of every worker whose payload has been ingested."""
        return sorted(self._process_payloads)

    def process_counters(self, pid: int) -> Dict[str, int]:
        """The latest counter snapshot ingested from ``pid``."""
        return dict(self._process_payloads[pid]["counters"])

    # -- aggregation --------------------------------------------------

    def aggregate_counters(self) -> Dict[str, int]:
        """Own counters plus the latest snapshot per worker, summed."""
        totals = dict(self._counters)
        for payload in self._process_payloads.values():
            for name, value in payload["counters"].items():
                totals[name] = totals.get(name, 0) + int(value)
        return totals

    def aggregate_histograms(self) -> Dict[str, Dict[str, float]]:
        """Summaries over own plus every worker's observations."""
        merged: Dict[str, _Reservoir] = {}

        def _series(name: str) -> _Reservoir:
            reservoir = merged.get(name)
            if reservoir is None:
                reservoir = _Reservoir(_reservoir_seed(name))
                merged[name] = reservoir
            return reservoir

        for name, reservoir in self._histograms.items():
            _series(name).extend(
                list(reservoir.samples), reservoir.stats()
            )
        for payload in self._process_payloads.values():
            for name, values in payload["histograms"].items():
                _series(name).extend(
                    values, payload["histogram_stats"][name]
                )
        return {
            name: reservoir.summary()
            for name, reservoir in sorted(merged.items())
        }

    def to_json_dict(self) -> Dict[str, Any]:
        """The full registry as the JSON document ``--metrics-out`` writes."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "parent_pid": os.getpid(),
            "aggregate": {
                "counters": dict(sorted(self.aggregate_counters().items())),
                "histograms": self.aggregate_histograms(),
            },
            "parent": {
                "counters": dict(sorted(self._counters.items())),
                "histograms": {
                    name: reservoir.summary()
                    for name, reservoir in sorted(
                        self._histograms.items()
                    )
                },
            },
            "processes": {
                str(pid): {
                    "counters": dict(
                        sorted(payload["counters"].items())
                    ),
                    "histograms": {
                        name: histogram_summary(
                            values,
                            payload["histogram_stats"][name],
                        )
                        for name, values in sorted(
                            payload["histograms"].items()
                        )
                    },
                }
                for pid, payload in sorted(
                    self._process_payloads.items()
                )
            },
        }

    def write_json(self, path: Union[str, Path]) -> None:
        """Serialize :meth:`to_json_dict` to ``path`` (pretty-printed)."""
        Path(path).write_text(
            json.dumps(self.to_json_dict(), indent=2) + "\n"
        )


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry used by all library instrumentation."""
    return _GLOBAL_REGISTRY


def reset_global_registry() -> MetricsRegistry:
    """Replace the process-wide registry with a fresh one; returns it."""
    global _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = MetricsRegistry()
    return _GLOBAL_REGISTRY
